//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate: random-input property testing without shrinking.
//!
//! Exposes the API subset this workspace's property tests use — the
//! [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!` strategies,
//! `collection::{vec, btree_set}`, `any::<T>()`, and the `prop_assert*`
//! macros. Failing cases report their inputs via the panic message (the
//! `Debug` of each generated argument) but are not shrunk. Generation is
//! deterministic: every `proptest!` test derives its RNG seed from the
//! test function's name, so CI failures replay locally.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`, whose arms
        /// have distinct concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniformly picks one of several boxed strategies per case (the
    /// `prop_oneof!` backing type).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            use rand::Rng;
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! Canonical strategies per type, behind [`any`].

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one canonical sample.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random::<bool>()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let len = rng.random_range(0usize..64);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    /// The canonical strategy for `T` (shim for `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` with up to `size` elements (duplicates collapse, as in
    /// upstream proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    /// How many random cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Derives a stable RNG seed from a test function's name, so runs are
    /// reproducible across processes and machines.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniformly picks one of several strategy arms (all arms must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_from_name(stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __inputs = format!(
                    concat!("case {}: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                    __case, $(&$arg),+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("proptest failure inputs: {__inputs}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u64..10, b in 0usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn mapped_tuples(pair in (1u32..5, 1u32..5).prop_map(|(x, y)| x + y)) {
            prop_assert!((2..=8).contains(&pair));
        }

        #[test]
        fn collections_and_oneof(
            v in crate::collection::vec(any::<u8>(), 1..10),
            s in crate::collection::btree_set(0u64..5, 0..8),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(s.len() <= 5, "dedup bounds the set by the value range");
            prop_assert!((1..5).contains(&pick));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let seed = crate::test_runner::seed_from_name("x");
        let mut r1 = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<u64> = (0..10).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
