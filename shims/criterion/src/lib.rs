//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Good enough to rank kernels and spot
//! regressions by eye; not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{id}"),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut g,
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An ID of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An ID that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine`, collecting one sample per call up to the harness's
    /// sample budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up call, untimed.
        std::hint::black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibrate: one throwaway call bounds per-sample cost so slow bodies
    // get fewer samples within the time budget.
    let start = Instant::now();
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: 1,
    };
    f(&mut bencher);
    let per_call = start.elapsed().max(Duration::from_nanos(1)) / 2;
    let affordable = (measurement_time.as_nanos() / per_call.as_nanos().max(1)) as usize;
    let budget = sample_size.min(affordable.max(2));

    let mut bencher = Bencher {
        samples: Vec::new(),
        budget,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "  {label:<50} median {} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group entry point, in either criterion form:
/// `criterion_group!(benches, f1, f2)` or
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 * 2));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench,
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }
}
