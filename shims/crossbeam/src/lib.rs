//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate: the `channel` subset this workspace uses, implemented over
//! `std::sync::mpsc`. Semantics relied upon by the threaded runtime —
//! cloneable senders, bounded `try_send`, `recv_timeout`, and
//! disconnect-on-drop — are all provided by std's channels.

#![forbid(unsafe_code)]

/// Multi-producer channels (shim for `crossbeam::channel`).
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Error returned by [`Sender::try_send`] on a full or disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Inner<T> {
        fn clone(&self) -> Self {
            match self {
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Inner<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: self.depth.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking on a full bounded channel. Errors only when all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Count before the send so the receiver's decrement (which can
            // only follow a completed send) never underflows; undo on
            // failure.
            self.depth.fetch_add(1, Ordering::Relaxed);
            let result = match &self.inner {
                Inner::Unbounded(tx) => tx.send(value),
                Inner::Bounded(tx) => tx.send(value),
            };
            if result.is_err() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            result
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// waiting on a full bounded channel.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.depth.fetch_add(1, Ordering::Relaxed);
            let result = match &self.inner {
                Inner::Unbounded(tx) => tx.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
                Inner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if result.is_err() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            result
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            let value = self.rx.recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let value = self.rx.recv_timeout(timeout)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let value = self.rx.try_recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Number of messages currently queued (approximate under
        /// concurrent sends, exact once senders quiesce) — the subset of
        /// crossbeam's `len()` the router-shard instrumentation samples.
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the queue is empty (same caveat as [`Self::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn pair<T>(tx: Inner<T>, rx: mpsc::Receiver<T>) -> (Sender<T>, Receiver<T>) {
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                depth: depth.clone(),
            },
            Receiver { rx, depth },
        )
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        pair(Inner::Unbounded(tx), rx)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        pair(Inner::Bounded(tx), rx)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
        }

        #[test]
        fn len_tracks_queued_messages() {
            let (tx, rx) = unbounded::<u32>();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
            rx.try_recv().unwrap();
            assert!(rx.is_empty());
            // Failed sends must not leak depth.
            let (tx2, rx2) = bounded::<u32>(1);
            tx2.try_send(1).unwrap();
            assert!(tx2.try_send(2).is_err());
            assert_eq!(rx2.len(), 1);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
