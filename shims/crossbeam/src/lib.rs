//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate: the `channel` subset this workspace uses, implemented over
//! `std::sync::mpsc`. Semantics relied upon by the threaded runtime —
//! cloneable senders, bounded `try_send`, `recv_timeout`, and
//! disconnect-on-drop — are all provided by std's channels.

#![forbid(unsafe_code)]

/// Multi-producer channels (shim for `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Error returned by [`Sender::try_send`] on a full or disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Inner<T> {
        fn clone(&self) -> Self {
            match self {
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Inner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking on a full bounded channel. Errors only when all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(tx) => tx.send(value),
                Inner::Bounded(tx) => tx.send(value),
            }
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// waiting on a full bounded channel.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Inner::Unbounded(tx) => tx.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
                Inner::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
