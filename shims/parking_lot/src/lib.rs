//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot):
//! `Mutex` and `RwLock` with parking_lot's non-`Result` locking API, backed
//! by `std::sync`. Poisoned locks panic — parking_lot has no poisoning, and
//! a poisoned lock here means a worker already panicked anyway.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
