//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate:
//! an immutable, cheaply-cloneable byte buffer. Static slices are kept as
//! `&'static [u8]` (zero-cost, like upstream); owned data is shared behind
//! an `Arc<[u8]>` so cloning a committee value is a reference-count bump.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// An immutable, cheaply-cloneable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a.to_vec(), b"abc".to_vec());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy"), Bytes::from_static(b"xy"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from((0u8..100).collect::<Vec<_>>());
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_and_hash_follow_contents() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Bytes> = [
            Bytes::from_static(b"b"),
            Bytes::from_static(b"a"),
            Bytes::from(b"a".to_vec()),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"v\n")), "b\"v\\n\"");
    }
}
