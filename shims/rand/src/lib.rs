//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace vendors the *subset* of the rand 0.9 surface its crates
//! actually call — `StdRng::seed_from_u64`, `Rng::random_range`,
//! `IndexedRandom::choose`, `SliceRandom::shuffle` — backed by a
//! xoshiro256** generator seeded through SplitMix64. The stream differs
//! from upstream `StdRng` (which is ChaCha12), but every consumer in this
//! workspace only relies on determinism-per-seed, not on a particular
//! stream, so the substitution is behavior-preserving for the experiments.
//!
//! Not cryptographically secure; never use outside simulations.

#![forbid(unsafe_code)]

/// Types able to construct themselves from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical uniform distribution (shim for `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection loop: the bias is ≤ 2⁻⁶⁴·bound, irrelevant for
/// simulation workloads).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Integer types uniformly sampleable through a 64-bit word (shim
/// counterpart of `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the sampling domain (value fits by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        if hi - lo == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, hi - lo + 1))
    }
}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Shim stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random access into indexable collections (shim for
    /// `rand::seq::IndexedRandom`).
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }

    /// In-place random reordering (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniformly shuffles the slice (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let z = r.random_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(2);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle is a fixed point with negligible probability"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.random_range(5u64..5);
    }
}
