#!/usr/bin/env bash
# Repo verification: formatting, lints, and the tier-1 build+test gate.
#
#   scripts/verify.sh          # everything (what CI should run)
#   scripts/verify.sh --quick  # skip the release build (fast local loop);
#                              # fronts the adversary_sweep grid, the
#                              # family_sweep (each graph family once at
#                              # modest n), and the delta-gossip
#                              # discovery_equivalence sweep as early
#                              # gates before the full test run
#
# Tier-1 (from ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo doc --no-deps -q"
cargo doc --no-deps -q

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
else
    echo "==> cargo test -q --test adversary_sweep (quick gate)"
    cargo test -q --test adversary_sweep
    echo "==> cargo test -q --test family_sweep (quick gate)"
    cargo test -q --test family_sweep
    echo "==> cargo test -q --test discovery_equivalence (quick gate)"
    cargo test -q --test discovery_equivalence
fi

echo "==> cargo test -q"
cargo test -q

echo "verify.sh: all green"
