#!/usr/bin/env bash
# Repo verification: formatting, lints, and the tier-1 build+test gate.
#
#   scripts/verify.sh          # everything (what CI should run)
#   scripts/verify.sh --quick  # skip the release build (fast local loop);
#                              # fronts the adversary_sweep grid as an
#                              # early gate before the full test run
#
# Tier-1 (from ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build --examples

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
else
    echo "==> cargo test -q --test adversary_sweep (quick gate)"
    cargo test -q --test adversary_sweep
fi

echo "==> cargo test -q"
cargo test -q

echo "verify.sh: all green"
