#!/usr/bin/env bash
# Repo verification: formatting, lints, and the tier-1 build+test gate.
#
#   scripts/verify.sh          # everything (what the CI `full` path runs)
#   scripts/verify.sh --quick  # skip the release build (fast local loop,
#                              # and the CI `quick` job); fronts the
#                              # wire_roundtrip codec proptests, the
#                              # adversary_sweep grid, the family_sweep
#                              # (each graph family once at modest n), the
#                              # delta-gossip discovery_equivalence sweep,
#                              # the router_shards parity sweep, the
#                              # verify_pipeline parity/determinism suite,
#                              # the obs_determinism observability suite
#                              # (byte-identical observed traces, no
#                              # observer effect), and the churn gates
#                              # (churn_invariants family×runtime sweep,
#                              # proptest_churn snapshot/agreement
#                              # properties) as early gates before the
#                              # full test run
#
# CI ↔ verify.sh contract (.github/workflows/ci.yml relies on this):
#   * every gate propagates its exit code — the script runs under
#     `set -euo pipefail` AND checks `cargo doc` explicitly, so a failure
#     anywhere (including rustdoc) exits nonzero;
#   * on success the LAST line printed is exactly `VERIFY OK` — CI greps
#     for it, so a truncated or crashed run can never pass silently;
#   * no step touches the network: dependencies are vendored in shims/
#     and pinned by the committed Cargo.lock.
#
# Tier-1 (from ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo doc --no-deps -q"
# Explicit exit-code check: `set -e` covers this today, but the doc gate
# has been silently lost before by refactors that piped or backgrounded
# the command — keep the failure path explicit in both modes.
if ! cargo doc --no-deps -q; then
    echo "verify.sh: cargo doc failed" >&2
    exit 1
fi

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
else
    echo "==> cargo test -q --test wire_roundtrip (quick gate)"
    cargo test -q --test wire_roundtrip
    echo "==> cargo test -q --test adversary_sweep (quick gate)"
    cargo test -q --test adversary_sweep
    echo "==> cargo test -q --test family_sweep (quick gate)"
    cargo test -q --test family_sweep
    echo "==> cargo test -q --test discovery_equivalence (quick gate)"
    cargo test -q --test discovery_equivalence
    echo "==> cargo test -q --test router_shards (quick gate)"
    cargo test -q --test router_shards
    echo "==> cargo test -q --test verify_pipeline (quick gate)"
    cargo test -q --test verify_pipeline
    echo "==> cargo test -q --test obs_determinism (quick gate)"
    cargo test -q --test obs_determinism
    echo "==> cargo test -q --test churn_invariants (quick gate)"
    cargo test -q --test churn_invariants
    echo "==> cargo test -q --test proptest_churn (quick gate)"
    cargo test -q --test proptest_churn
fi

echo "==> cargo test -q"
cargo test -q

echo "verify.sh: all green"
echo "VERIFY OK"
