#!/usr/bin/env bash
# Bench trajectory artifacts: runs the JSON-emitting experiment binaries
# in release mode and merges their artifacts into per-area JSON documents,
# so successive PRs can diff a single file per area for end-time /
# message-count / payload / wall-clock drift.
#
#   scripts/bench.sh [--shards N] [ADVERSARY_OUT] [GRAPH_OUT] [DISCOVERY_OUT]
#       ADVERSARY_OUT (default BENCH_adversary.json): table1, fig1, fig4,
#                     adversary_grid
#       GRAPH_OUT     (default BENCH_graph.json): graph_scale — family
#                     generation + condition-check timings and per-family
#                     consensus outcome rates
#       DISCOVERY_OUT (default BENCH_discovery.json): discovery_scale —
#                     delta-gossip vs full-S_PD SETPDS payload on the
#                     family sweep, end-to-end consensus at
#                     n=100/500/1000 on both runtimes (threaded cells on
#                     the sharded router, decisions checked against sim),
#                     the router-shard axis, and the churn axis (n=100
#                     cells under a join + crash-rejoin ChurnSpec, both
#                     runtimes, threaded decisions checked against sim);
#                     also publishes the per-family ObsReport sibling as
#                     OBS_discovery.json beside it (observed sim cells,
#                     virtual clock)
#
#   scripts/bench.sh [--shards N] --check-regression [FRESH_DISCOVERY_JSON]
#       (options may be combined in any order ahead of positionals)
#       Compares discovery_scale regression scalars against the committed
#       BENCH_discovery.json: fails when a deterministic scalar — the
#       sweep SETPDS payload or any obs_phase_* virtual-time phase scalar
#       from the observed sim cells, including the churn-axis
#       obs_phase_*_churn_<family> keys — grows >25%, or the payload
#       ratio falls below the 10x floor; the end-to-end wall scalars —
#       the blended total, the per-family e2e_wall_seconds_<family>
#       breakdown, and the churn-axis e2e_wall_seconds_churn total —
#       are reported advisory-only (wall clocks don't compare
#       across machines; the obs_phase_* scalars are the canonical
#       deterministic latency trajectory). Without the optional
#       argument the script builds and runs discovery_scale itself; CI
#       passes the artifact it already regenerated so the expensive run
#       happens once.
#
# Determinism knobs (CI and laptops produce comparable sweep scalars):
#   BENCH_SEED=<u64>  offsets every scenario seed (exported through to
#                     the binaries; default = the committed seeds)
#   --shards <n>      pins the threaded cells' router shard count
#                     (default: the runtime's min(cores, 4) auto pick)
# Wall-clock fields remain advisory-only either way.
set -euo pipefail
cd "$(dirname "$0")/.."

# scalar <file> <key>: extracts a flat numeric value from a (single-line)
# JSON artifact without requiring a JSON tool in the container.
scalar() {
    grep -o "\"$2\":[0-9.]*" "$1" | head -1 | cut -d: -f2
}

# Options may appear in any order ahead of the positional arguments.
check_regression=0
shards_args=()
while [[ "${1:-}" == --* ]]; do
    case "$1" in
        --check-regression)
            check_regression=1
            shift
            ;;
        --shards)
            [[ -n "${2:-}" ]] || { echo "bench.sh: --shards needs a value"; exit 1; }
            shards_args=(--shards "$2")
            shift 2
            ;;
        *)
            echo "bench.sh: unknown option $1" >&2
            exit 1
            ;;
    esac
done

if [[ "$check_regression" -eq 1 ]]; then
    committed="BENCH_discovery.json"
    [[ -f "$committed" ]] || { echo "bench.sh: no committed $committed to compare against"; exit 1; }
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    if [[ -n "${1:-}" ]]; then
        fresh="$1"
        [[ -f "$fresh" ]] || { echo "bench.sh: fresh artifact $fresh not found"; exit 1; }
        echo "==> comparing against pre-generated $fresh"
    else
        fresh="$tmp/fresh.json"
        echo "==> cargo build --release -p cupft-bench --bin discovery_scale"
        cargo build --release -q -p cupft-bench --bin discovery_scale
        echo "==> discovery_scale --json --obs ${shards_args[*]-} (fresh run for regression check)"
        ./target/release/discovery_scale --json "$fresh" --obs \
            ${shards_args[@]+"${shards_args[@]}"} > "$tmp/fresh.txt"
    fi
    fail=0
    # Deterministic scalars gate hard: the sweep payload counters plus
    # every obs_phase_* virtual-time phase scalar the committed artifact
    # carries (observed sim cells run on the virtual clock, so these are
    # machine-independent). The wall-clock scalars below are advisory
    # only (the committed artifact was measured on a different machine, so
    # a hard wall-time gate would fail on slower hardware with zero code
    # change).
    obs_keys="$(grep -o '"obs_phase_[a-z_0-9]*"' "$committed" | tr -d '"' | sort -u)"
    for key in sweep_delta_payload $obs_keys; do
        old="$(scalar "$committed" "$key")"
        new="$(scalar "$fresh" "$key")"
        [[ -n "$old" && -n "$new" ]] || { echo "bench.sh: key $key missing (old='$old' new='$new')"; fail=1; continue; }
        # fail when new > old * 1.25
        if awk -v o="$old" -v n="$new" 'BEGIN { exit !(n > o * 1.25) }'; then
            echo "REGRESSION: $key grew >25% (committed=$old fresh=$new)"
            fail=1
        else
            echo "ok: $key committed=$old fresh=$new"
        fi
    done
    # Wall-clock scalars: the blended total plus the per-family
    # e2e_wall_seconds_<family> breakdown. All advisory — a family whose
    # wall time drifts is worth a look, but cross-machine wall clocks
    # must never fail the gate.
    wall_keys="$(grep -o '"e2e_wall_seconds_[a-z_]*"' "$committed" | tr -d '"' | sort -u)"
    for key in $wall_keys; do
        old_wall="$(scalar "$committed" "$key")"
        new_wall="$(scalar "$fresh" "$key")"
        if [[ -z "$new_wall" ]]; then
            echo "note: $key missing from fresh artifact (advisory)"
            continue
        fi
        if awk -v o="$old_wall" -v n="$new_wall" 'BEGIN { exit !(n > o * 1.25) }'; then
            echo "note: $key grew >25% (committed=$old_wall fresh=$new_wall) — advisory only (cross-machine wall clock)"
        else
            echo "ok: $key committed=$old_wall fresh=$new_wall (advisory)"
        fi
    done
    ratio="$(scalar "$fresh" sweep_payload_ratio)"
    if awk -v r="$ratio" 'BEGIN { exit !(r < 10.0) }'; then
        echo "REGRESSION: sweep_payload_ratio fell below 10x (fresh=$ratio)"
        fail=1
    else
        echo "ok: sweep_payload_ratio fresh=${ratio}x (floor 10x)"
    fi
    [[ "$fail" -eq 0 ]] && echo "bench.sh: no regression" || echo "bench.sh: REGRESSION DETECTED"
    exit "$fail"
fi

adversary_out="${1:-BENCH_adversary.json}"
graph_out="${2:-BENCH_graph.json}"
discovery_out="${3:-BENCH_discovery.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> cargo build --release -p cupft-bench --bins"
cargo build --release -p cupft-bench --bins

# merge <out-file> <bin...>: run each bin with --json and merge the
# artifacts into one {"<bin>": ...} document. BENCH_SEED (if set) reaches
# the binaries through the environment; discovery_scale additionally
# receives the --shards override plus --obs, so the merged artifact
# carries the deterministic obs_phase_* scalars and the full per-family
# ObsReports land beside it (published as OBS_discovery.json below).
merge() {
    local out="$1"
    shift
    local bins=("$@")
    for bin in "${bins[@]}"; do
        local extra=()
        if [[ "$bin" == "discovery_scale" ]]; then
            extra=(--obs)
            if [[ "${#shards_args[@]}" -gt 0 ]]; then
                extra+=("${shards_args[@]}")
            fi
        fi
        echo "==> $bin --json ${extra[*]-}"
        cargo run --release -q -p cupft-bench --bin "$bin" -- --json "$tmp/$bin.json" \
            ${extra[@]+"${extra[@]}"} > "$tmp/$bin.txt"
    done
    {
        printf '{'
        local first=1
        for bin in "${bins[@]}"; do
            [[ "$first" -eq 0 ]] && printf ','
            first=0
            printf '"%s":' "$bin"
            tr -d '\n' < "$tmp/$bin.json"
        done
        printf '}\n'
    } > "$out"
    echo "bench.sh: wrote $out ($(wc -c < "$out") bytes)"
}

merge "$adversary_out" table1 fig1 fig4 adversary_grid
merge "$graph_out" graph_scale
merge "$discovery_out" discovery_scale

# Publish the per-family ObsReport sibling discovery_scale left beside its
# --json artifact (virtual-clock, byte-deterministic per seed) next to the
# merged document — CI's bench job uploads the whole directory.
obs_out="$(dirname "$discovery_out")/OBS_discovery.json"
cp "$tmp/discovery_scale.obs.json" "$obs_out"
echo "bench.sh: wrote $obs_out ($(wc -c < "$obs_out") bytes)"
