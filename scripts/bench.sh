#!/usr/bin/env bash
# Bench trajectory artifacts: runs the JSON-emitting experiment binaries
# in release mode and merges their artifacts into per-area JSON documents,
# so successive PRs can diff a single file per area for end-time /
# message-count / wall-clock drift.
#
#   scripts/bench.sh [ADVERSARY_OUT] [GRAPH_OUT]
#       ADVERSARY_OUT (default BENCH_adversary.json): table1, fig1, fig4,
#                     adversary_grid
#       GRAPH_OUT     (default BENCH_graph.json): graph_scale — family
#                     generation + condition-check timings and per-family
#                     consensus outcome rates
set -euo pipefail
cd "$(dirname "$0")/.."

adversary_out="${1:-BENCH_adversary.json}"
graph_out="${2:-BENCH_graph.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> cargo build --release -p cupft-bench --bins"
cargo build --release -p cupft-bench --bins

# merge <out-file> <bin...>: run each bin with --json and merge the
# artifacts into one {"<bin>": ...} document.
merge() {
    local out="$1"
    shift
    local bins=("$@")
    for bin in "${bins[@]}"; do
        echo "==> $bin --json"
        cargo run --release -q -p cupft-bench --bin "$bin" -- --json "$tmp/$bin.json" \
            > "$tmp/$bin.txt"
    done
    {
        printf '{'
        local first=1
        for bin in "${bins[@]}"; do
            [[ "$first" -eq 0 ]] && printf ','
            first=0
            printf '"%s":' "$bin"
            tr -d '\n' < "$tmp/$bin.json"
        done
        printf '}\n'
    } > "$out"
    echo "bench.sh: wrote $out ($(wc -c < "$out") bytes)"
}

merge "$adversary_out" table1 fig1 fig4 adversary_grid
merge "$graph_out" graph_scale
