#!/usr/bin/env bash
# Bench trajectory artifact: runs the JSON-emitting experiment binaries
# (table1, fig1, fig4, adversary_grid) in release mode and merges their
# artifacts into one JSON document, so successive PRs can diff a single
# file for end-time / message-count / wall-clock drift.
#
#   scripts/bench.sh [OUTPUT]     # default OUTPUT: BENCH_adversary.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_adversary.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

bins=(table1 fig1 fig4 adversary_grid)

echo "==> cargo build --release -p cupft-bench --bins"
cargo build --release -p cupft-bench --bins

for bin in "${bins[@]}"; do
    echo "==> $bin --json"
    cargo run --release -q -p cupft-bench --bin "$bin" -- --json "$tmp/$bin.json" \
        > "$tmp/$bin.txt"
done

{
    printf '{'
    first=1
    for bin in "${bins[@]}"; do
        [[ "$first" -eq 0 ]] && printf ','
        first=0
        printf '"%s":' "$bin"
        tr -d '\n' < "$tmp/$bin.json"
    done
    printf '}\n'
} > "$out"

echo "bench.sh: wrote $out ($(wc -c < "$out") bytes)"
