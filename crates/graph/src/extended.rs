//! The extended `k`-OSR recognizer (Definition 2, BFT-CUPFT).

use std::collections::BTreeMap;

use crate::connectivity::DisjointPaths;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::{ProcessId, ProcessSet};
use crate::osr::{osr_report, OsrReport};
use crate::predicates::max_threshold;
use crate::view::KnowledgeView;

/// The core of an extended `k`-OSR graph, with its detected parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreWitness {
    /// The core members `V_core`.
    pub members: ProcessSet,
    /// `f_Gdi(V_core)`: the maximum threshold over decompositions.
    pub threshold: usize,
    /// `k_Gdi(V_core) = f_Gdi + 1`.
    pub connectivity: usize,
}

/// The result of checking Definition 2 exhaustively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedOsrReport {
    /// The `k` the graph was checked against.
    pub k: usize,
    /// The underlying `k`-OSR report (first requirement of Definition 2).
    pub base: OsrReport,
    /// The maximum-connectivity sink, i.e. the core candidate.
    pub core: Option<CoreWitness>,
    /// Every sink found (member set, `k_Gdi`), for diagnostics.
    pub sinks: Vec<(ProcessSet, usize)>,
    /// Property C1: the core's connectivity strictly exceeds every other
    /// sink's.
    pub c1_unique_maximum: bool,
    /// Property C2: every non-core process has at least `k_Gdi(V_core)`
    /// node-disjoint paths to every core member.
    pub c2_paths: bool,
}

impl ExtendedOsrReport {
    /// Whether the graph belongs to extended `k`-OSR.
    pub fn holds(&self) -> bool {
        self.base.is_k_osr() && self.core.is_some() && self.c1_unique_maximum && self.c2_paths
    }
}

/// Exhaustively checks whether `g` belongs to the extended `k`-OSR family
/// (Definition 2), enumerating every sink via `isSink*`.
///
/// # Errors
///
/// Returns [`GraphError::TooLargeForExactCheck`] if the graph has more than
/// `cutoff` vertices (the sink enumeration is exponential).
pub fn is_extended_k_osr(
    g: &DiGraph,
    k: usize,
    cutoff: usize,
) -> Result<ExtendedOsrReport, GraphError> {
    let n = g.vertex_count();
    if n > cutoff {
        return Err(GraphError::TooLargeForExactCheck { size: n, cutoff });
    }
    let base = osr_report(g, k);
    let view = KnowledgeView::omniscient(g);
    let vertices: Vec<ProcessId> = g.vertices().collect();

    // Enumerate every S1 once; fold into (member set -> max threshold).
    let mut sink_thresholds: BTreeMap<ProcessSet, usize> = BTreeMap::new();
    for mask in 1u64..(1u64 << vertices.len()) {
        let s1: ProcessSet = vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        if let Some(dec) = max_threshold(&view, &s1) {
            let members = dec.members();
            let entry = sink_thresholds.entry(members).or_insert(dec.threshold);
            *entry = (*entry).max(dec.threshold);
        }
    }

    let sinks: Vec<(ProcessSet, usize)> = sink_thresholds
        .iter()
        .map(|(s, &t)| (s.clone(), t + 1))
        .collect();

    // The core: maximum k_Gdi; C1 demands the maximum be unique.
    let core = sinks
        .iter()
        .max_by_key(|(s, conn)| (*conn, s.len()))
        .map(|(s, conn)| CoreWitness {
            members: s.clone(),
            threshold: conn - 1,
            connectivity: *conn,
        });

    let c1_unique_maximum = match &core {
        Some(core) => sinks
            .iter()
            .all(|(s, conn)| *s == core.members || *conn < core.connectivity),
        None => false,
    };

    let c2_paths = match &core {
        Some(core) => {
            let dp = DisjointPaths::new(g);
            let outsiders: Vec<ProcessId> =
                g.vertices().filter(|v| !core.members.contains(v)).collect();
            outsiders.iter().all(|&o| {
                core.members
                    .iter()
                    .all(|&c| dp.at_least(o, c, core.connectivity))
            })
        }
        None => false,
    };

    Ok(ExtendedOsrReport {
        k,
        base,
        core,
        sinks,
        c1_unique_maximum,
        c2_paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig2c, fig4a, fig4b};
    use crate::id::process_set;

    #[test]
    fn fig4a_is_extended_2_osr_with_core_inside_sink() {
        let f = fig4a();
        let report = is_extended_k_osr(f.graph(), 2, 12).unwrap();
        assert!(report.holds(), "{report:?}");
        let core = report.core.unwrap();
        assert_eq!(core.members, process_set([1, 2, 3, 4, 5]));
        assert_eq!(core.connectivity, 3);
        // the sink component (whole graph) strictly contains the core
        assert_eq!(report.base.sink_members().map(|s| s.len()), Some(9));
    }

    #[test]
    fn fig4b_is_extended_2_osr_with_core_56789() {
        let f = fig4b();
        let report = is_extended_k_osr(f.graph(), 2, 12).unwrap();
        assert!(report.holds(), "{report:?}");
        let core = report.core.unwrap();
        assert_eq!(core.members, process_set([5, 6, 7, 8, 9]));
        assert_eq!(core.connectivity, 3);
    }

    #[test]
    fn fig2c_fails_extended_check() {
        // The impossibility witness: two sinks with equal connectivity
        // ({1,2,3,4} and {5,6,7,8}) violate C1.
        let f = fig2c();
        let report = is_extended_k_osr(f.graph(), 1, 12).unwrap();
        assert!(!report.holds(), "{report:?}");
        assert!(!report.c1_unique_maximum);
        // Both K4s appear among the sinks with connectivity 2.
        let find = |s: &ProcessSet| report.sinks.iter().find(|(m, _)| m == s).map(|(_, c)| *c);
        assert_eq!(find(&process_set([1, 2, 3, 4])), Some(2));
        assert_eq!(find(&process_set([5, 6, 7, 8])), Some(2));
    }

    #[test]
    fn cutoff_enforced() {
        let g = DiGraph::complete(&process_set(1..=15));
        assert!(matches!(
            is_extended_k_osr(&g, 2, 12),
            Err(GraphError::TooLargeForExactCheck { .. })
        ));
    }

    #[test]
    fn complete_graph_is_extended_osr() {
        // K5 alone: single sink (itself), trivially unique, no outsiders.
        let g = DiGraph::complete(&process_set(1..=5));
        let report = is_extended_k_osr(&g, 2, 12).unwrap();
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.core.unwrap().connectivity, 3);
    }
}
