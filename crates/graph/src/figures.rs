//! The witness graphs of Figures 1–4.
//!
//! The paper presents these graphs as drawings; the arXiv source does not
//! include machine-readable edge lists. Each constructor below synthesizes
//! an edge list *consistent with every property the text asserts* about the
//! figure (captions, worked examples, and the predicate evaluations quoted
//! in Sections III–V). The properties themselves are re-verified by this
//! module's tests and by the `fig*` experiment binaries, so any divergence
//! from the original drawings is behavior-preserving by construction.
//!
//! Known constraints encoded here:
//!
//! * **Fig. 1a** — `PD₁ = {2,3,4}`; process 4 Byzantine; with 4 silent,
//!   `{1,2,3}` and `{5,6,7,8}` cannot learn of each other.
//! * **Fig. 1b** — satisfies BFT-CUP for `f = 1`; sink of `G_safe` is
//!   `{1,2,3}`; the Section III worked example needs
//!   `isSinkGdi(1, {1,3,4}, {2})` to hold when 2 is slow and 4 claims
//!   `PD = {1,2,3}`.
//! * **Fig. 2a/2b** — 2-OSR systems of 4 processes each (4 resp. 5 faulty);
//!   `isSinkGdi(1, {1,2,3}, {4})` and `isSinkGdi(1, {6,7,8}, {5})` hold.
//! * **Fig. 2c** — the union, all correct, forming a 1-OSR graph.
//! * **Fig. 3a** — 2-OSR, process 1 faulty, and
//!   `isSinkGdi(2, {1,2,3,4,6}, {5,7})` holds even though `{1,…,6}∖{5}`
//!   are non-sink members (true sink `{5,7,8}` in our reconstruction).
//! * **Fig. 3b** — 3-OSR, processes 5 and 7 faulty, where `{1,2,3,4,6}`
//!   *is* the sink; indistinguishable from 3a for processes `{2,3,4,6}`.
//! * **Fig. 4a** — extended 2-OSR; the core is strictly inside the sink
//!   component (the whole graph is one 2-strongly-connected SCC). The
//!   caption's literal recipe (Fig. 2c plus `6→3`, `7→2`) yields a graph
//!   whose core *equals* its sink component, contradicting the caption, so
//!   this reconstruction uses a 9-vertex graph satisfying the caption's
//!   actual claim; every stated property is test-verified.
//! * **Fig. 4b** — extended 2-OSR; core = sink component `{5,…,9}`.

use crate::digraph::DiGraph;
use crate::id::{process_set, ProcessSet};

/// A named witness graph with its fault model and expected outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureGraph {
    name: &'static str,
    graph: DiGraph,
    byzantine: ProcessSet,
    fault_threshold: usize,
    expected_sink: Option<ProcessSet>,
}

impl FigureGraph {
    /// Short identifier (`"fig1a"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The knowledge connectivity graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The processes the paper designates as Byzantine in this figure.
    pub fn byzantine(&self) -> &ProcessSet {
        &self.byzantine
    }

    /// The system fault threshold `f` stated for the figure.
    pub fn fault_threshold(&self) -> usize {
        self.fault_threshold
    }

    /// The sink (or core) set the paper's algorithms are expected to
    /// return, when the figure satisfies the respective model.
    pub fn expected_sink(&self) -> Option<&ProcessSet> {
        self.expected_sink.as_ref()
    }

    /// The correct processes (all vertices minus the Byzantine ones).
    pub fn correct(&self) -> ProcessSet {
        self.graph
            .vertices()
            .filter(|v| !self.byzantine.contains(v))
            .collect()
    }

    /// The safe subgraph `G_safe = G[Π_C]` (Section II-C).
    pub fn safe_subgraph(&self) -> DiGraph {
        self.graph.induced(&self.correct())
    }
}

/// Fig. 1a: violates BFT-CUP — process 4 is the only bridge between
/// `{1,2,3}` and `{5,6,7,8}`.
pub fn fig1a() -> FigureGraph {
    let graph = DiGraph::from_edges([
        (1, 2),
        (1, 3),
        (1, 4),
        (2, 1),
        (2, 3),
        (3, 1),
        (3, 2),
        (4, 1),
        (4, 5),
        (5, 4),
        (5, 6),
        (5, 7),
        (5, 8),
        (6, 5),
        (6, 7),
        (7, 5),
        (7, 8),
        (8, 5),
        (8, 6),
    ]);
    FigureGraph {
        name: "fig1a",
        graph,
        byzantine: process_set([4]),
        fault_threshold: 1,
        expected_sink: None,
    }
}

/// Fig. 1b: satisfies BFT-CUP for `f = 1`; sink of `G_safe` is `{1,2,3}`;
/// the Sink algorithm returns `{1,2,3,4}` (Byzantine 4 absorbed into `S2`).
pub fn fig1b() -> FigureGraph {
    let graph = DiGraph::from_edges([
        // sink triangle (2-strongly connected)
        (1, 2),
        (1, 3),
        (2, 1),
        (2, 3),
        (3, 1),
        (3, 2),
        // knowledge of the Byzantine process 4 (PD₁ = {2,3,4})
        (1, 4),
        (3, 4),
        // Byzantine 4's actual PD
        (4, 1),
        (4, 2),
        (4, 3),
        // non-sink members with ≥ 2 node-disjoint paths to the sink
        (5, 1),
        (5, 2),
        (5, 6),
        (6, 2),
        (6, 3),
        (6, 5),
        (7, 5),
        (7, 6),
        (8, 5),
        (8, 6),
    ]);
    FigureGraph {
        name: "fig1b",
        graph,
        byzantine: process_set([4]),
        fault_threshold: 1,
        expected_sink: Some(process_set([1, 2, 3, 4])),
    }
}

/// Fig. 2a: system A — complete K4 on `{1,2,3,4}`, process 4 faulty.
pub fn fig2a() -> FigureGraph {
    FigureGraph {
        name: "fig2a",
        graph: DiGraph::complete(&process_set([1, 2, 3, 4])),
        byzantine: process_set([4]),
        fault_threshold: 1,
        expected_sink: Some(process_set([1, 2, 3, 4])),
    }
}

/// Fig. 2b: system B — complete K4 on `{5,6,7,8}`, process 5 faulty.
pub fn fig2b() -> FigureGraph {
    FigureGraph {
        name: "fig2b",
        graph: DiGraph::complete(&process_set([5, 6, 7, 8])),
        byzantine: process_set([5]),
        fault_threshold: 1,
        expected_sink: Some(process_set([5, 6, 7, 8])),
    }
}

/// Fig. 2c: system AB — the union of A and B with a single bridging edge
/// `5 → 4`, all processes correct, forming a 1-OSR graph whose unique sink
/// is `{1,2,3,4}`.
pub fn fig2c() -> FigureGraph {
    let mut graph = DiGraph::complete(&process_set([1, 2, 3, 4]));
    graph.merge(&DiGraph::complete(&process_set([5, 6, 7, 8])));
    graph.add_edge(5.into(), 4.into());
    FigureGraph {
        name: "fig2c",
        graph,
        byzantine: ProcessSet::new(),
        fault_threshold: 0,
        expected_sink: Some(process_set([1, 2, 3, 4])),
    }
}

/// Fig. 3a: 2-OSR with process 1 faulty; true sink `{5,7,8}`; the non-sink
/// set `{1,2,3,4,6}` satisfies `isSinkGdi(2, {1,2,3,4,6}, {5,7})`.
pub fn fig3a() -> FigureGraph {
    let mut graph = DiGraph::complete(&process_set([1, 2, 3, 4, 6]));
    // true sink: bidirected triangle {5,7,8}
    graph.merge(&DiGraph::complete(&process_set([5, 7, 8])));
    // cross edges giving each correct non-sink member 2 disjoint paths to
    // every sink member, while leaving 8 with only 2 pointers from
    // {1,2,3,4,6} (so 8 stays outside the false S2 at g = 2).
    for (a, b) in [
        (2, 5),
        (3, 5),
        (4, 5),
        (2, 7),
        (4, 7),
        (6, 7),
        (3, 8),
        (6, 8),
    ] {
        graph.add_edge(a.into(), b.into());
    }
    FigureGraph {
        name: "fig3a",
        graph,
        byzantine: process_set([1]),
        fault_threshold: 1,
        expected_sink: Some(process_set([5, 7, 8])),
    }
}

/// Fig. 3b: 3-OSR with processes 5 and 7 faulty; the sink is
/// `{1,2,3,4,6}`; locally indistinguishable from Fig. 3a for `{2,3,4,6}`.
pub fn fig3b() -> FigureGraph {
    let mut graph = DiGraph::complete(&process_set([1, 2, 3, 4, 6]));
    for (a, b) in [(2, 5), (3, 5), (4, 5), (2, 7), (4, 7), (6, 7)] {
        graph.add_edge(a.into(), b.into());
    }
    // Byzantine PDs (arbitrary, drawn pointing back into the system)
    for (a, b) in [(5, 1), (5, 6), (7, 2), (7, 6)] {
        graph.add_edge(a.into(), b.into());
    }
    FigureGraph {
        name: "fig3b",
        graph,
        byzantine: process_set([5, 7]),
        fault_threshold: 2,
        expected_sink: Some(process_set([1, 2, 3, 4, 5, 6, 7])),
    }
}

/// Fig. 4a: extended 2-OSR where the core differs from the sink component.
///
/// The whole 9-vertex graph is a single 2-strongly-connected SCC (so the
/// sink component is all of `{1,…,9}`), while the core is the complete
/// subgraph `{1,…,5}` with `k_Gdi = 3`:
///
/// * core `{1,…,5}`: complete, `κ = 4`, size bound gives `f_Gdi = 2`;
///   exactly two members (4 and 5) have edges out of the core, within the
///   `≤ f_Gdi` boundary budget;
/// * periphery `{6,7,8,9}`: a bidirected ring (`κ = 2`), each member
///   pointing at three *staggered* core members, so every periphery-based
///   candidate either has too many boundary members or connectivity ≤ 2;
/// * C2 holds with three node-disjoint paths from every periphery process
///   to every core member.
pub fn fig4a() -> FigureGraph {
    let mut graph = DiGraph::complete(&process_set([1, 2, 3, 4, 5]));
    // periphery ring, both directions
    for (a, b) in [(6u64, 7u64), (7, 8), (8, 9), (9, 6)] {
        graph.add_edge(a.into(), b.into());
        graph.add_edge(b.into(), a.into());
    }
    // staggered fan-in: three distinct core members each
    for (a, b) in [
        (6u64, 1u64),
        (6, 2),
        (6, 3),
        (7, 2),
        (7, 3),
        (7, 4),
        (8, 3),
        (8, 4),
        (8, 5),
        (9, 4),
        (9, 5),
        (9, 1),
    ] {
        graph.add_edge(a.into(), b.into());
    }
    // two core exits close the single SCC and keep κ(G) = 2
    graph.add_edge(4.into(), 9.into());
    graph.add_edge(5.into(), 6.into());
    FigureGraph {
        name: "fig4a",
        graph,
        byzantine: ProcessSet::new(),
        fault_threshold: 1,
        expected_sink: Some(process_set([1, 2, 3, 4, 5])),
    }
}

/// Fig. 4b: extended 2-OSR where the core equals the sink component:
/// complete core `{5,…,9}` (`k_Gdi = 3`), non-core `{1,2,3,4}` a complete
/// K4 with two direct core edges each, staggered so no false sink with
/// connectivity ≥ 3 can form.
pub fn fig4b() -> FigureGraph {
    let mut graph = DiGraph::complete(&process_set([1, 2, 3, 4]));
    graph.merge(&DiGraph::complete(&process_set([5, 6, 7, 8, 9])));
    for (a, b) in [
        (1, 5),
        (1, 6),
        (2, 6),
        (2, 7),
        (3, 7),
        (3, 8),
        (4, 8),
        (4, 5),
    ] {
        graph.add_edge(a.into(), b.into());
    }
    FigureGraph {
        name: "fig4b",
        graph,
        byzantine: ProcessSet::new(),
        fault_threshold: 1,
        expected_sink: Some(process_set([5, 6, 7, 8, 9])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;
    use crate::osr::osr_report;
    use crate::predicates::is_sink_gdi;
    use crate::view::KnowledgeView;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn fig1a_pd1_matches_caption() {
        let f = fig1a();
        assert_eq!(f.graph().out_neighbors(p(1)), process_set([2, 3, 4]));
    }

    #[test]
    fn fig1a_removing_4_disconnects() {
        let f = fig1a();
        let mut g = f.graph().clone();
        g.remove_vertex(p(4));
        assert!(!g.is_undirected_connected());
    }

    #[test]
    fn fig1a_safe_subgraph_violates_bft_cup() {
        let f = fig1a();
        let report = osr_report(&f.safe_subgraph(), f.fault_threshold() + 1);
        assert!(!report.is_k_osr());
    }

    #[test]
    fn fig1b_pd1_matches_caption() {
        let f = fig1b();
        assert_eq!(f.graph().out_neighbors(p(1)), process_set([2, 3, 4]));
    }

    #[test]
    fn fig1b_satisfies_bft_cup() {
        let f = fig1b();
        let report = osr_report(&f.safe_subgraph(), f.fault_threshold() + 1);
        assert!(report.is_k_osr(), "{report:?}");
        let sink = report.sink_members().unwrap();
        assert_eq!(*sink, process_set([1, 2, 3]));
        assert!(sink.len() > 2 * f.fault_threshold());
    }

    #[test]
    fn fig2a_2b_satisfy_bft_cup() {
        for f in [fig2a(), fig2b()] {
            let report = osr_report(&f.safe_subgraph(), 2);
            assert!(report.is_k_osr(), "{}: {report:?}", f.name());
        }
    }

    #[test]
    fn fig2_sink_predicates_from_impossibility_proof() {
        // isSinkGdi(1, {1,2,3}, {4}) and isSinkGdi(1, {6,7,8}, {5}) on the
        // combined system AB (Section IV).
        let view = KnowledgeView::omniscient(fig2c().graph());
        assert!(is_sink_gdi(
            &view,
            1,
            &process_set([1, 2, 3]),
            &process_set([4])
        ));
        assert!(is_sink_gdi(
            &view,
            1,
            &process_set([6, 7, 8]),
            &process_set([5])
        ));
    }

    #[test]
    fn fig2c_is_1_osr_with_unique_sink() {
        let f = fig2c();
        let report = osr_report(f.graph(), 1);
        assert!(report.is_k_osr(), "{report:?}");
        assert_eq!(report.sink_members(), Some(&process_set([1, 2, 3, 4])));
    }

    #[test]
    fn fig3a_false_sink_predicate_holds() {
        // The exact claim from Section IV: isSinkGdi(2, {1,2,3,4,6}, {5,7}).
        let view = KnowledgeView::omniscient(fig3a().graph());
        assert!(is_sink_gdi(
            &view,
            2,
            &process_set([1, 2, 3, 4, 6]),
            &process_set([5, 7])
        ));
    }

    #[test]
    fn fig3a_is_2_osr_with_true_sink() {
        let f = fig3a();
        let report = osr_report(&f.safe_subgraph(), 2);
        assert!(report.is_k_osr(), "{report:?}");
        assert_eq!(report.sink_members(), Some(&process_set([5, 7, 8])));
    }

    #[test]
    fn fig3b_is_3_osr_with_big_sink() {
        let f = fig3b();
        let report = osr_report(&f.safe_subgraph(), 3);
        assert!(report.is_k_osr(), "{report:?}");
        assert_eq!(report.sink_members(), Some(&process_set([1, 2, 3, 4, 6])));
        assert!(report.sink_members().unwrap().len() > 2 * f.fault_threshold());
    }

    #[test]
    fn fig3_views_indistinguishable_for_shared_processes() {
        // Processes {2,3,4,6} have identical PDs in 3a and 3b once the
        // processes absent from 3b (process 8) are silent/slow: their PD
        // entries toward 8 are the only difference, and 8 never answers.
        let a = fig3a();
        let b = fig3b();
        for pid in [2u64, 4] {
            // 2 and 4 do not know 8 at all: PDs identical.
            assert_eq!(
                a.graph().out_neighbors(p(pid)),
                b.graph().out_neighbors(p(pid)),
                "process {pid}"
            );
        }
        for pid in [3u64, 6] {
            // 3 and 6 differ from 3b only by the edge toward 8.
            let mut pd_a = a.graph().out_neighbors(p(pid));
            pd_a.remove(&p(8));
            assert_eq!(pd_a, b.graph().out_neighbors(p(pid)), "process {pid}");
        }
    }

    #[test]
    fn fig4a_whole_graph_is_one_scc() {
        let f = fig4a();
        let report = osr_report(f.graph(), 2);
        assert!(report.is_k_osr(), "{report:?}");
        assert_eq!(
            report.sink_members().map(|s| s.len()),
            Some(9),
            "sink component must strictly contain the core"
        );
        assert_eq!(report.sink_connectivity, 2);
    }

    #[test]
    fn fig4b_sink_equals_core() {
        let f = fig4b();
        let report = osr_report(f.graph(), 2);
        assert!(report.is_k_osr(), "{report:?}");
        assert_eq!(report.sink_members(), Some(&process_set([5, 6, 7, 8, 9])));
    }

    #[test]
    fn all_figures_undirected_connected() {
        for f in [
            fig1a(),
            fig1b(),
            fig2a(),
            fig2b(),
            fig2c(),
            fig3a(),
            fig3b(),
            fig4a(),
            fig4b(),
        ] {
            assert!(
                f.graph().is_undirected_connected(),
                "{} must be connected",
                f.name()
            );
        }
    }

    #[test]
    fn byzantine_sets_match_captions() {
        assert_eq!(*fig1a().byzantine(), process_set([4]));
        assert_eq!(*fig1b().byzantine(), process_set([4]));
        assert_eq!(*fig2a().byzantine(), process_set([4]));
        assert_eq!(*fig2b().byzantine(), process_set([5]));
        assert!(fig2c().byzantine().is_empty());
        assert_eq!(*fig3a().byzantine(), process_set([1]));
        assert_eq!(*fig3b().byzantine(), process_set([5, 7]));
    }
}
