//! Knowledge connectivity graphs for BFT-CUP / BFT-CUPFT.
//!
//! This crate is the graph-theoretic substrate of the reproduction of
//! *“Knowledge Connectivity Requirements for Solving BFT Consensus with
//! Unknown Participants and Fault Threshold”* (ICDCS 2024). It provides:
//!
//! * [`ProcessId`] — sparse, Sybil-resistant process identifiers,
//! * [`DiGraph`] — directed graphs over process identifiers,
//! * strongly connected components and condensations ([`strongly_connected_components`], [`condensation`]),
//! * vertex connectivity and node-disjoint paths via unit-capacity
//!   max-flow / Menger duality ([`DisjointPaths`]),
//! * the `k`-OSR and extended-`k`-OSR recognizers of Definitions 1 and 2
//!   ([`osr_report`], [`is_extended_k_osr`]),
//! * the `isSinkGdi` predicate family of Theorem 3 / Algorithm 2 and the
//!   core-identification rules of Theorem 8 ([`is_sink_gdi`],
//!   [`CandidateSearch`]),
//! * the witness graphs of Figures 1–4 ([`fig1a`]–[`fig4b`]) and random
//!   generators for the `G_di` and extended-OSR graph families
//!   ([`Generator`]),
//! * parametric topology families with advertised guarantees
//!   ([`GraphFamily`]) and the large-`n` fast paths that certify them
//!   without the exponential candidate machinery ([`sink_with_threshold`],
//!   [`scale_osr_check`]).
//!
//! `docs/PAPER_MAP.md` at the repository root maps every definition,
//! theorem, figure, and table of the paper to the modules, tests, and
//! experiment binaries that reproduce it.
//!
//! # Example
//!
//! ```
//! use cupft_graph::{DiGraph, ProcessId};
//!
//! let mut g = DiGraph::new();
//! let p = |n| ProcessId::new(n);
//! // A 3-cycle is 1-strongly connected.
//! g.add_edge(p(1), p(2));
//! g.add_edge(p(2), p(3));
//! g.add_edge(p(3), p(1));
//! assert!(g.is_k_strongly_connected(1));
//! assert!(!g.is_k_strongly_connected(2));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod candidates;
mod connectivity;
mod digraph;
mod dot;
mod error;
mod extended;
mod families;
mod figures;
mod generate;
mod id;
mod maxflow;
mod osr;
mod predicates;
mod scale;
mod scc;
mod view;

pub use candidates::{
    enumerate_sink_candidates, exact_best_sink, exact_sink_with_threshold, CandidateSearch,
    SinkCandidate,
};
pub use connectivity::DisjointPaths;
pub use digraph::DiGraph;
pub use dot::{to_dot, DotStyle};
pub use error::GraphError;
pub use extended::{is_extended_k_osr, CoreWitness, ExtendedOsrReport};
pub use families::{FamilyGuarantees, FamilySample, GraphFamily};
pub use figures::{fig1a, fig1b, fig2a, fig2b, fig2c, fig3a, fig3b, fig4a, fig4b, FigureGraph};
pub use generate::{GdiParams, GeneratedSystem, Generator};
pub use id::{process_set, ProcessId, ProcessSet};
pub use maxflow::UnitFlowNetwork;
pub use osr::{osr_report, sink_members, OsrReport};
pub use predicates::{derive_s2, is_sink_gdi, is_sink_star, max_threshold, SinkDecomposition};
pub use scale::{scale_osr_check, sink_with_threshold, CheckBudget, ScaleReport};
pub use scc::{condensation, strongly_connected_components, Condensation};
pub use view::KnowledgeView;
