//! Random generators for the `G_di` (BFT-CUP) and extended-OSR (BFT-CUPFT)
//! graph families.
//!
//! Generation is *constructive with verification*: graphs are built so the
//! target property should hold by design (circulant/complete sinks, direct
//! fan-in from non-sink layers) and then re-checked with the exact
//! recognizers; rare rejected samples are retried with a perturbed seed.
//! This keeps the generators honest — every returned graph provably
//! satisfies its family's definition.

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::{ProcessId, ProcessSet};
use crate::osr::osr_report;

/// Parameters for generating a knowledge connectivity graph satisfying the
/// BFT-CUP requirements (Theorem 1) — or the BFT-CUPFT requirements when
/// [`GdiParams::extended`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GdiParams {
    /// Fault threshold `f` (the sink must hold `≥ 2f+1` correct processes
    /// and be `(f+1)`-strongly connected).
    pub fault_threshold: usize,
    /// Number of *correct* sink/core members; must be `≥ 2f+1`.
    pub sink_size: usize,
    /// Number of correct non-sink members.
    pub non_sink_size: usize,
    /// Number of Byzantine processes to embed (`≤ f`). Byzantine processes
    /// are attached adjacent to the sink (the hardest placement).
    pub byzantine_count: usize,
    /// Extra random intra-non-sink edges per non-sink process.
    pub extra_edges: usize,
    /// Generate the *extended* family (BFT-CUPFT): the core is complete
    /// (so `k_Gdi = ⌊(m−1)/2⌋+1`) and non-core attachments are staggered to
    /// keep every false sink strictly below the core's connectivity.
    pub extended: bool,
    /// Number of periphery layers (default 1: every non-sink process
    /// points directly at sink members). With depth `d > 1`, layer `ℓ`
    /// points at `k` distinct members of layer `ℓ−1` (layer 0 = sink),
    /// exercising the transitive node-disjoint-path requirements; the
    /// generated sample is still verified by the exact recognizers.
    pub periphery_depth: usize,
}

impl GdiParams {
    /// Conservative defaults: `f = 1`, minimal sink, a small periphery.
    pub fn new(fault_threshold: usize) -> Self {
        GdiParams {
            fault_threshold,
            sink_size: 2 * fault_threshold + 1,
            non_sink_size: 2 * fault_threshold + 2,
            byzantine_count: fault_threshold,
            extra_edges: 1,
            extended: false,
            periphery_depth: 1,
        }
    }

    fn validate(&self) -> Result<(), GraphError> {
        if self.sink_size < 2 * self.fault_threshold + 1 {
            return Err(GraphError::InvalidParams {
                reason: format!(
                    "sink_size {} < 2f+1 = {}",
                    self.sink_size,
                    2 * self.fault_threshold + 1
                ),
            });
        }
        if self.byzantine_count > self.fault_threshold {
            return Err(GraphError::InvalidParams {
                reason: format!(
                    "byzantine_count {} exceeds fault threshold {}",
                    self.byzantine_count, self.fault_threshold
                ),
            });
        }
        Ok(())
    }
}

/// A generated system: the knowledge connectivity graph plus the ground
/// truth the generator knows about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedSystem {
    /// The knowledge connectivity graph (including Byzantine vertices).
    pub graph: DiGraph,
    /// The correct sink/core members.
    pub sink: ProcessSet,
    /// The Byzantine processes.
    pub byzantine: ProcessSet,
    /// The fault threshold the graph was built for.
    pub fault_threshold: usize,
}

impl GeneratedSystem {
    /// All correct processes.
    pub fn correct(&self) -> ProcessSet {
        self.graph
            .vertices()
            .filter(|v| !self.byzantine.contains(v))
            .collect()
    }

    /// The safe subgraph `G[Π_C]`.
    pub fn safe_subgraph(&self) -> DiGraph {
        self.graph.induced(&self.correct())
    }

    /// The set the Sink/Core algorithms are expected to return: the correct
    /// sink members plus any Byzantine process adjacent enough to be
    /// absorbed into `S2` (here: all Byzantine processes, which the
    /// generator wires with `> f` pointers from the sink).
    pub fn expected_detection(&self) -> ProcessSet {
        self.sink.union(&self.byzantine).copied().collect()
    }
}

/// Deterministic, seeded generator for the graph families.
#[derive(Debug, Clone)]
pub struct Generator {
    rng: StdRng,
}

impl Generator {
    /// Creates a generator from a seed; identical seeds produce identical
    /// graphs.
    pub fn from_seed(seed: u64) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates a system whose safe subgraph satisfies the BFT-CUP
    /// requirements (`(f+1)`-OSR with a `≥ 2f+1` sink), or the BFT-CUPFT
    /// requirements when `params.extended` is set.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParams`] for inconsistent parameters;
    /// [`GraphError::GenerationFailed`] if no valid sample is found within
    /// the retry budget (indicates a parameter corner, not randomness).
    pub fn generate(&mut self, params: &GdiParams) -> Result<GeneratedSystem, GraphError> {
        params.validate()?;
        const ATTEMPTS: usize = 32;
        for _ in 0..ATTEMPTS {
            let sys = self.build(params);
            let k = params.fault_threshold + 1;
            let report = osr_report(&sys.safe_subgraph(), k);
            if sys.sink.len() == params.sink_size
                && sys.sink.len() > 2 * params.fault_threshold
                && report.is_k_osr()
                && report.sink_members().is_some_and(|s| *s == sys.sink)
            {
                return Ok(sys);
            }
        }
        Err(GraphError::GenerationFailed {
            property: format!("{}-OSR safe subgraph", params.fault_threshold + 1),
            attempts: ATTEMPTS,
        })
    }

    fn build(&mut self, params: &GdiParams) -> GeneratedSystem {
        let f = params.fault_threshold;
        let k = f + 1;
        // Sparse, shuffled ID space (IDs need not be consecutive).
        // Strictly increasing gaps guarantee uniqueness — a collision here
        // would silently shrink the sink below 2f+1.
        let count = params.sink_size + params.non_sink_size + params.byzantine_count;
        let mut acc = 0u64;
        let mut raw_ids: Vec<u64> = Vec::with_capacity(count);
        for _ in 0..count {
            acc += self.rng.random_range(1..=7);
            raw_ids.push(acc);
        }
        raw_ids.shuffle(&mut self.rng);
        let mut iter = raw_ids.into_iter().map(ProcessId::new);
        let sink: ProcessSet = (&mut iter).take(params.sink_size).collect();
        let non_sink: Vec<ProcessId> = (&mut iter).take(params.non_sink_size).collect();
        let byzantine: ProcessSet = iter.collect();

        // Sink scaffold: complete for the extended family (maximum-
        // connectivity core), circulant with k jumps otherwise (exactly
        // k-strongly connected).
        let mut graph = if params.extended {
            DiGraph::complete(&sink)
        } else {
            let mut g = DiGraph::circulant(&sink, k);
            // densify a little beyond the circulant for variety
            let sink_vec: Vec<ProcessId> = sink.iter().copied().collect();
            for _ in 0..params.extra_edges * sink_vec.len() / 2 {
                let a = *sink_vec.choose(&mut self.rng).expect("non-empty");
                let b = *sink_vec.choose(&mut self.rng).expect("non-empty");
                g.add_edge(a, b);
            }
            g
        };

        // Non-sink members, split into `periphery_depth` layers. Layer 1
        // points at k distinct sink members chosen round-robin with random
        // rotation (staggering keeps false sinks from absorbing the whole
        // core in the extended family); layer ℓ > 1 points at k distinct
        // members of layer ℓ−1 *plus* one direct sink anchor (the anchor
        // keeps the disjoint-path count from collapsing at narrow layers;
        // the recognizer re-verifies every sample anyway). Random
        // intra-layer back-edges add variety without creating new sinks.
        let sink_vec: Vec<ProcessId> = sink.iter().copied().collect();
        let core_k = if params.extended {
            (sink_vec.len() - 1) / 2 + 1
        } else {
            k
        };
        let depth = params.periphery_depth.max(1);
        let per_layer = non_sink.len().div_ceil(depth);
        let layers: Vec<&[ProcessId]> = if non_sink.is_empty() {
            Vec::new()
        } else {
            non_sink.chunks(per_layer.max(1)).collect()
        };
        let mut rotation = self.rng.random_range(0..sink_vec.len());
        for (layer_idx, layer) in layers.iter().enumerate() {
            for (idx, &v) in layer.iter().enumerate() {
                graph.add_vertex(v);
                let parents: &[ProcessId] = if layer_idx == 0 {
                    &sink_vec
                } else {
                    layers[layer_idx - 1]
                };
                // k distinct parents (fall back to the sink when the
                // previous layer is narrower than k)
                if parents.len() >= core_k {
                    for j in 0..core_k {
                        graph.add_edge(v, parents[(rotation + j) % parents.len()]);
                    }
                } else {
                    for &p in parents {
                        graph.add_edge(v, p);
                    }
                    for j in 0..(core_k - parents.len()) {
                        graph.add_edge(v, sink_vec[(rotation + j) % sink_vec.len()]);
                    }
                }
                if layer_idx > 0 {
                    // direct sink anchor for disjointness
                    graph.add_edge(v, sink_vec[rotation % sink_vec.len()]);
                }
                rotation = (rotation + core_k.max(1)) % sink_vec.len().max(1);
                // intra-layer edges (earlier members only: keeps the
                // condensation free of extra sinks)
                for _ in 0..params.extra_edges {
                    if idx > 0 {
                        let w = layer[self.rng.random_range(0..idx)];
                        graph.add_edge(v, w);
                        graph.add_edge(w, v);
                    }
                }
            }
        }

        // Byzantine processes: adjacent to the sink with > f pointers from
        // correct sink members (so they are absorbable into S2), plus
        // arbitrary out-edges of their own.
        for &b in &byzantine {
            graph.add_vertex(b);
            // f+1 correct sink members know b
            for &s in sink_vec.iter().take(f + 1) {
                graph.add_edge(s, b);
            }
            // b claims to know a few processes
            for _ in 0..k {
                let t = *sink_vec.choose(&mut self.rng).expect("non-empty");
                graph.add_edge(b, t);
            }
            if let Some(&t) = non_sink.first() {
                graph.add_edge(b, t);
            }
        }

        GeneratedSystem {
            graph,
            sink,
            byzantine,
            fault_threshold: f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extended::is_extended_k_osr;

    #[test]
    fn generated_bft_cup_graphs_are_valid() {
        for seed in 0..10 {
            let mut generator = Generator::from_seed(seed);
            let params = GdiParams::new(1);
            let sys = generator.generate(&params).expect("generation succeeds");
            let report = osr_report(&sys.safe_subgraph(), 2);
            assert!(report.is_k_osr(), "seed {seed}: {report:?}");
            assert_eq!(report.sink_members(), Some(&sys.sink));
            assert!(sys.sink.len() >= 3);
        }
    }

    #[test]
    fn generated_graphs_deterministic_by_seed() {
        let params = GdiParams::new(1);
        let a = Generator::from_seed(42).generate(&params).unwrap();
        let b = Generator::from_seed(42).generate(&params).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.sink, b.sink);
    }

    #[test]
    fn different_seeds_differ() {
        let params = GdiParams::new(1);
        let a = Generator::from_seed(1).generate(&params).unwrap();
        let b = Generator::from_seed(2).generate(&params).unwrap();
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn f2_generation() {
        let mut generator = Generator::from_seed(7);
        let params = GdiParams::new(2);
        let sys = generator.generate(&params).unwrap();
        let report = osr_report(&sys.safe_subgraph(), 3);
        assert!(report.is_k_osr());
        assert!(sys.sink.len() >= 5);
        assert_eq!(sys.byzantine.len(), 2);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut generator = Generator::from_seed(0);
        let mut params = GdiParams::new(1);
        params.sink_size = 2; // < 2f+1
        assert!(matches!(
            generator.generate(&params),
            Err(GraphError::InvalidParams { .. })
        ));
        let mut params = GdiParams::new(1);
        params.byzantine_count = 5;
        assert!(matches!(
            generator.generate(&params),
            Err(GraphError::InvalidParams { .. })
        ));
    }

    #[test]
    fn extended_generation_produces_valid_core() {
        for seed in 0..5 {
            let mut generator = Generator::from_seed(seed);
            let mut params = GdiParams::new(1);
            params.extended = true;
            params.byzantine_count = 0;
            params.non_sink_size = 3;
            let sys = generator.generate(&params).unwrap();
            let report = is_extended_k_osr(&sys.safe_subgraph(), 2, 12)
                .expect("graph small enough for exact check");
            assert!(report.holds(), "seed {seed}: {report:?}");
            assert_eq!(
                report.core.as_ref().map(|c| &c.members),
                Some(&sys.sink),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn byzantine_absorbable_into_s2() {
        let mut generator = Generator::from_seed(3);
        let params = GdiParams::new(1);
        let sys = generator.generate(&params).unwrap();
        for &b in &sys.byzantine {
            let pointers = sys
                .sink
                .iter()
                .filter(|&&s| sys.graph.has_edge(s, b))
                .count();
            assert!(pointers > sys.fault_threshold);
        }
    }
}

#[cfg(test)]
mod layered_tests {
    use super::*;
    use crate::osr::osr_report;

    #[test]
    fn layered_periphery_still_valid_gdi() {
        for depth in [2usize, 3] {
            for seed in 0..4 {
                let mut params = GdiParams::new(1);
                params.non_sink_size = 9;
                params.periphery_depth = depth;
                let sys = Generator::from_seed(seed)
                    .generate(&params)
                    .expect("layered generation succeeds");
                let report = osr_report(&sys.safe_subgraph(), 2);
                assert!(report.is_k_osr(), "depth {depth} seed {seed}: {report:?}");
            }
        }
    }

    #[test]
    fn layered_extended_periphery_valid() {
        let mut params = GdiParams::new(1);
        params.extended = true;
        params.byzantine_count = 0;
        params.non_sink_size = 6;
        params.periphery_depth = 2;
        for seed in 0..3 {
            let sys = Generator::from_seed(seed)
                .generate(&params)
                .expect("layered extended generation succeeds");
            let report = crate::extended::is_extended_k_osr(&sys.safe_subgraph(), 2, 12)
                .expect("small enough");
            assert!(report.holds(), "seed {seed}: {report:?}");
            assert_eq!(report.core.unwrap().members, sys.sink, "seed {seed}");
        }
    }

    #[test]
    fn deep_periphery_is_structurally_layered() {
        let mut deep = GdiParams::new(1);
        deep.non_sink_size = 12;
        deep.periphery_depth = 3;
        deep.byzantine_count = 0;
        let sys = Generator::from_seed(5).generate(&deep).unwrap();
        // Some periphery member must rely on other periphery members for
        // part of its knowledge: fewer direct sink edges than k+1 while
        // having periphery out-edges.
        let layered_member = sys
            .graph
            .vertices()
            .filter(|v| !sys.sink.contains(v))
            .any(|v| {
                let outs = sys.graph.out_neighbors(v);
                let to_sink = outs.iter().filter(|t| sys.sink.contains(t)).count();
                let to_periphery = outs.len() - to_sink;
                to_periphery >= 2 && to_sink < sys.sink.len()
            });
        assert!(
            layered_member,
            "depth-3 periphery must chain through layers"
        );
    }
}
