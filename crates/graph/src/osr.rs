//! The `k`-One Sink Reducibility (`k`-OSR) recognizer (Definition 1).

use crate::digraph::DiGraph;
use crate::id::ProcessSet;
use crate::scc::condensation;

/// The result of checking a graph against the four `k`-OSR conditions of
/// Definition 1.
///
/// The conditions are:
/// 1. the undirected counterpart of the graph is connected;
/// 2. the condensation has exactly one sink component;
/// 3. the sink component is `k`-strongly connected;
/// 4. there are at least `k` node-disjoint paths from every non-sink
///    process to every sink process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsrReport {
    /// The `k` the report was evaluated against.
    pub k: usize,
    /// Condition 1: undirected counterpart is connected.
    pub undirected_connected: bool,
    /// Number of sink components in the condensation (condition 2 requires
    /// exactly one).
    pub sink_count: usize,
    /// The unique sink component, when `sink_count == 1`.
    pub sink: Option<ProcessSet>,
    /// Strong connectivity of the sink component (0 when no unique sink),
    /// capped at `max(k, (|S|−1)/2 + 1)` — no predicate of the paper ever
    /// consults `κ` beyond the sink-size bound, so connectivity above the
    /// cap is reported as the cap rather than paid for.
    pub sink_connectivity: usize,
    /// Minimum over all (non-sink, sink) ordered pairs of the number of
    /// node-disjoint paths, capped like [`Self::sink_connectivity`];
    /// `usize::MAX` when there are no non-sink members (vacuously
    /// satisfied).
    pub min_nonsink_to_sink_paths: usize,
}

impl OsrReport {
    /// Whether every `k`-OSR condition holds.
    pub fn is_k_osr(&self) -> bool {
        self.undirected_connected
            && self.sink_count == 1
            && self.sink_connectivity >= self.k
            && self.min_nonsink_to_sink_paths >= self.k
    }

    /// The sink members, when the graph has a unique sink.
    pub fn sink_members(&self) -> Option<&ProcessSet> {
        self.sink.as_ref()
    }
}

/// Evaluates the `k`-OSR conditions on `g`.
///
/// # Example
///
/// ```
/// use cupft_graph::{osr_report, DiGraph, process_set};
///
/// // Bidirected triangle sink {1,2,3}; 4 points into it twice.
/// let mut g = DiGraph::complete(&process_set([1, 2, 3]));
/// g.add_edge(4.into(), 1.into());
/// g.add_edge(4.into(), 2.into());
/// let report = osr_report(&g, 2);
/// assert!(report.is_k_osr());
/// assert_eq!(report.sink_members(), Some(&process_set([1, 2, 3])));
/// ```
pub fn osr_report(g: &DiGraph, k: usize) -> OsrReport {
    let undirected_connected = g.is_undirected_connected();
    let cond = condensation(g);
    let sinks = cond.sinks();
    let sink_count = sinks.len();
    let sink = if sink_count == 1 {
        Some(sinks[0].clone())
    } else {
        None
    };

    let (sink_connectivity, min_paths) = match &sink {
        Some(sink_set) => {
            // The grid hot path: κ and the cross-path minimum are capped at
            // the largest value any predicate can consult — `k` itself or
            // the `(|S1|−1)/2 + 1` threshold bound — so family sweeps never
            // pay for connectivity beyond what the verdict needs.
            let cap = k.max((sink_set.len().saturating_sub(1)) / 2 + 1);
            let sub = g.induced(sink_set);
            let kappa = sub.strong_connectivity_capped(cap);
            let non_sink: ProcessSet = g.vertices().filter(|v| !sink_set.contains(v)).collect();
            let min_paths = if non_sink.is_empty() {
                usize::MAX
            } else {
                g.min_cross_disjoint_paths_capped(&non_sink, sink_set, cap)
            };
            (kappa, min_paths)
        }
        None => (0, 0),
    };

    OsrReport {
        k,
        undirected_connected,
        sink_count,
        sink,
        sink_connectivity,
        min_nonsink_to_sink_paths: min_paths,
    }
}

/// The members of all sink components of `g` (usually exactly one
/// component for graphs of interest).
pub fn sink_members(g: &DiGraph) -> ProcessSet {
    let cond = condensation(g);
    let mut out = ProcessSet::new();
    for sink in cond.sinks() {
        out.extend(sink.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;

    #[test]
    fn triangle_with_feeders_is_2_osr() {
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.add_edge(4.into(), 1.into());
        g.add_edge(4.into(), 2.into());
        g.add_edge(5.into(), 2.into());
        g.add_edge(5.into(), 3.into());
        let r = osr_report(&g, 2);
        assert!(r.is_k_osr());
        assert_eq!(r.sink_connectivity, 2);
        assert_eq!(r.min_nonsink_to_sink_paths, 2);
    }

    #[test]
    fn single_feeder_edge_fails_2_osr_but_passes_1_osr() {
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.add_edge(4.into(), 1.into());
        assert!(!osr_report(&g, 2).is_k_osr());
        assert!(osr_report(&g, 1).is_k_osr());
    }

    #[test]
    fn two_sinks_fail() {
        // Two disjoint triangles joined by an undirected-connecting feeder.
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.merge(&DiGraph::complete(&process_set([4, 5, 6])));
        g.add_edge(7.into(), 1.into());
        g.add_edge(7.into(), 4.into());
        let r = osr_report(&g, 1);
        assert!(r.undirected_connected);
        assert_eq!(r.sink_count, 2);
        assert!(!r.is_k_osr());
        assert_eq!(sink_members(&g), process_set([1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn disconnected_graph_fails() {
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.merge(&DiGraph::complete(&process_set([4, 5, 6])));
        let r = osr_report(&g, 1);
        assert!(!r.undirected_connected);
        assert!(!r.is_k_osr());
    }

    #[test]
    fn whole_graph_strongly_connected_is_its_own_sink() {
        let g = DiGraph::complete(&process_set([1, 2, 3, 4]));
        let r = osr_report(&g, 3);
        assert!(r.is_k_osr());
        assert_eq!(r.sink, Some(process_set([1, 2, 3, 4])));
        // no non-sink members: vacuous path requirement
        assert_eq!(r.min_nonsink_to_sink_paths, usize::MAX);
    }

    #[test]
    fn path_requirement_counts_disjointness() {
        // 4 reaches the sink triangle twice but both routes share vertex 5.
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.add_edge(4.into(), 5.into());
        g.add_edge(5.into(), 1.into());
        g.add_edge(5.into(), 2.into());
        let r = osr_report(&g, 2);
        assert_eq!(r.min_nonsink_to_sink_paths, 1);
        assert!(!r.is_k_osr());
    }

    #[test]
    fn report_k_recorded() {
        let g = DiGraph::complete(&process_set([1, 2, 3]));
        assert_eq!(osr_report(&g, 7).k, 7);
    }

    #[test]
    fn connectivity_is_capped_at_threshold_bound() {
        // K8 is its own sink with kappa = 7, but no predicate consults
        // kappa beyond (|S|-1)/2 + 1 = 4; the report stops there.
        let g = DiGraph::complete(&process_set(1..=8));
        let r = osr_report(&g, 1);
        assert_eq!(r.sink_connectivity, 4);
        assert!(r.is_k_osr());
        // A k above the size bound raises the cap so the verdict is exact.
        let r = osr_report(&g, 7);
        assert_eq!(r.sink_connectivity, 7);
        assert!(r.is_k_osr());
        assert!(!osr_report(&g, 8).is_k_osr());
    }
}
