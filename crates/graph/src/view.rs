//! A process's local knowledge view: received PDs plus known identifiers.

use std::collections::BTreeMap;

use crate::digraph::DiGraph;
use crate::id::{ProcessId, ProcessSet};

/// The local knowledge a process accumulates while running the Discovery
/// algorithm (Algorithm 1): which processes it *knows about*
/// (`S_known`), and whose *participant detector outputs it has received and
/// verified* (`S_received`, with the PD contents).
///
/// All sink/core predicates (Theorems 3, 4, 8) are evaluated against a
/// `KnowledgeView`: the strong connectivity of a candidate set `S1` is
/// computable only when the view holds the PDs of every member of `S1`,
/// which is exactly why the paper splits sink members into `S1`
/// (connectivity computable) and `S2` (not).
///
/// # Example
///
/// ```
/// use cupft_graph::{KnowledgeView, ProcessId};
///
/// let p = |n| ProcessId::new(n);
/// let mut view = KnowledgeView::new(p(1), [p(2), p(3)].into_iter().collect());
/// assert!(view.knows(p(2)));
/// assert!(!view.has_pd_of(p(2)));
/// view.record_pd(p(2), [p(1), p(4)].into_iter().collect());
/// assert!(view.has_pd_of(p(2)));
/// assert!(view.knows(p(4))); // learned transitively from 2's PD
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeView {
    owner: ProcessId,
    pds: BTreeMap<ProcessId, ProcessSet>,
    known: ProcessSet,
}

impl KnowledgeView {
    /// Creates the initial view of process `owner` whose participant
    /// detector returned `own_pd`.
    ///
    /// Mirrors Algorithm 1 line 1: `S_PD = {⟨i, PDᵢ⟩}`,
    /// `S_known = PDᵢ ∪ {i}`, `S_received = {i}`.
    pub fn new(owner: ProcessId, own_pd: ProcessSet) -> Self {
        let mut known = own_pd.clone();
        known.insert(owner);
        let mut pds = BTreeMap::new();
        pds.insert(owner, own_pd);
        KnowledgeView { owner, pds, known }
    }

    /// Builds an *omniscient* view of an entire knowledge connectivity
    /// graph: every vertex known, every PD received.
    ///
    /// Used for static (whole-graph) evaluation of the predicates, e.g. the
    /// Figure 3 analysis where `isSinkGdi(2, {1,2,3,4,6}, {5,7})` is
    /// evaluated on the drawn graph.
    pub fn omniscient(graph: &DiGraph) -> Self {
        let owner = graph.vertices().next().unwrap_or_default();
        let mut pds = BTreeMap::new();
        let mut known = ProcessSet::new();
        for v in graph.vertices() {
            known.insert(v);
            let outs = graph.out_neighbors(v);
            known.extend(outs.iter().copied());
            pds.insert(v, outs);
        }
        KnowledgeView { owner, pds, known }
    }

    /// The process owning this view.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// `S_known`: every process this view has heard of.
    pub fn known(&self) -> &ProcessSet {
        &self.known
    }

    /// `S_received`: every process whose PD this view holds.
    pub fn received(&self) -> ProcessSet {
        self.pds.keys().copied().collect()
    }

    /// Number of PDs held.
    pub fn received_count(&self) -> usize {
        self.pds.len()
    }

    /// Whether `p` is in `S_known`.
    pub fn knows(&self, p: ProcessId) -> bool {
        self.known.contains(&p)
    }

    /// Whether the PD of `p` has been received.
    pub fn has_pd_of(&self, p: ProcessId) -> bool {
        self.pds.contains_key(&p)
    }

    /// The recorded PD of `p`, if received.
    pub fn pd_of(&self, p: ProcessId) -> Option<&ProcessSet> {
        self.pds.get(&p)
    }

    /// Adds `p` to `S_known` without recording a PD: an out-of-band hint
    /// rather than an Algorithm 1 step. Used when a late joiner is handed
    /// seed peers to bootstrap gossip from, and when a restored snapshot
    /// re-seeds identifiers that were known but whose PDs were never
    /// received. Returns `true` if the view changed.
    pub fn learn(&mut self, p: ProcessId) -> bool {
        self.known.insert(p)
    }

    /// Records a (signature-verified) PD for `author`.
    ///
    /// Mirrors Algorithm 1 lines 4–6: the author joins `S_received`, and
    /// both the author and every member of the PD join `S_known`.
    ///
    /// Returns `true` if the view changed. Re-recording an identical PD is
    /// a no-op; recording a *different* PD for the same author replaces it
    /// (cannot happen for correct authors, whose PD is immutable and
    /// signed — the discovery layer rejects conflicting signed PDs before
    /// they reach the view).
    pub fn record_pd(&mut self, author: ProcessId, pd: ProcessSet) -> bool {
        let mut changed = self.known.insert(author);
        for &p in &pd {
            changed |= self.known.insert(p);
        }
        match self.pds.get(&author) {
            Some(existing) if *existing == pd => changed,
            _ => {
                self.pds.insert(author, pd);
                true
            }
        }
    }

    /// Merges every PD of `other` into this view (the effect of receiving a
    /// `SETPDS` message carrying `other`'s `S_PD`).
    pub fn absorb(&mut self, other: &KnowledgeView) -> bool {
        let mut changed = false;
        for (&author, pd) in &other.pds {
            changed |= self.record_pd(author, pd.clone());
        }
        changed
    }

    /// The knowledge graph implied by the received PDs: vertices are
    /// `S_known`; an edge `i → j` exists iff `i`'s received PD contains `j`.
    pub fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new();
        for &v in &self.known {
            g.add_vertex(v);
        }
        for (&author, pd) in &self.pds {
            for &target in pd {
                g.add_edge(author, target);
            }
        }
        g
    }

    /// The knowledge graph restricted to processes whose PDs were received
    /// (the graph on which candidate connectivity is computable).
    pub fn received_graph(&self) -> DiGraph {
        let received = self.received();
        self.graph().induced(&received)
    }

    /// Processes in `S_known` whose PDs are still missing
    /// (`S_known ∖ S_received`).
    pub fn missing_pds(&self) -> ProcessSet {
        self.known
            .iter()
            .copied()
            .filter(|p| !self.pds.contains_key(p))
            .collect()
    }

    /// Iterates over `(author, pd)` pairs in deterministic order.
    pub fn pds(&self) -> impl Iterator<Item = (ProcessId, &ProcessSet)> + '_ {
        self.pds.iter().map(|(&a, pd)| (a, pd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn initial_view_matches_algorithm1_line1() {
        let view = KnowledgeView::new(p(1), process_set([2, 3, 4]));
        assert_eq!(view.owner(), p(1));
        assert_eq!(*view.known(), process_set([1, 2, 3, 4]));
        assert_eq!(view.received(), process_set([1]));
        assert_eq!(view.pd_of(p(1)), Some(&process_set([2, 3, 4])));
    }

    #[test]
    fn record_pd_expands_known() {
        let mut view = KnowledgeView::new(p(1), process_set([2]));
        assert!(view.record_pd(p(2), process_set([5, 6])));
        assert_eq!(*view.known(), process_set([1, 2, 5, 6]));
        assert_eq!(view.received(), process_set([1, 2]));
        // idempotent
        assert!(!view.record_pd(p(2), process_set([5, 6])));
    }

    #[test]
    fn absorb_merges_views() {
        let mut a = KnowledgeView::new(p(1), process_set([2]));
        let mut b = KnowledgeView::new(p(2), process_set([3]));
        b.record_pd(p(3), process_set([4]));
        assert!(a.absorb(&b));
        assert!(a.has_pd_of(p(3)));
        assert!(a.knows(p(4)));
        assert!(!a.absorb(&b));
    }

    #[test]
    fn graph_reflects_received_pds_only() {
        let mut view = KnowledgeView::new(p(1), process_set([2, 3]));
        view.record_pd(p(2), process_set([3]));
        let g = view.graph();
        assert!(g.has_edge(p(1), p(2)));
        assert!(g.has_edge(p(2), p(3)));
        // 3's PD unknown: no out-edges from 3.
        assert_eq!(g.out_degree(p(3)), 0);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn received_graph_excludes_unreceived() {
        let mut view = KnowledgeView::new(p(1), process_set([2, 3]));
        view.record_pd(p(2), process_set([1, 3]));
        let rg = view.received_graph();
        assert_eq!(rg.vertex_set(), process_set([1, 2]));
        assert!(rg.has_edge(p(2), p(1)));
        assert!(!rg.contains_vertex(p(3)));
    }

    #[test]
    fn missing_pds_listed() {
        let mut view = KnowledgeView::new(p(1), process_set([2, 3]));
        view.record_pd(p(2), process_set([4]));
        assert_eq!(view.missing_pds(), process_set([3, 4]));
    }

    #[test]
    fn omniscient_covers_whole_graph() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1)]);
        let view = KnowledgeView::omniscient(&g);
        assert_eq!(view.received(), process_set([1, 2, 3]));
        assert_eq!(view.graph(), g);
    }
}
