//! Directed graphs over process identifiers.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::id::{ProcessId, ProcessSet};

/// A directed graph whose vertices are [`ProcessId`]s.
///
/// This is the representation of a *knowledge connectivity graph*: an edge
/// `(i, j)` means process `i` initially knows process `j` (`j ∈ PDᵢ`,
/// Section II-C of the paper). The structure is deliberately ordered
/// (`BTreeMap`/`BTreeSet`) so that all traversals are deterministic.
///
/// Vertices may exist without edges (isolated processes are meaningful: a
/// process that knows nobody and is known by nobody).
///
/// # Example
///
/// ```
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let p = |n| ProcessId::new(n);
/// let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1)]);
/// assert_eq!(g.vertex_count(), 3);
/// assert!(g.has_edge(p(1), p(2)));
/// assert!(!g.has_edge(p(2), p(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    adj: BTreeMap<ProcessId, ProcessSet>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Builds a graph from raw `(from, to)` integer pairs.
    ///
    /// Endpoints are added as vertices automatically.
    ///
    /// # Example
    ///
    /// ```
    /// use cupft_graph::DiGraph;
    /// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges<I: IntoIterator<Item = (u64, u64)>>(edges: I) -> Self {
        let mut g = DiGraph::new();
        for (a, b) in edges {
            g.add_edge(ProcessId::new(a), ProcessId::new(b));
        }
        g
    }

    /// Builds a graph from an adjacency mapping: `pds[i]` is the set of
    /// processes that `i` initially knows (its participant detector output).
    pub fn from_adjacency<I>(pds: I) -> Self
    where
        I: IntoIterator<Item = (ProcessId, ProcessSet)>,
    {
        let mut g = DiGraph::new();
        for (v, outs) in pds {
            g.add_vertex(v);
            for w in outs {
                g.add_edge(v, w);
            }
        }
        g
    }

    /// Adds a vertex (no-op if present).
    pub fn add_vertex(&mut self, v: ProcessId) {
        self.adj.entry(v).or_default();
    }

    /// Adds a directed edge, creating endpoints as needed.
    ///
    /// Self-loops are ignored: a process trivially knows itself and the
    /// paper's graphs never carry self-edges.
    pub fn add_edge(&mut self, from: ProcessId, to: ProcessId) {
        if from == to {
            self.add_vertex(from);
            return;
        }
        self.adj.entry(from).or_default().insert(to);
        self.adj.entry(to).or_default();
    }

    /// Removes a directed edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, from: ProcessId, to: ProcessId) -> bool {
        self.adj.get_mut(&from).is_some_and(|s| s.remove(&to))
    }

    /// Removes a vertex and all incident edges; returns whether it existed.
    pub fn remove_vertex(&mut self, v: ProcessId) -> bool {
        let existed = self.adj.remove(&v).is_some();
        for outs in self.adj.values_mut() {
            outs.remove(&v);
        }
        existed
    }

    /// Returns whether `v` is a vertex.
    pub fn contains_vertex(&self, v: ProcessId) -> bool {
        self.adj.contains_key(&v)
    }

    /// Returns whether the edge `from → to` exists.
    pub fn has_edge(&self, from: ProcessId, to: ProcessId) -> bool {
        self.adj.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum()
    }

    /// Iterates over all vertices in ascending ID order.
    pub fn vertices(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.adj.keys().copied()
    }

    /// The vertex set as a [`ProcessSet`].
    pub fn vertex_set(&self) -> ProcessSet {
        self.adj.keys().copied().collect()
    }

    /// Iterates over all edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.adj
            .iter()
            .flat_map(|(&v, outs)| outs.iter().map(move |&w| (v, w)))
    }

    /// Out-neighbors of `v` (empty set if `v` is not a vertex).
    pub fn out_neighbors(&self, v: ProcessId) -> ProcessSet {
        self.adj.get(&v).cloned().unwrap_or_default()
    }

    /// Borrowed out-neighbors of `v`, if `v` is a vertex.
    pub fn out_neighbors_ref(&self, v: ProcessId) -> Option<&ProcessSet> {
        self.adj.get(&v)
    }

    /// In-neighbors of `v` (computed by scan; O(V+E)).
    pub fn in_neighbors(&self, v: ProcessId) -> ProcessSet {
        self.adj
            .iter()
            .filter(|(_, outs)| outs.contains(&v))
            .map(|(&u, _)| u)
            .collect()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: ProcessId) -> usize {
        self.adj.get(&v).map_or(0, |s| s.len())
    }

    /// In-degree of `v` (computed by scan; O(V+E)).
    pub fn in_degree(&self, v: ProcessId) -> usize {
        self.adj.values().filter(|outs| outs.contains(&v)).count()
    }

    /// The reverse (transpose) graph.
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new();
        for v in self.vertices() {
            g.add_vertex(v);
        }
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g
    }

    /// The subgraph induced by `keep`: `G[keep]` in the paper's notation.
    ///
    /// Vertices of `keep` absent from the graph are ignored.
    pub fn induced(&self, keep: &ProcessSet) -> DiGraph {
        let mut g = DiGraph::new();
        for (&v, outs) in &self.adj {
            if !keep.contains(&v) {
                continue;
            }
            g.add_vertex(v);
            for &w in outs {
                if keep.contains(&w) {
                    g.add_edge(v, w);
                }
            }
        }
        g
    }

    /// The undirected counterpart: `(i,j)` connected iff `(i,j)` or `(j,i)`
    /// is an edge (Section II-C).
    pub fn undirected(&self) -> DiGraph {
        let mut g = DiGraph::new();
        for v in self.vertices() {
            g.add_vertex(v);
        }
        for (u, v) in self.edges() {
            g.add_edge(u, v);
            g.add_edge(v, u);
        }
        g
    }

    /// Vertices reachable from `start` by directed paths (including `start`).
    pub fn reachable_from(&self, start: ProcessId) -> ProcessSet {
        let mut seen = ProcessSet::new();
        if !self.contains_vertex(start) {
            return seen;
        }
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(v) = queue.pop_front() {
            if let Some(outs) = self.adj.get(&v) {
                for &w in outs {
                    if seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
        }
        seen
    }

    /// Whether the *undirected* counterpart is connected.
    ///
    /// This is the first requirement of `k`-OSR (Definition 1). The empty
    /// graph is considered connected.
    pub fn is_undirected_connected(&self) -> bool {
        let Some(first) = self.vertices().next() else {
            return true;
        };
        self.undirected().reachable_from(first).len() == self.vertex_count()
    }

    /// BFS distance (number of edges) from `from` to `to`, if reachable.
    pub fn distance(&self, from: ProcessId, to: ProcessId) -> Option<usize> {
        if !self.contains_vertex(from) || !self.contains_vertex(to) {
            return None;
        }
        let mut dist: BTreeMap<ProcessId, usize> = BTreeMap::new();
        dist.insert(from, 0);
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            if v == to {
                return Some(d);
            }
            if let Some(outs) = self.adj.get(&v) {
                for &w in outs {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(w) {
                        e.insert(d + 1);
                        queue.push_back(w);
                    }
                }
            }
        }
        None
    }

    /// The directed diameter restricted to mutually reachable pairs:
    /// the longest finite BFS distance over all ordered vertex pairs.
    ///
    /// Returns 0 for graphs with fewer than two vertices.
    pub fn max_finite_distance(&self) -> usize {
        let mut best = 0;
        for u in self.vertices() {
            // single-source BFS
            let mut dist: BTreeMap<ProcessId, usize> = BTreeMap::new();
            dist.insert(u, 0);
            let mut queue = VecDeque::from([u]);
            while let Some(v) = queue.pop_front() {
                let d = dist[&v];
                best = best.max(d);
                if let Some(outs) = self.adj.get(&v) {
                    for &w in outs {
                        if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(w) {
                            e.insert(d + 1);
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        best
    }

    /// Merges another graph's vertices and edges into this one.
    pub fn merge(&mut self, other: &DiGraph) {
        for v in other.vertices() {
            self.add_vertex(v);
        }
        for (u, v) in other.edges() {
            self.add_edge(u, v);
        }
    }

    /// Builds a complete digraph (every ordered pair connected) on `ids`.
    pub fn complete(ids: &ProcessSet) -> DiGraph {
        let mut g = DiGraph::new();
        for &u in ids {
            g.add_vertex(u);
            for &v in ids {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Builds a directed circulant graph on `ids` (in ascending order):
    /// vertex at position `i` points to positions `i+1 .. i+jumps` (mod n).
    ///
    /// A directed circulant with `jumps = k` is exactly `k`-strongly
    /// connected, which makes it the canonical sink/core scaffold for the
    /// random generators.
    pub fn circulant(ids: &ProcessSet, jumps: usize) -> DiGraph {
        let order: Vec<ProcessId> = ids.iter().copied().collect();
        let n = order.len();
        let mut g = DiGraph::new();
        for &v in &order {
            g.add_vertex(v);
        }
        if n < 2 {
            return g;
        }
        for (i, &v) in order.iter().enumerate() {
            for j in 1..=jumps.min(n - 1) {
                g.add_edge(v, order[(i + j) % n]);
            }
        }
        g
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "digraph {{ // {} vertices", self.vertex_count())?;
        for (v, outs) in &self.adj {
            let outs: Vec<String> = outs.iter().map(|w| w.to_string()).collect();
            writeln!(f, "  {v} -> [{}]", outs.join(", "))?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(ProcessId, ProcessId)> for DiGraph {
    fn from_iter<I: IntoIterator<Item = (ProcessId, ProcessId)>>(iter: I) -> Self {
        let mut g = DiGraph::new();
        for (u, v) in iter {
            g.add_edge(u, v);
        }
        g
    }
}

impl Extend<(ProcessId, ProcessId)> for DiGraph {
    fn extend<I: IntoIterator<Item = (ProcessId, ProcessId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_undirected_connected());
    }

    #[test]
    fn add_edge_creates_vertices() {
        let mut g = DiGraph::new();
        g.add_edge(p(1), p(2));
        assert_eq!(g.vertex_count(), 2);
        assert!(g.has_edge(p(1), p(2)));
        assert!(!g.has_edge(p(2), p(1)));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DiGraph::new();
        g.add_edge(p(1), p(1));
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_vertex_removes_incident_edges() {
        let mut g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1)]);
        assert!(g.remove_vertex(p(2)));
        assert_eq!(g.vertex_count(), 2);
        assert!(!g.has_edge(p(1), p(2)));
        assert!(g.has_edge(p(3), p(1)));
        assert!(!g.remove_vertex(p(2)));
    }

    #[test]
    fn in_out_neighbors() {
        let g = DiGraph::from_edges([(1, 2), (3, 2), (2, 4)]);
        assert_eq!(g.in_neighbors(p(2)), process_set([1, 3]));
        assert_eq!(g.out_neighbors(p(2)), process_set([4]));
        assert_eq!(g.in_degree(p(2)), 2);
        assert_eq!(g.out_degree(p(2)), 1);
    }

    #[test]
    fn reversed_swaps_edges() {
        let g = DiGraph::from_edges([(1, 2), (2, 3)]);
        let r = g.reversed();
        assert!(r.has_edge(p(2), p(1)));
        assert!(r.has_edge(p(3), p(2)));
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.vertex_count(), 3);
    }

    #[test]
    fn induced_subgraph() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1), (1, 4)]);
        let sub = g.induced(&process_set([1, 2, 4]));
        assert_eq!(sub.vertex_count(), 3);
        assert!(sub.has_edge(p(1), p(2)));
        assert!(sub.has_edge(p(1), p(4)));
        assert!(!sub.has_edge(p(2), p(3)));
    }

    #[test]
    fn reachability() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (4, 1)]);
        assert_eq!(g.reachable_from(p(1)), process_set([1, 2, 3]));
        assert_eq!(g.reachable_from(p(4)), process_set([1, 2, 3, 4]));
        assert_eq!(g.reachable_from(p(3)), process_set([3]));
    }

    #[test]
    fn undirected_connectivity() {
        let g = DiGraph::from_edges([(1, 2), (3, 4)]);
        assert!(!g.is_undirected_connected());
        let g2 = DiGraph::from_edges([(1, 2), (3, 4), (2, 3)]);
        assert!(g2.is_undirected_connected());
    }

    #[test]
    fn bfs_distance() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.distance(p(1), p(4)), Some(3));
        assert_eq!(g.distance(p(4), p(1)), None);
        assert_eq!(g.distance(p(2), p(2)), Some(0));
    }

    #[test]
    fn complete_graph_degrees() {
        let g = DiGraph::complete(&process_set([1, 2, 3, 4]));
        assert_eq!(g.edge_count(), 12);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 3);
            assert_eq!(g.in_degree(v), 3);
        }
    }

    #[test]
    fn circulant_structure() {
        let g = DiGraph::circulant(&process_set([10, 20, 30, 40, 50]), 2);
        assert_eq!(g.edge_count(), 10);
        assert!(g.has_edge(p(10), p(20)));
        assert!(g.has_edge(p(10), p(30)));
        assert!(g.has_edge(p(50), p(10)));
        assert!(g.has_edge(p(50), p(20)));
        assert!(!g.has_edge(p(10), p(40)));
    }

    #[test]
    fn circulant_tiny() {
        let g = DiGraph::circulant(&process_set([1]), 3);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g2 = DiGraph::circulant(&process_set([1, 2]), 3);
        assert_eq!(g2.edge_count(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = DiGraph::from_edges([(1, 2)]);
        let b = DiGraph::from_edges([(2, 3)]);
        a.merge(&b);
        assert_eq!(a.vertex_count(), 3);
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn display_nonempty() {
        let g = DiGraph::from_edges([(1, 2)]);
        let s = g.to_string();
        assert!(s.contains("p1"));
        assert!(s.contains("p2"));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut g: DiGraph = vec![(p(1), p(2))].into_iter().collect();
        g.extend(vec![(p(2), p(3))]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn max_finite_distance_chain() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.max_finite_distance(), 3);
    }
}
