//! Large-`n` fast paths: SCC-based condition evaluation with capped,
//! budgeted connectivity checks.
//!
//! The exact recognizers ([`osr_report`](crate::osr_report),
//! [`is_extended_k_osr`](crate::is_extended_k_osr), the `isSink*` subset
//! search) are quadratic-to-exponential in the vertex count; they are the
//! right tool for the paper's witness graphs and committee-sized sinks, but
//! not for the 10k–100k-vertex topologies the
//! [`GraphFamily`](crate::GraphFamily) generators produce. This module
//! supplies the scalable complements:
//!
//! * [`sink_with_threshold`] — identifies the qualified sink of a
//!   planted-sink graph in near-linear time: one Tarjan condensation plus a
//!   connectivity check *capped at `f + 1`* on the sink alone, never
//!   touching the exponential candidate machinery.
//! * [`scale_osr_check`] — evaluates the four `k`-OSR conditions of
//!   Definition 1 under an explicit [`CheckBudget`]: condition 1 and 2 are
//!   exact (linear), conditions 3 and 4 use early-exit max-flow on a
//!   deterministic pair sample when the pair space exceeds the budget, and
//!   the report says whether the verdict is exhaustive
//!   ([`ScaleReport::exhaustive`]) or a budgeted spot check.
//!
//! Two structural shortcuts keep the common case cheap and *exact*:
//!
//! * **Degree rejection** — `κ(G) ≥ k` requires every vertex to have in-
//!   and out-degree `≥ k`; a violation is a sound negative in `O(V + E)`.
//! * **Direct-fan-in proof** — if every non-sink vertex has `≥ k` direct
//!   edges into the sink and `κ(G[S]) ≥ k`, condition 4 holds exactly: the
//!   `k` entry edges are vertex-disjoint by themselves, and the fan lemma
//!   for `k`-strongly-connected digraphs extends them to `k` internally
//!   disjoint paths to *every* sink member. Most generated families are
//!   built to satisfy this, so their condition-4 verdict needs no flow
//!   computation at all.

use std::collections::BTreeMap;

use crate::connectivity::DisjointPaths;
use crate::digraph::DiGraph;
use crate::id::{ProcessId, ProcessSet};
use crate::scc::condensation;

/// Pair budgets for [`scale_osr_check`]: the maximum number of ordered
/// vertex pairs submitted to the max-flow oracle per condition.
///
/// When a condition's full pair space fits the budget it is checked
/// exhaustively (the verdict is exact); otherwise a deterministic sample
/// of exactly the budgeted size is checked and the report is marked
/// non-exhaustive. Budgets bound *work*, not soundness: any violation
/// found is a definitive "no".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckBudget {
    /// Maximum sink-internal ordered pairs for the condition-3 `κ` check.
    pub kappa_pairs: usize,
    /// Maximum (non-sink, sink) ordered pairs for the condition-4
    /// disjoint-path check (only consulted when the direct-fan-in proof
    /// does not apply).
    pub cross_pairs: usize,
}

impl Default for CheckBudget {
    fn default() -> Self {
        // 1 024 κ-pairs keep committee-sized sinks (≤ 32 members) fully
        // exhaustive while bounding whole-graph sinks to a spot check.
        CheckBudget {
            kappa_pairs: 1_024,
            cross_pairs: 512,
        }
    }
}

impl CheckBudget {
    /// A budget that never samples: every pair is checked. Equivalent to
    /// the exact recognizers (use only on small graphs).
    pub fn exhaustive() -> Self {
        CheckBudget {
            kappa_pairs: usize::MAX,
            cross_pairs: usize::MAX,
        }
    }
}

/// The outcome of [`scale_osr_check`]: the four `k`-OSR conditions with
/// explicit accounting of how much of the pair space was examined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleReport {
    /// The `k` the graph was checked against.
    pub k: usize,
    /// Condition 1 (exact): the undirected counterpart is connected.
    pub undirected_connected: bool,
    /// Number of sink components in the condensation (condition 2,
    /// exact, requires exactly one).
    pub sink_count: usize,
    /// The unique sink component when `sink_count == 1`.
    pub sink: Option<ProcessSet>,
    /// Condition 3 on the checked pairs: no sink-internal pair fell below
    /// `k` node-disjoint paths (degree rejection applied first).
    pub sink_kappa_ok: bool,
    /// Condition 4 on the checked pairs: no (non-sink, sink) pair fell
    /// below `k` node-disjoint paths.
    pub cross_paths_ok: bool,
    /// Condition 4 was *proved* structurally (direct fan-in ≥ `k` plus
    /// `κ(G[S]) ≥ k`), with no cross-pair flow computation.
    pub direct_fanin_proof: bool,
    /// Sink-internal pairs submitted to the flow oracle.
    pub kappa_pairs_checked: usize,
    /// Cross pairs submitted to the flow oracle.
    pub cross_pairs_checked: usize,
    /// Whether every verdict is exact (full pair coverage or a structural
    /// proof). When `false`, `holds_on_checked` means "no violation found
    /// within budget", not a proof.
    pub exhaustive: bool,
}

impl ScaleReport {
    /// Whether every condition held on the pairs examined. Combine with
    /// [`Self::exhaustive`] to distinguish a proof from a spot check; a
    /// `false` is always definitive.
    pub fn holds_on_checked(&self) -> bool {
        self.undirected_connected
            && self.sink_count == 1
            && self.sink_kappa_ok
            && self.cross_paths_ok
    }

    /// Number of members of the unique sink (0 when there is none).
    pub fn sink_size(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| s.len())
    }
}

/// SplitMix64: the deterministic index scrambler behind pair sampling.
/// (No RNG state — sampling must be a pure function of the graph and
/// budget so repeated checks agree.)
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Identifies the qualified sink of a planted-sink graph: the unique sink
/// component `S` of the condensation with `|S| ≥ 2f + 1` and
/// `κ(G[S]) ≥ f + 1`.
///
/// This is the scalable counterpart of Algorithm 2's `∃ S1, S2` search
/// for the omniscient case: one Tarjan pass plus a connectivity check
/// capped at `f + 1` on the sink subgraph only. Cost is `O(V + E)` plus
/// `O(|S|²)` capped flow queries — intended for graphs whose sink is
/// committee-sized while the periphery scales to 10k–100k vertices. For
/// whole-graph sinks prefer [`scale_osr_check`] with a budget.
///
/// Returns `None` when the graph has no unique sink, the sink is smaller
/// than `2f + 1`, or its connectivity is below `f + 1`.
///
/// # Example
///
/// ```
/// use cupft_graph::{sink_with_threshold, DiGraph, process_set};
///
/// // Sink triangle {1,2,3}; 4 and 5 each point into it twice.
/// let mut g = DiGraph::complete(&process_set([1, 2, 3]));
/// for (a, b) in [(4, 1), (4, 2), (5, 2), (5, 3)] {
///     g.add_edge(a.into(), b.into());
/// }
/// assert_eq!(sink_with_threshold(&g, 1), Some(process_set([1, 2, 3])));
/// assert_eq!(sink_with_threshold(&g, 2), None); // needs |S| >= 5
/// ```
pub fn sink_with_threshold(g: &DiGraph, f: usize) -> Option<ProcessSet> {
    let cond = condensation(g);
    let sink = cond.unique_sink()?.clone();
    if sink.len() < 2 * f + 1 {
        return None;
    }
    let sub = g.induced(&sink);
    if sub.strong_connectivity_capped(f + 1) < f + 1 {
        return None;
    }
    Some(sink)
}

/// In-degrees of every vertex of `g` in one edge scan.
fn in_degrees(g: &DiGraph) -> BTreeMap<ProcessId, usize> {
    let mut deg: BTreeMap<ProcessId, usize> = g.vertices().map(|v| (v, 0)).collect();
    for (_, w) in g.edges() {
        *deg.get_mut(&w).expect("edge endpoint is a vertex") += 1;
    }
    deg
}

/// Evaluates the four `k`-OSR conditions (Definition 1) under a pair
/// budget. See the module docs for which conditions are exact and which
/// may be sampled.
///
/// # Example
///
/// ```
/// use cupft_graph::{scale_osr_check, CheckBudget, DiGraph, process_set};
///
/// let mut g = DiGraph::complete(&process_set([1, 2, 3]));
/// g.add_edge(4.into(), 1.into());
/// g.add_edge(4.into(), 2.into());
/// let report = scale_osr_check(&g, 2, &CheckBudget::default());
/// assert!(report.holds_on_checked() && report.exhaustive);
/// assert!(report.direct_fanin_proof); // 4 has two direct sink edges
/// ```
pub fn scale_osr_check(g: &DiGraph, k: usize, budget: &CheckBudget) -> ScaleReport {
    let undirected_connected = g.is_undirected_connected();
    let cond = condensation(g);
    let sink_count = cond.sinks().len();
    let sink = cond.unique_sink().cloned();

    let mut report = ScaleReport {
        k,
        undirected_connected,
        sink_count,
        sink: sink.clone(),
        sink_kappa_ok: false,
        cross_paths_ok: false,
        direct_fanin_proof: false,
        kappa_pairs_checked: 0,
        cross_pairs_checked: 0,
        exhaustive: true, // refined below once budgeted checks run
    };
    let Some(sink_set) = sink else {
        // No unique sink: conditions 3 and 4 are vacuously violated and the
        // verdict is exact.
        report.exhaustive = true;
        return report;
    };

    // Condition 3: κ(G[S]) ≥ k on the sink subgraph.
    let sub = g.induced(&sink_set);
    let (kappa_ok, kappa_pairs, kappa_exact) = check_kappa(&sub, k, budget.kappa_pairs);
    report.sink_kappa_ok = kappa_ok;
    report.kappa_pairs_checked = kappa_pairs;

    // Condition 4: k node-disjoint paths from every non-sink vertex to
    // every sink vertex.
    let non_sink: Vec<ProcessId> = g.vertices().filter(|v| !sink_set.contains(v)).collect();
    let (cross_ok, cross_pairs, cross_exact, fanin_proof) = if non_sink.is_empty() {
        (true, 0, true, false) // vacuous: the sink is the whole graph
    } else if kappa_ok && min_direct_sink_fanin(g, &sink_set, &non_sink) >= k {
        // Structural proof (fan lemma); exact only if the κ premise is.
        (true, 0, kappa_exact, true)
    } else {
        let (ok, pairs, exact) = check_cross(g, &sink_set, &non_sink, k, budget.cross_pairs);
        (ok, pairs, exact, false)
    };
    report.cross_paths_ok = cross_ok;
    report.cross_pairs_checked = cross_pairs;
    report.direct_fanin_proof = fanin_proof;
    report.exhaustive = kappa_exact && cross_exact;
    report
}

/// Minimum over `non_sink` of the number of direct out-edges into `sink`.
fn min_direct_sink_fanin(g: &DiGraph, sink: &ProcessSet, non_sink: &[ProcessId]) -> usize {
    non_sink
        .iter()
        .map(|&v| {
            g.out_neighbors_ref(v)
                .map_or(0, |outs| outs.iter().filter(|t| sink.contains(t)).count())
        })
        .min()
        .unwrap_or(usize::MAX)
}

/// Condition-3 check on the sink subgraph: degree rejection, then
/// all-pairs (when the pair space fits `budget`) or a deterministic
/// sample. Returns `(ok_on_checked, pairs_checked, exhaustive)`.
fn check_kappa(sub: &DiGraph, k: usize, budget: usize) -> (bool, usize, bool) {
    let n = sub.vertex_count();
    if k == 0 {
        return (true, 0, true);
    }
    if n <= 1 {
        // Match the exact recognizer's convention (`strong_connectivity`
        // of a trivial graph is its vertex count), so an exhaustive fast
        // verdict never contradicts `osr_report` on singleton sinks.
        return (k <= n, 0, true);
    }
    // Degree rejection: a sound, exact negative in O(V + E).
    let in_deg = in_degrees(sub);
    for v in sub.vertices() {
        if sub.out_degree(v) < k || in_deg[&v] < k {
            return (false, 0, true);
        }
    }
    let order: Vec<ProcessId> = sub.vertices().collect();
    let dp = DisjointPaths::new(sub);
    let total_pairs = n * (n - 1);
    if total_pairs <= budget {
        let mut checked = 0;
        for &u in &order {
            for &v in &order {
                if u == v {
                    continue;
                }
                checked += 1;
                if !dp.at_least(u, v, k) {
                    return (false, checked, true);
                }
            }
        }
        (true, checked, true)
    } else {
        let mut checked = 0;
        for t in 0..budget as u64 {
            let i = (splitmix(t) % n as u64) as usize;
            let mut j = (splitmix(t ^ 0x5bf0_3635) % n as u64) as usize;
            if i == j {
                j = (j + 1) % n;
            }
            checked += 1;
            if !dp.at_least(order[i], order[j], k) {
                return (false, checked, false);
            }
        }
        (true, checked, false)
    }
}

/// Condition-4 check: all cross pairs when they fit `budget`, else a
/// deterministic sample. Returns `(ok_on_checked, pairs_checked,
/// exhaustive)`.
fn check_cross(
    g: &DiGraph,
    sink: &ProcessSet,
    non_sink: &[ProcessId],
    k: usize,
    budget: usize,
) -> (bool, usize, bool) {
    if k == 0 {
        return (true, 0, true);
    }
    let sink_order: Vec<ProcessId> = sink.iter().copied().collect();
    let dp = DisjointPaths::new(g);
    let total = non_sink.len().saturating_mul(sink_order.len());
    if total <= budget {
        let mut checked = 0;
        for &u in non_sink {
            for &t in &sink_order {
                checked += 1;
                if !dp.at_least(u, t, k) {
                    return (false, checked, true);
                }
            }
        }
        (true, checked, true)
    } else {
        let mut checked = 0;
        for t in 0..budget as u64 {
            let u = non_sink[(splitmix(t) % non_sink.len() as u64) as usize];
            let s = sink_order[(splitmix(t ^ 0x0ddc_0ffe) % sink_order.len() as u64) as usize];
            checked += 1;
            if !dp.at_least(u, s, k) {
                return (false, checked, false);
            }
        }
        (true, checked, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;
    use crate::osr::osr_report;

    fn feeders_graph() -> DiGraph {
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        for (a, b) in [(4, 1), (4, 2), (5, 2), (5, 3)] {
            g.add_edge(a.into(), b.into());
        }
        g
    }

    #[test]
    fn sink_with_threshold_finds_planted_sink() {
        let g = feeders_graph();
        assert_eq!(sink_with_threshold(&g, 1), Some(process_set([1, 2, 3])));
    }

    #[test]
    fn sink_with_threshold_respects_size_bound() {
        let g = feeders_graph();
        assert_eq!(sink_with_threshold(&g, 2), None);
    }

    #[test]
    fn sink_with_threshold_rejects_weak_sink() {
        // Directed 5-cycle sink: kappa = 1 < f+1 for f = 1.
        let mut g = DiGraph::from_edges([(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        g.add_edge(9.into(), 1.into());
        g.add_edge(9.into(), 2.into());
        assert_eq!(sink_with_threshold(&g, 1), None);
        assert_eq!(sink_with_threshold(&g, 0), Some(process_set(1..=5)));
    }

    #[test]
    fn sink_with_threshold_rejects_two_sinks() {
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.merge(&DiGraph::complete(&process_set([4, 5, 6])));
        g.add_edge(7.into(), 1.into());
        g.add_edge(7.into(), 4.into());
        assert_eq!(sink_with_threshold(&g, 1), None);
    }

    #[test]
    fn scale_check_agrees_with_exact_recognizer_when_exhaustive() {
        for (g, k) in [
            (feeders_graph(), 2),
            (feeders_graph(), 3),
            (DiGraph::complete(&process_set(1..=5)), 3),
            (DiGraph::from_edges([(1, 2), (2, 3), (3, 1), (4, 1)]), 1),
            (DiGraph::from_edges([(1, 2), (2, 3), (3, 1), (4, 1)]), 2),
        ] {
            let fast = scale_osr_check(&g, k, &CheckBudget::exhaustive());
            let exact = osr_report(&g, k);
            assert!(fast.exhaustive);
            assert_eq!(fast.holds_on_checked(), exact.is_k_osr(), "k={k}\n{g}");
            assert_eq!(fast.sink, exact.sink);
        }
    }

    #[test]
    fn direct_fanin_proof_fires_without_cross_flows() {
        let report = scale_osr_check(&feeders_graph(), 2, &CheckBudget::default());
        assert!(report.direct_fanin_proof);
        assert_eq!(report.cross_pairs_checked, 0);
        assert!(report.holds_on_checked() && report.exhaustive);
    }

    #[test]
    fn indirect_paths_fall_back_to_flow_checks() {
        // 4 reaches the sink through 5 and directly: 2 disjoint paths but
        // only one *direct* sink edge, so no structural proof.
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        for (a, b) in [(4, 1), (4, 5), (5, 2), (5, 3), (5, 1)] {
            g.add_edge(a.into(), b.into());
        }
        let report = scale_osr_check(&g, 2, &CheckBudget::exhaustive());
        assert!(!report.direct_fanin_proof);
        assert!(report.cross_pairs_checked > 0);
        assert!(report.holds_on_checked(), "{report:?}");
    }

    #[test]
    fn degree_rejection_is_exact_even_over_budget() {
        // Big directed cycle sink: every vertex has degree 1 < 2, so the
        // kappa verdict is exact despite a tiny budget.
        let mut edges: Vec<(u64, u64)> = (1..400).map(|i| (i, i + 1)).collect();
        edges.push((400, 1));
        let g = DiGraph::from_edges(edges);
        let report = scale_osr_check(
            &g,
            2,
            &CheckBudget {
                kappa_pairs: 4,
                cross_pairs: 4,
            },
        );
        assert!(!report.sink_kappa_ok);
        assert_eq!(report.kappa_pairs_checked, 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = DiGraph::circulant(&process_set(1..=64), 3);
        let budget = CheckBudget {
            kappa_pairs: 100,
            cross_pairs: 100,
        };
        let a = scale_osr_check(&g, 3, &budget);
        let b = scale_osr_check(&g, 3, &budget);
        assert_eq!(a, b);
        assert!(!a.exhaustive);
        assert_eq!(a.kappa_pairs_checked, 100);
        assert!(a.holds_on_checked());
    }

    #[test]
    fn sampled_check_still_catches_gross_violations() {
        // Two K5 blocks joined only through hubs 11 and 12: every degree
        // is >= 3 (degree rejection passes) but every cross-block pair has
        // exactly 2 disjoint paths, so a small sample hits a violation.
        let mut g = DiGraph::complete(&process_set(1..=5));
        g.merge(&DiGraph::complete(&process_set(6..=10)));
        for v in 1..=10u64 {
            for hub in [11, 12] {
                g.add_edge(v.into(), hub.into());
                g.add_edge(hub.into(), v.into());
            }
        }
        let budget = CheckBudget {
            kappa_pairs: 32,
            cross_pairs: 32,
        };
        let report = scale_osr_check(&g, 3, &budget);
        assert!(!report.sink_kappa_ok, "{report:?}");
        assert!(!report.exhaustive);
        assert!(report.kappa_pairs_checked <= 32);
    }

    #[test]
    fn whole_graph_sink_is_vacuous_for_condition_four() {
        let g = DiGraph::complete(&process_set(1..=4));
        let report = scale_osr_check(&g, 3, &CheckBudget::default());
        assert!(report.holds_on_checked() && report.exhaustive);
        assert_eq!(report.cross_pairs_checked, 0);
        assert!(!report.direct_fanin_proof);
    }

    #[test]
    fn singleton_sink_agrees_with_exact_recognizer() {
        // Unique sink {1} with two feeders: kappa({1}) = 1, so the graph
        // is 1-OSR but not 2-OSR; the fast path must agree on both.
        let g = DiGraph::from_edges([(2, 1), (3, 1), (2, 3), (3, 2)]);
        for k in [1usize, 2] {
            let fast = scale_osr_check(&g, k, &CheckBudget::exhaustive());
            let exact = osr_report(&g, k);
            assert!(fast.exhaustive);
            assert_eq!(fast.holds_on_checked(), exact.is_k_osr(), "k={k}");
        }
    }

    #[test]
    fn no_unique_sink_reports_exact_failure() {
        let g = DiGraph::from_edges([(1, 2), (1, 3)]);
        let report = scale_osr_check(&g, 1, &CheckBudget::default());
        assert_eq!(report.sink_count, 2);
        assert!(!report.holds_on_checked());
        assert!(report.exhaustive);
        assert_eq!(report.sink_size(), 0);
    }
}
