//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors produced by graph generators and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Generator parameters are internally inconsistent.
    InvalidParams {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// Rejection sampling failed to produce a graph satisfying the target
    /// property within the attempt budget.
    GenerationFailed {
        /// The property that could not be satisfied.
        property: String,
        /// Number of attempts made before giving up.
        attempts: usize,
    },
    /// An exact check was requested on a graph too large for exhaustive
    /// subset enumeration.
    TooLargeForExactCheck {
        /// Number of vertices in the offending set.
        size: usize,
        /// The enforced cutoff.
        cutoff: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidParams { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::GenerationFailed { property, attempts } => write!(
                f,
                "failed to generate graph satisfying {property} after {attempts} attempts"
            ),
            GraphError::TooLargeForExactCheck { size, cutoff } => write!(
                f,
                "set of {size} vertices exceeds exact-enumeration cutoff of {cutoff}"
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::InvalidParams {
            reason: "sink smaller than 2f+1".into(),
        };
        assert!(e.to_string().contains("sink smaller"));
        let e = GraphError::GenerationFailed {
            property: "extended 2-OSR".into(),
            attempts: 64,
        };
        assert!(e.to_string().contains("64 attempts"));
        let e = GraphError::TooLargeForExactCheck {
            size: 40,
            cutoff: 20,
        };
        assert!(e.to_string().contains("cutoff of 20"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::InvalidParams { reason: "x".into() });
        assert!(e.source().is_none());
    }
}
