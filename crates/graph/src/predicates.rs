//! The `isSinkGdi` predicate family (Theorem 3, Algorithm 2, Section V).
//!
//! Given a fault threshold `g` and two candidate sets `S1`, `S2`, the
//! predicate `isSinkGdi(g, S1, S2)` holds on a process's knowledge view iff:
//!
//! * **P1** `|S1| ≥ 2g + 1`;
//! * **P2** `κ(G[S1]) ≥ g + 1`, computed from *received* PDs (so `S1` must
//!   be a subset of `S_received`);
//! * **P3** at most `g` members of `S1` have outgoing edges to processes
//!   outside `S1 ∪ S2`;
//! * **P4** `S2` is exactly the set of known processes outside `S1` to which
//!   more than `g` members of `S1` point, and `|S2| ≤ g` (Theorem 3
//!   instantiates `S2` as the Byzantine sink members, of which there are at
//!   most the fault threshold; see [`is_sink_gdi`] for why the bound is
//!   load-bearing).
//!
//! On the boundary rule (P3): the paper states P3 as `S1 →^{≤f} V ∖ S1`, but
//! its own Theorem 3 instantiation (`S1` = correct sink members, `S2` =
//! Byzantine sink members) has up to `f+1` correct members pointing at each
//! Byzantine sink member, and Fig. 1b's worked example
//! (`isSinkGdi(1, {1,3,4}, {2})` with three processes pointing at 2) would
//! fail a literal reading. The consistent semantics — used in the proof of
//! Theorem 4, where outgoing edges to *non-sink* processes are what P3
//! bounds — is that P3 counts edges leaving `S1 ∪ S2`. We implement that
//! reading and validate it against every worked example in the paper.
//!
//! When no fault threshold is known, `isSink*(S)` (Section V) holds iff some
//! decomposition `S = S1 ∪ S2` satisfies `isSinkGdi(g, S1, S2)` for some
//! `g ≥ 0`; `f_Gdi(S)` is the maximum such `g` and `k_Gdi(S) = f_Gdi(S)+1`
//! is the set's connectivity.

use crate::error::GraphError;
use crate::id::{ProcessId, ProcessSet};
use crate::view::KnowledgeView;

/// A successful sink decomposition: sets `S1`, `S2` and the fault threshold
/// `g` they were validated against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkDecomposition {
    /// The connectivity-computable part (PDs of all members received).
    pub s1: ProcessSet,
    /// The absorbed part (more than `threshold` members of `S1` point at
    /// each member; PDs possibly missing).
    pub s2: ProcessSet,
    /// The fault threshold `g` for which `isSinkGdi(g, S1, S2)` holds.
    pub threshold: usize,
}

impl SinkDecomposition {
    /// All members: `S1 ∪ S2` (the sink/core candidate set).
    pub fn members(&self) -> ProcessSet {
        self.s1.union(&self.s2).copied().collect()
    }

    /// The connectivity `k_Gdi = threshold + 1` of this decomposition.
    pub fn connectivity(&self) -> usize {
        self.threshold + 1
    }
}

/// Number of members of `s1` whose received PD contains `target`
/// (the `S1 →^{·} {target}` count).
fn pointers_into(view: &KnowledgeView, s1: &ProcessSet, target: ProcessId) -> usize {
    s1.iter()
        .filter(|&&i| view.pd_of(i).is_some_and(|pd| pd.contains(&target)))
        .count()
}

/// Derives the forced `S2` for a threshold `g` and candidate `S1`
/// (property P4): every known process outside `S1` at which more than `g`
/// members of `S1` point.
///
/// # Example
///
/// ```
/// use cupft_graph::{derive_s2, DiGraph, KnowledgeView, process_set};
///
/// // 1, 3, 4 all point at 2.
/// let g = DiGraph::from_edges([(1, 2), (3, 2), (4, 2), (1, 3), (3, 4), (4, 1), (1, 4), (4, 3), (3, 1)]);
/// let view = KnowledgeView::omniscient(&g);
/// let s2 = derive_s2(&view, &process_set([1, 3, 4]), 1);
/// assert_eq!(s2, process_set([2]));
/// ```
pub fn derive_s2(view: &KnowledgeView, s1: &ProcessSet, g: usize) -> ProcessSet {
    view.known()
        .iter()
        .copied()
        .filter(|p| !s1.contains(p))
        .filter(|&p| pointers_into(view, s1, p) > g)
        .collect()
}

/// Number of members of `s1` with at least one outgoing edge to a known
/// process outside `s1 ∪ s2` (property P3's boundary count).
fn boundary_count(view: &KnowledgeView, s1: &ProcessSet, s2: &ProcessSet) -> usize {
    s1.iter()
        .filter(|&&i| {
            view.pd_of(i).is_some_and(|pd| {
                pd.iter()
                    .any(|t| !s1.contains(t) && !s2.contains(t) && view.knows(*t))
            })
        })
        .count()
}

/// Evaluates `isSinkGdi(g, S1, S2)` on a knowledge view (Algorithm 2,
/// line 1).
///
/// Returns `false` (rather than erroring) when `S1` contains processes
/// whose PDs have not been received: their connectivity is not computable,
/// which is exactly the situation properties P1–P4 are designed around.
///
/// # Example
///
/// ```
/// use cupft_graph::{is_sink_gdi, fig1b, KnowledgeView, process_set};
///
/// // The paper's worked example on Fig. 1b: S1 = {1,3,4}, S2 = {2}, f = 1.
/// let view = KnowledgeView::omniscient(fig1b().graph());
/// assert!(is_sink_gdi(&view, 1, &process_set([1, 3, 4]), &process_set([2])));
/// ```
pub fn is_sink_gdi(view: &KnowledgeView, g: usize, s1: &ProcessSet, s2: &ProcessSet) -> bool {
    if s1.is_empty() {
        return false;
    }
    // S1 must be connectivity-computable: all PDs received.
    if !s1.iter().all(|&p| view.has_pd_of(p)) {
        return false;
    }
    // P1: |S1| >= 2g+1.
    if s1.len() < 2 * g + 1 {
        return false;
    }
    // P4: S2 is exactly the derived set, and no larger than g. The size
    // bound is implicit in Theorem 3's construction (S2 holds Byzantine or
    // slow *sink members*, of which there are at most f) and is load-
    // bearing for Algorithm 4's soundness: without it, a process's initial
    // view admits the trivial candidate S1 = {self}, S2 = PD_self at g = 0,
    // and the Core algorithm would terminate before discovering anything.
    if s2.len() > g || *s2 != derive_s2(view, s1, g) {
        return false;
    }
    // P3: at most g members of S1 point outside S1 ∪ S2.
    if boundary_count(view, s1, s2) > g {
        return false;
    }
    // P2: κ(G[S1]) >= g+1 (checked last: most expensive).
    view.graph().induced(s1).is_k_strongly_connected(g + 1)
}

/// Computes the maximum threshold `g` for which the candidate `S1`
/// (with its forced `S2`) satisfies `isSinkGdi`, if any.
///
/// The feasible range is bounded above by `min(κ(G[S1]) − 1, (|S1|−1)/2)`;
/// within it, feasibility is not monotone in `g` (raising `g` shrinks `S2`
/// and can surface boundary edges), so the range is scanned from the top.
pub fn max_threshold(view: &KnowledgeView, s1: &ProcessSet) -> Option<SinkDecomposition> {
    if s1.is_empty() || !s1.iter().all(|&p| view.has_pd_of(p)) {
        return None;
    }
    let size_bound = (s1.len() - 1) / 2;
    let sub = view.graph().induced(s1);
    let kappa = sub.strong_connectivity_capped(size_bound + 1);
    if kappa == 0 {
        return None;
    }
    let hi = size_bound.min(kappa - 1);
    for g in (0..=hi).rev() {
        let s2 = derive_s2(view, s1, g);
        if s2.len() <= g && boundary_count(view, s1, &s2) <= g {
            return Some(SinkDecomposition {
                s1: s1.clone(),
                s2,
                threshold: g,
            });
        }
    }
    None
}

/// Exact evaluation of `isSink*(S)` (Section V): searches all
/// decompositions `S = S1 ∪ S2` with `S1 ⊆ S_received` and returns the one
/// with the maximum threshold (`f_Gdi(S)`), or `None` if `S` is not a sink.
///
/// # Errors
///
/// Returns [`GraphError::TooLargeForExactCheck`] when `|S ∩ S_received|`
/// exceeds `cutoff`, since the search enumerates subsets.
pub fn is_sink_star(
    view: &KnowledgeView,
    s: &ProcessSet,
    cutoff: usize,
) -> Result<Option<SinkDecomposition>, GraphError> {
    let eligible: Vec<ProcessId> = s.iter().copied().filter(|&p| view.has_pd_of(p)).collect();
    if eligible.len() > cutoff {
        return Err(GraphError::TooLargeForExactCheck {
            size: eligible.len(),
            cutoff,
        });
    }
    let mut best: Option<SinkDecomposition> = None;
    for mask in 1u64..(1u64 << eligible.len()) {
        let s1: ProcessSet = eligible
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        let size_bound = (s1.len() - 1) / 2;
        for g in (0..=size_bound).rev() {
            if best.as_ref().is_some_and(|b| g <= b.threshold) {
                break; // cannot improve on the best threshold found
            }
            let s2 = derive_s2(view, &s1, g);
            let members: ProcessSet = s1.union(&s2).copied().collect();
            if members != *s {
                continue;
            }
            if is_sink_gdi(view, g, &s1, &s2) {
                let better = best.as_ref().is_none_or(|b| g > b.threshold);
                if better {
                    best = Some(SinkDecomposition {
                        s1: s1.clone(),
                        s2,
                        threshold: g,
                    });
                }
                break; // lower g for same S1 cannot beat this
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use crate::id::process_set;

    /// The sink-side of Fig. 1b as seen by process 1 in the worked example:
    /// 2 is slow (PD not received); 4 is Byzantine claiming PD {1,2,3}.
    fn fig1b_partial_view() -> KnowledgeView {
        let mut view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
        view.record_pd(3.into(), process_set([1, 2, 4]));
        view.record_pd(4.into(), process_set([1, 2, 3]));
        view
    }

    #[test]
    fn worked_example_from_section_iii() {
        // isSinkGdi(1, {1,3,4}, {2}) must hold in process 1's partial view.
        let view = fig1b_partial_view();
        let s1 = process_set([1, 3, 4]);
        assert_eq!(derive_s2(&view, &s1, 1), process_set([2]));
        assert!(is_sink_gdi(&view, 1, &s1, &process_set([2])));
        let best = max_threshold(&view, &s1).unwrap();
        assert_eq!(best.threshold, 1);
        assert_eq!(best.members(), process_set([1, 2, 3, 4]));
    }

    #[test]
    fn s2_mismatch_rejected() {
        let view = fig1b_partial_view();
        let s1 = process_set([1, 3, 4]);
        assert!(!is_sink_gdi(&view, 1, &s1, &ProcessSet::new()));
        assert!(!is_sink_gdi(&view, 1, &s1, &process_set([2, 5])));
    }

    #[test]
    fn size_requirement_p1() {
        let view = fig1b_partial_view();
        let s1 = process_set([1, 3]);
        // |S1| = 2 < 2*1+1
        let s2 = derive_s2(&view, &s1, 1);
        assert!(!is_sink_gdi(&view, 1, &s1, &s2));
    }

    #[test]
    fn unreceived_pd_rejected() {
        let view = fig1b_partial_view();
        // 2's PD was never received: any S1 containing 2 is rejected.
        let s1 = process_set([1, 2, 3]);
        let s2 = derive_s2(&view, &s1, 1);
        assert!(!is_sink_gdi(&view, 1, &s1, &s2));
        assert!(max_threshold(&view, &s1).is_none());
    }

    #[test]
    fn connectivity_requirement_p2() {
        // A directed 5-cycle has kappa = 1 < g+1 for g = 1.
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        let view = KnowledgeView::omniscient(&g);
        let s1 = process_set([1, 2, 3, 4, 5]);
        let s2 = derive_s2(&view, &s1, 1);
        assert!(!is_sink_gdi(&view, 1, &s1, &s2));
        // but it is a valid g = 0 sink
        let s2 = derive_s2(&view, &s1, 0);
        assert!(is_sink_gdi(&view, 0, &s1, &s2));
    }

    #[test]
    fn boundary_requirement_p3() {
        // Complete triangle {1,2,3}, but 1 and 2 also point at 9 and 1 at 8;
        // 9 and 8 receive ≤ g pointers so S2 stays empty.
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.add_edge(1.into(), 9.into());
        g.add_edge(2.into(), 8.into());
        let view = KnowledgeView::omniscient(&g);
        let s1 = process_set([1, 2, 3]);
        let s2 = derive_s2(&view, &s1, 1);
        assert!(s2.is_empty());
        // two boundary members > g = 1
        assert!(!is_sink_gdi(&view, 1, &s1, &s2));
    }

    #[test]
    fn max_threshold_of_complete_graphs() {
        for n in 3..=9u64 {
            let g = DiGraph::complete(&process_set(1..=n));
            let view = KnowledgeView::omniscient(&g);
            let best = max_threshold(&view, &process_set(1..=n)).unwrap();
            // complete K_n: kappa = n-1, size bound (n-1)/2 dominates
            assert_eq!(best.threshold, ((n - 1) / 2) as usize, "K{n}");
            assert!(best.s2.is_empty());
        }
    }

    #[test]
    fn is_sink_star_finds_best_decomposition() {
        let view = fig1b_partial_view();
        let s = process_set([1, 2, 3, 4]);
        let best = is_sink_star(&view, &s, 16).unwrap().unwrap();
        assert_eq!(best.threshold, 1);
        assert_eq!(best.s1, process_set([1, 3, 4]));
        assert_eq!(best.s2, process_set([2]));
    }

    #[test]
    fn is_sink_star_rejects_non_sinks() {
        let view = fig1b_partial_view();
        // {1,3} is not expressible: derived S2 at any g never equals {3}∖...
        assert!(is_sink_star(&view, &process_set([1, 3]), 16)
            .unwrap()
            .is_none());
    }

    #[test]
    fn is_sink_star_cutoff_enforced() {
        let g = DiGraph::complete(&process_set(1..=25));
        let view = KnowledgeView::omniscient(&g);
        let err = is_sink_star(&view, &process_set(1..=25), 20).unwrap_err();
        assert!(matches!(err, GraphError::TooLargeForExactCheck { .. }));
    }

    #[test]
    fn empty_s1_rejected() {
        let view = fig1b_partial_view();
        assert!(!is_sink_gdi(
            &view,
            0,
            &ProcessSet::new(),
            &ProcessSet::new()
        ));
        assert!(max_threshold(&view, &ProcessSet::new()).is_none());
    }
}
