//! Parametric graph-family generators with advertised paper guarantees.
//!
//! The figure witnesses ([`fig1a`](crate::fig1a)–[`fig4b`](crate::fig4b))
//! and the rejection-sampling [`Generator`](crate::Generator) cover the
//! paper's hand-built graphs; this module adds *topology families*: seeded,
//! parametric constructors whose samples satisfy (or deliberately violate)
//! the paper's conditions **by construction**, at any scale. Each sample
//! carries a [`FamilyGuarantees`] record saying exactly which predicates of
//! Definitions 1 and 2 the construction promises, so sweeps and property
//! tests can hold the generators to their word:
//!
//! | family | shape | guarantee highlights |
//! |---|---|---|
//! | [`GraphFamily::ErdosRenyi`] | planted complete core + `G(n, m)`-style random periphery | `(f+1)`-OSR always |
//! | [`GraphFamily::RingOfCliques`] | directed ring of complete cliques, staggered bridges | whole graph is the sink, `κ ≥ bridges` |
//! | [`GraphFamily::KDiamond`] | stacked width-`(f+1)` diamond gadgets | `(f+1)`-OSR with condition 4 *tight* (exactly `f+1` paths) |
//! | [`GraphFamily::ScaleFree`] | preferential attachment toward hubs | unique qualified sink; condition 4 **not** promised (hub sharing) |
//! | [`GraphFamily::BridgedPartition`] | sparse strong block → width-`w` bridge → complete sink | `(f+1)`-OSR iff `w ≥ f+1` (the Fig. 1a violation, parameterized) |
//!
//! Generation is deterministic per seed (byte-identical graphs) and
//! *constructive with verification*: samples small enough for the exact
//! recognizers are re-checked against their advertisement before being
//! returned; larger samples rely on the construction argument, which the
//! property tests validate across the small-size range
//! (`tests/proptest_families.rs`). Vertex IDs are assigned contiguously
//! from 1 with the sink/core first, so experiment axes can target
//! structural roles by ID (e.g. the highest ID is always a periphery
//! vertex when the family has a periphery).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::generate::GeneratedSystem;
use crate::id::{ProcessId, ProcessSet};
use crate::osr::osr_report;
use crate::scc::condensation;

/// Samples with at most this many vertices are re-verified against their
/// advertisement with the exact recognizers before being returned.
const VERIFY_CUTOFF: usize = 64;

/// The paper predicates a family promises its samples satisfy.
///
/// Every field is a *guarantee of the construction*, not a measurement of
/// one sample: `tests/proptest_families.rs` checks samples against these
/// across seeds and sizes, and [`GraphFamily::generate`] re-verifies any
/// sample small enough for the exact recognizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyGuarantees {
    /// The fault threshold `f` the family is parameterized by.
    pub fault_threshold: usize,
    /// The condensation has exactly one sink component, and it is the
    /// planted sink (condition 2 of Definition 1).
    pub unique_sink: bool,
    /// Number of members of the planted sink (`≥ 2f + 1` qualifies it for
    /// Theorem 1 / Definition 1's size requirement).
    pub sink_size: usize,
    /// Guaranteed lower bound on `κ(G[sink])` (condition 3).
    pub sink_connectivity: usize,
    /// Guaranteed lower bound on node-disjoint paths from every non-sink
    /// vertex to every sink member (condition 4), when the construction
    /// promises one. `None` means the family makes no such promise (e.g.
    /// scale-free hub sharing) or the sink spans the whole graph (the
    /// condition is vacuous).
    pub min_sink_paths: Option<usize>,
    /// Whether the sample is guaranteed to satisfy — `Some(true)` — or
    /// violate — `Some(false)` — `(f+1)`-OSR (Definition 1). `None`:
    /// satisfaction depends on the sample and must be measured.
    pub k_osr: Option<bool>,
}

/// One generated family sample: the system bundle plus the guarantees it
/// was constructed to meet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySample {
    /// The parameters the sample was generated from.
    pub family: GraphFamily,
    /// Human-readable label (family name plus parameters).
    pub label: String,
    /// The graph with its ground truth (sink members, fault threshold;
    /// family samples embed no Byzantine processes — fault axes inject
    /// them by ID).
    pub system: GeneratedSystem,
    /// The predicates the construction promises this sample satisfies.
    pub advertised: FamilyGuarantees,
}

/// A parametric, seeded topology-family constructor.
///
/// # Example
///
/// ```
/// use cupft_graph::{sink_with_threshold, GraphFamily};
///
/// let family = GraphFamily::erdos_renyi(40, 1);
/// let sample = family.generate(7).unwrap();
/// assert_eq!(sample.system.graph.vertex_count(), 40);
/// // The planted sink is found by the SCC-based fast path.
/// assert_eq!(
///     sink_with_threshold(&sample.system.graph, 1).as_ref(),
///     Some(&sample.system.sink),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// Erdős–Rényi-style random digraph with a planted qualified sink: a
    /// complete core of `2f + 1` vertices, a periphery whose members each
    /// hold `f + 1` staggered direct edges into the core, plus a
    /// `G(n, m)`-style budget of uniform random periphery-sourced edges
    /// (per-vertex edge counts rather than per-pair coin flips — the
    /// `G(n, p)` density `p = extra_degree / n`, in `O(n · degree)`
    /// instead of `O(n²)`, so the family stays sparse as `n` scales).
    ErdosRenyi {
        /// Total vertex count (core + periphery).
        n: usize,
        /// Random extra out-edges per periphery vertex (constant expected
        /// out-degree on top of the `f + 1` planted core edges).
        extra_degree: usize,
        /// The fault threshold `f` the planted sink qualifies for.
        fault_threshold: usize,
    },
    /// A directed ring of complete cliques: clique `i` bridges to clique
    /// `i + 1 (mod c)` with `bridges` staggered edges per member. The whole
    /// graph is one strongly connected component — the sink *is* the
    /// system — with `κ ≥ bridges` (straight-position routing through
    /// every intermediate clique).
    RingOfCliques {
        /// Number of cliques (`≥ 2`).
        cliques: usize,
        /// Vertices per clique.
        clique_size: usize,
        /// Bridge edges per member into the next clique
        /// (`f + 1 ≤ bridges ≤ clique_size − 1`).
        bridges: usize,
        /// The fault threshold `f` the ring qualifies for.
        fault_threshold: usize,
    },
    /// Scaled `k`-diamond witnesses (`k = f + 1`): a complete core plus
    /// parallel gadgets of `depth` stacked width-`k` layers under an apex.
    /// Every gadget vertex has out-degree exactly `k`, so condition 4
    /// holds *tightly* — exactly `k` node-disjoint paths, the
    /// generalization of the Fig. 1b/Fig. 4 periphery shapes. Removing any
    /// single edge breaks the property, which makes this the family of
    /// choice for fault-sensitivity sweeps.
    KDiamond {
        /// Number of parallel diamond gadgets.
        gadgets: usize,
        /// Stacked layers per gadget (`≥ 1`), apex excluded.
        depth: usize,
        /// The fault threshold `f`; gadget width is `f + 1`.
        fault_threshold: usize,
    },
    /// Directed preferential attachment: a complete core seed, then
    /// vertices joining one at a time with `out_degree` edges toward
    /// earlier vertices sampled proportionally to in-degree (hub bag).
    /// Edges only point backward, so the core is provably the unique
    /// qualified sink — but hubs *share* path capacity, so the
    /// `f + 1` node-disjoint-path condition is deliberately **not**
    /// promised; measuring how often it actually holds is the point of
    /// sweeping this family.
    ScaleFree {
        /// Total vertex count (core + periphery).
        n: usize,
        /// Out-edges per joining vertex (capped by the number of earlier
        /// vertices).
        out_degree: usize,
        /// The fault threshold `f` the core qualifies for.
        fault_threshold: usize,
    },
    /// The Fig. 1a violation, parameterized: a strongly connected block
    /// `A` whose
    /// only routes into the complete sink block pass through a width-`w`
    /// bridge. `w ≥ f + 1` satisfies `(f+1)`-OSR; `w ≤ f` violates it —
    /// the family straddles the paper's threshold as `w` sweeps.
    BridgedPartition {
        /// Vertices in the non-sink block `A`.
        a_size: usize,
        /// Vertices in the sink block (`≥ 2f + 1`).
        sink_size: usize,
        /// Bridge vertices — the exact vertex cut between `A` and the
        /// sink.
        bridge_width: usize,
        /// The fault threshold `f` the sample is checked against.
        fault_threshold: usize,
    },
}

impl GraphFamily {
    /// An Erdős–Rényi sample space of `n` vertices with moderate constant
    /// density (4 random extra out-edges per periphery vertex, on top of
    /// the `f + 1` planted core edges).
    pub fn erdos_renyi(n: usize, fault_threshold: usize) -> Self {
        GraphFamily::ErdosRenyi {
            n,
            extra_degree: 4,
            fault_threshold,
        }
    }

    /// A ring of cliques totaling roughly `n` vertices, with `f + 1`
    /// bridges (the tightest qualifying width).
    pub fn ring_of_cliques(n: usize, fault_threshold: usize) -> Self {
        let clique_size = (2 * fault_threshold + 2).max(4);
        GraphFamily::RingOfCliques {
            cliques: (n / clique_size).max(2),
            clique_size,
            bridges: fault_threshold + 1,
            fault_threshold,
        }
    }

    /// Depth-2 diamond gadgets totaling roughly `n` vertices.
    pub fn k_diamond(n: usize, fault_threshold: usize) -> Self {
        let family = GraphFamily::KDiamond {
            gadgets: 1,
            depth: 2,
            fault_threshold,
        };
        family.scaled(n)
    }

    /// A preferential-attachment sample space of `n` vertices with
    /// out-degree `max(f + 2, 3)`.
    pub fn scale_free(n: usize, fault_threshold: usize) -> Self {
        GraphFamily::ScaleFree {
            n,
            out_degree: (fault_threshold + 2).max(3),
            fault_threshold,
        }
    }

    /// A bridged partition of roughly `n` vertices whose bridge is just
    /// wide enough (`f + 1`) to satisfy the paper's conditions.
    pub fn bridged_partition(n: usize, fault_threshold: usize) -> Self {
        let family = GraphFamily::BridgedPartition {
            a_size: 1,
            sink_size: 2 * fault_threshold + 1,
            bridge_width: fault_threshold + 1,
            fault_threshold,
        };
        family.scaled(n)
    }

    /// One default instance of every family at a modest size, all
    /// parameterized for fault threshold `f` — the standard sweep axis.
    pub fn catalogue(fault_threshold: usize) -> Vec<GraphFamily> {
        vec![
            GraphFamily::erdos_renyi(32, fault_threshold),
            GraphFamily::ring_of_cliques(16, fault_threshold),
            GraphFamily::k_diamond(24, fault_threshold),
            GraphFamily::scale_free(32, fault_threshold),
            GraphFamily::bridged_partition(20, fault_threshold),
        ]
    }

    /// Short family identifier (the grid-label segment).
    pub fn name(&self) -> &'static str {
        match self {
            GraphFamily::ErdosRenyi { .. } => "erdos-renyi",
            GraphFamily::RingOfCliques { .. } => "ring-of-cliques",
            GraphFamily::KDiamond { .. } => "k-diamond",
            GraphFamily::ScaleFree { .. } => "scale-free",
            GraphFamily::BridgedPartition { .. } => "bridged-partition",
        }
    }

    /// Full label: family name plus its parameters.
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::ErdosRenyi {
                n,
                extra_degree,
                fault_threshold,
            } => format!("erdos-renyi(n={n},d={extra_degree},f={fault_threshold})"),
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                bridges,
                fault_threshold,
            } => format!(
                "ring-of-cliques(c={cliques},cs={clique_size},b={bridges},f={fault_threshold})"
            ),
            GraphFamily::KDiamond {
                gadgets,
                depth,
                fault_threshold,
            } => format!("k-diamond(g={gadgets},d={depth},f={fault_threshold})"),
            GraphFamily::ScaleFree {
                n,
                out_degree,
                fault_threshold,
            } => format!("scale-free(n={n},m={out_degree},f={fault_threshold})"),
            GraphFamily::BridgedPartition {
                a_size,
                sink_size,
                bridge_width,
                fault_threshold,
            } => format!(
                "bridged-partition(a={a_size},s={sink_size},w={bridge_width},f={fault_threshold})"
            ),
        }
    }

    /// The fault threshold `f` the family is parameterized by.
    pub fn fault_threshold(&self) -> usize {
        match *self {
            GraphFamily::ErdosRenyi {
                fault_threshold, ..
            }
            | GraphFamily::RingOfCliques {
                fault_threshold, ..
            }
            | GraphFamily::KDiamond {
                fault_threshold, ..
            }
            | GraphFamily::ScaleFree {
                fault_threshold, ..
            }
            | GraphFamily::BridgedPartition {
                fault_threshold, ..
            } => fault_threshold,
        }
    }

    /// The same family re-parameterized to roughly `target` total
    /// vertices — the size axis of a family × size sweep. Structural
    /// parameters (fault threshold, density, clique size, depth, bridge
    /// width) are preserved; only the replicated dimension scales.
    pub fn scaled(&self, target: usize) -> GraphFamily {
        let mut scaled = *self;
        match &mut scaled {
            GraphFamily::ErdosRenyi {
                n, fault_threshold, ..
            } => {
                *n = target.max(2 * *fault_threshold + 1);
            }
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                ..
            } => {
                *cliques = (target / *clique_size).max(2);
            }
            GraphFamily::KDiamond {
                gadgets,
                depth,
                fault_threshold,
            } => {
                let core = 2 * *fault_threshold + 1;
                let gadget_size = *depth * (*fault_threshold + 1) + 1;
                *gadgets = target.saturating_sub(core).div_ceil(gadget_size).max(1);
            }
            GraphFamily::ScaleFree {
                n, fault_threshold, ..
            } => {
                *n = target.max(2 * *fault_threshold + 1);
            }
            GraphFamily::BridgedPartition {
                a_size,
                sink_size,
                bridge_width,
                ..
            } => {
                *a_size = target.saturating_sub(*sink_size + *bridge_width).max(1);
            }
        }
        scaled
    }

    /// The guarantees every sample of this family is constructed to meet.
    pub fn advertised(&self) -> FamilyGuarantees {
        let f = self.fault_threshold();
        let complete_kappa = |m: usize| if m <= 1 { m } else { m - 1 };
        match *self {
            GraphFamily::ErdosRenyi { .. } => FamilyGuarantees {
                fault_threshold: f,
                unique_sink: true,
                sink_size: 2 * f + 1,
                sink_connectivity: complete_kappa(2 * f + 1),
                min_sink_paths: Some(f + 1),
                k_osr: Some(true),
            },
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                bridges,
                ..
            } => FamilyGuarantees {
                fault_threshold: f,
                unique_sink: true,
                sink_size: cliques * clique_size,
                sink_connectivity: bridges,
                // The sink spans the whole graph: condition 4 is vacuous.
                min_sink_paths: None,
                k_osr: Some(bridges > f),
            },
            GraphFamily::KDiamond { .. } => FamilyGuarantees {
                fault_threshold: f,
                unique_sink: true,
                sink_size: 2 * f + 1,
                sink_connectivity: complete_kappa(2 * f + 1),
                min_sink_paths: Some(f + 1),
                k_osr: Some(true),
            },
            GraphFamily::ScaleFree { .. } => FamilyGuarantees {
                fault_threshold: f,
                unique_sink: true,
                sink_size: 2 * f + 1,
                sink_connectivity: complete_kappa(2 * f + 1),
                // Hub sharing: disjoint paths are measured, never promised.
                min_sink_paths: None,
                k_osr: None,
            },
            GraphFamily::BridgedPartition {
                sink_size,
                bridge_width,
                ..
            } => FamilyGuarantees {
                fault_threshold: f,
                unique_sink: true,
                sink_size,
                sink_connectivity: complete_kappa(sink_size),
                min_sink_paths: Some(bridge_width.min(f + 1)),
                k_osr: Some(bridge_width > f),
            },
        }
    }

    /// Validates the parameters without generating.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParams`] with the violated constraint.
    pub fn validate(&self) -> Result<(), GraphError> {
        let f = self.fault_threshold();
        let fail = |reason: String| Err(GraphError::InvalidParams { reason });
        match *self {
            GraphFamily::ErdosRenyi { n, .. } => {
                if n < 2 * f + 1 {
                    return fail(format!("n = {n} < 2f+1 = {}", 2 * f + 1));
                }
            }
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                bridges,
                ..
            } => {
                if cliques < 2 {
                    return fail(format!("cliques = {cliques} < 2"));
                }
                if bridges < f + 1 || bridges + 1 > clique_size {
                    return fail(format!(
                        "bridges = {bridges} outside [f+1, clique_size-1] = [{}, {}]",
                        f + 1,
                        clique_size.saturating_sub(1)
                    ));
                }
                if cliques * clique_size < 2 * f + 1 {
                    return fail(format!(
                        "ring of {} vertices smaller than 2f+1 = {}",
                        cliques * clique_size,
                        2 * f + 1
                    ));
                }
            }
            GraphFamily::KDiamond { gadgets, depth, .. } => {
                if gadgets < 1 || depth < 1 {
                    return fail(format!(
                        "gadgets = {gadgets}, depth = {depth}: both must be ≥ 1"
                    ));
                }
            }
            GraphFamily::ScaleFree { n, out_degree, .. } => {
                if n < 2 * f + 1 {
                    return fail(format!("n = {n} < 2f+1 = {}", 2 * f + 1));
                }
                if out_degree < 1 {
                    return fail("out_degree must be ≥ 1".into());
                }
            }
            GraphFamily::BridgedPartition {
                a_size,
                sink_size,
                bridge_width,
                ..
            } => {
                if sink_size < 2 * f + 1 {
                    return fail(format!("sink_size = {sink_size} < 2f+1 = {}", 2 * f + 1));
                }
                if a_size < 1 || bridge_width < 1 {
                    return fail(format!(
                        "a_size = {a_size}, bridge_width = {bridge_width}: both must be ≥ 1"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generates one sample. Identical seeds produce byte-identical
    /// graphs; different seeds vary every random choice the family has
    /// (rotations, random edges, attachment targets).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParams`] for inconsistent parameters;
    /// [`GraphError::GenerationFailed`] if a sample small enough for the
    /// exact recognizers fails its own advertisement (a construction bug,
    /// never randomness).
    pub fn generate(&self, seed: u64) -> Result<FamilySample, GraphError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let (graph, sink) = match *self {
            GraphFamily::ErdosRenyi {
                n,
                extra_degree,
                fault_threshold,
            } => build_erdos_renyi(&mut rng, n, extra_degree, fault_threshold),
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                bridges,
                ..
            } => build_ring_of_cliques(&mut rng, cliques, clique_size, bridges),
            GraphFamily::KDiamond {
                gadgets,
                depth,
                fault_threshold,
            } => build_k_diamond(&mut rng, gadgets, depth, fault_threshold),
            GraphFamily::ScaleFree {
                n,
                out_degree,
                fault_threshold,
            } => build_scale_free(&mut rng, n, out_degree, fault_threshold),
            GraphFamily::BridgedPartition {
                a_size,
                sink_size,
                bridge_width,
                fault_threshold,
            } => {
                build_bridged_partition(&mut rng, a_size, sink_size, bridge_width, fault_threshold)
            }
        };
        let sample = FamilySample {
            family: *self,
            label: self.label(),
            system: GeneratedSystem {
                graph,
                sink,
                byzantine: ProcessSet::new(),
                fault_threshold: self.fault_threshold(),
            },
            advertised: self.advertised(),
        };
        if sample.system.graph.vertex_count() <= VERIFY_CUTOFF {
            self.verify_small(&sample)?;
        }
        Ok(sample)
    }

    /// Constructive-with-verification: holds a small sample against its
    /// own advertisement with the exact recognizers.
    fn verify_small(&self, sample: &FamilySample) -> Result<(), GraphError> {
        let adv = &sample.advertised;
        let g = &sample.system.graph;
        let mismatch = |what: &str| {
            Err(GraphError::GenerationFailed {
                property: format!("{}: {what}", sample.label),
                attempts: 1,
            })
        };
        if adv.unique_sink {
            let cond = condensation(g);
            if cond.unique_sink() != Some(&sample.system.sink) {
                return mismatch("advertised unique sink");
            }
        }
        if sample.system.sink.len() != adv.sink_size {
            return mismatch("advertised sink size");
        }
        let sub = g.induced(&sample.system.sink);
        if sub.strong_connectivity_capped(adv.sink_connectivity) < adv.sink_connectivity {
            return mismatch("advertised sink connectivity");
        }
        if let Some(expected) = adv.k_osr {
            let report = osr_report(g, adv.fault_threshold + 1);
            if report.is_k_osr() != expected {
                return mismatch("advertised k-OSR verdict");
            }
        }
        if let Some(paths) = adv.min_sink_paths {
            let non_sink: ProcessSet = g
                .vertices()
                .filter(|v| !sample.system.sink.contains(v))
                .collect();
            if !non_sink.is_empty()
                && g.min_cross_disjoint_paths_capped(&non_sink, &sample.system.sink, paths) < paths
            {
                return mismatch("advertised non-sink → sink disjoint paths");
            }
        }
        Ok(())
    }
}

/// Complete core on IDs `1..=2f+1`; returns the core as a set.
fn plant_core(graph: &mut DiGraph, f: usize) -> (Vec<ProcessId>, ProcessSet) {
    let m = 2 * f + 1;
    let core: Vec<ProcessId> = (1..=m as u64).map(ProcessId::new).collect();
    let core_set: ProcessSet = core.iter().copied().collect();
    graph.merge(&DiGraph::complete(&core_set));
    (core, core_set)
}

fn build_erdos_renyi(
    rng: &mut StdRng,
    n: usize,
    extra_degree: usize,
    f: usize,
) -> (DiGraph, ProcessSet) {
    let mut graph = DiGraph::new();
    let (core, core_set) = plant_core(&mut graph, f);
    let m = core.len();
    let k = f + 1;
    let mut rotation = rng.random_range(0..m);
    for raw in (m as u64 + 1)..=(n as u64) {
        let v = ProcessId::new(raw);
        graph.add_vertex(v);
        // k staggered direct core edges: vertex-disjoint by themselves,
        // extended to every core member by the fan lemma.
        for j in 0..k {
            graph.add_edge(v, core[(rotation + j) % m]);
        }
        rotation = (rotation + k) % m;
        // Uniform random periphery-sourced extra edges (never from the
        // core — the planted sink must keep zero out-edges).
        for _ in 0..extra_degree {
            let t = ProcessId::new(rng.random_range(1..=n as u64));
            if t != v {
                graph.add_edge(v, t);
            }
        }
    }
    (graph, core_set)
}

fn build_ring_of_cliques(
    rng: &mut StdRng,
    cliques: usize,
    clique_size: usize,
    bridges: usize,
) -> (DiGraph, ProcessSet) {
    let id = |clique: usize, pos: usize| ProcessId::new((clique * clique_size + pos + 1) as u64);
    let mut graph = DiGraph::new();
    for c in 0..cliques {
        let members: ProcessSet = (0..clique_size).map(|p| id(c, p)).collect();
        graph.merge(&DiGraph::complete(&members));
        let rotation = rng.random_range(0..clique_size);
        let next = (c + 1) % cliques;
        for p in 0..clique_size {
            for t in 0..bridges {
                graph.add_edge(id(c, p), id(next, (p + rotation + t) % clique_size));
            }
        }
    }
    let sink = graph.vertex_set();
    (graph, sink)
}

fn build_k_diamond(
    rng: &mut StdRng,
    gadgets: usize,
    depth: usize,
    f: usize,
) -> (DiGraph, ProcessSet) {
    let mut graph = DiGraph::new();
    let (core, core_set) = plant_core(&mut graph, f);
    let m = core.len();
    let k = f + 1;
    let gadget_size = depth * k + 1;
    for g in 0..gadgets {
        let base = m + g * gadget_size;
        let vertex = |layer: usize, col: usize| ProcessId::new((base + layer * k + col + 1) as u64);
        let offset = rng.random_range(0..m);
        for col in 0..k {
            // Bottom layer: k distinct staggered core members; column
            // entries are distinct across columns (k ≤ m).
            for j in 0..k {
                graph.add_edge(vertex(0, col), core[(offset + col + j) % m]);
            }
        }
        for layer in 1..depth {
            for col in 0..k {
                for below in 0..k {
                    graph.add_edge(vertex(layer, col), vertex(layer - 1, below));
                }
            }
        }
        let apex = ProcessId::new((base + gadget_size) as u64);
        for col in 0..k {
            graph.add_edge(apex, vertex(depth - 1, col));
        }
    }
    (graph, core_set)
}

fn build_scale_free(
    rng: &mut StdRng,
    n: usize,
    out_degree: usize,
    f: usize,
) -> (DiGraph, ProcessSet) {
    let mut graph = DiGraph::new();
    let (core, core_set) = plant_core(&mut graph, f);
    let m = core.len();
    // Endpoint bag: sampling uniformly from it is sampling proportionally
    // to in-degree (+1 smoothing for the seed entries).
    let mut bag: Vec<u64> = core.iter().map(|p| p.raw()).collect();
    for raw in (m as u64 + 1)..=(n as u64) {
        let v = ProcessId::new(raw);
        graph.add_vertex(v);
        let earlier = (raw - 1) as usize;
        let want = out_degree.min(earlier);
        let mut targets = ProcessSet::new();
        let mut attempts = 0;
        while targets.len() < want && attempts < 16 * want {
            attempts += 1;
            let t = bag[rng.random_range(0..bag.len())];
            if t < raw {
                targets.insert(ProcessId::new(t));
            }
        }
        // Deterministic fallback: fill from the earliest IDs (only ever
        // needed when the bag keeps repeating a handful of hubs).
        let mut fill = 1;
        while targets.len() < want {
            targets.insert(ProcessId::new(fill));
            fill += 1;
        }
        for t in targets {
            graph.add_edge(v, t);
            bag.push(t.raw());
        }
        // The newcomer enters the bag once (+1 smoothing) so later joiners
        // can discover it; without this every vertex would attach straight
        // to the seed core and no hub structure could emerge.
        bag.push(raw);
    }
    (graph, core_set)
}

fn build_bridged_partition(
    rng: &mut StdRng,
    a_size: usize,
    sink_size: usize,
    bridge_width: usize,
    f: usize,
) -> (DiGraph, ProcessSet) {
    let mut graph = DiGraph::new();
    let sink: Vec<ProcessId> = (1..=sink_size as u64).map(ProcessId::new).collect();
    let sink_set: ProcessSet = sink.iter().copied().collect();
    graph.merge(&DiGraph::complete(&sink_set));
    let bridge: Vec<ProcessId> = (0..bridge_width)
        .map(|j| ProcessId::new((sink_size + j + 1) as u64))
        .collect();
    let fan = (f + 1).min(sink_size);
    let rotation = rng.random_range(0..sink_size);
    for (j, &b) in bridge.iter().enumerate() {
        graph.add_vertex(b);
        // Staggered fan-in: bridge vertices enter the sink at distinct
        // members, so their direct edges extend to disjoint paths.
        for t in 0..fan {
            graph.add_edge(b, sink[(rotation + j + t) % sink_size]);
        }
    }
    // Block A: a sparse strongly connected circulant (complete would be
    // O(a²) edges and change nothing — every A → sink route goes through
    // A's own direct bridge edges, not through other A members).
    let a: ProcessSet = (0..a_size)
        .map(|i| ProcessId::new((sink_size + bridge_width + i + 1) as u64))
        .collect();
    graph.merge(&DiGraph::circulant(&a, 2));
    for &u in &a {
        for &b in &bridge {
            graph.add_edge(u, b);
        }
    }
    (graph, sink_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osr::osr_report;
    use crate::scale::sink_with_threshold;

    #[test]
    fn catalogue_families_meet_their_advertisement() {
        // generate() itself re-verifies small samples against the
        // advertisement; this exercises that path for every family.
        for family in GraphFamily::catalogue(1) {
            for seed in 0..3 {
                let sample = family
                    .generate(seed)
                    .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
                assert_eq!(sample.advertised, family.advertised());
                assert!(sample.system.byzantine.is_empty());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in GraphFamily::catalogue(1) {
            let a = family.generate(9).unwrap();
            let b = family.generate(9).unwrap();
            assert_eq!(a.system.graph, b.system.graph, "{}", family.label());
            // Every family has at least a seeded rotation; the sample must
            // actually depend on it (some seed in a small range produces a
            // different edge set).
            let seed_dependent =
                (0..8).any(|seed| family.generate(seed).unwrap().system.graph != a.system.graph);
            assert!(seed_dependent, "{} ignores its seed", family.label());
        }
    }

    #[test]
    fn planted_sinks_found_by_fast_path() {
        for family in GraphFamily::catalogue(1) {
            let sample = family.generate(4).unwrap();
            assert_eq!(
                sink_with_threshold(&sample.system.graph, 1).as_ref(),
                Some(&sample.system.sink),
                "{}",
                family.label()
            );
        }
    }

    #[test]
    fn narrow_bridge_violates_and_wide_bridge_satisfies() {
        let narrow = GraphFamily::BridgedPartition {
            a_size: 5,
            sink_size: 3,
            bridge_width: 1,
            fault_threshold: 1,
        };
        assert_eq!(narrow.advertised().k_osr, Some(false));
        let sample = narrow.generate(0).unwrap();
        assert!(!osr_report(&sample.system.graph, 2).is_k_osr());

        let wide = GraphFamily::BridgedPartition {
            a_size: 5,
            sink_size: 3,
            bridge_width: 2,
            fault_threshold: 1,
        };
        assert_eq!(wide.advertised().k_osr, Some(true));
        let sample = wide.generate(0).unwrap();
        assert!(osr_report(&sample.system.graph, 2).is_k_osr());
    }

    #[test]
    fn k_diamond_condition_four_is_tight() {
        let family = GraphFamily::KDiamond {
            gadgets: 2,
            depth: 2,
            fault_threshold: 1,
        };
        let sample = family.generate(3).unwrap();
        let g = &sample.system.graph;
        let non_sink: ProcessSet = g
            .vertices()
            .filter(|v| !sample.system.sink.contains(v))
            .collect();
        assert_eq!(
            g.min_cross_disjoint_paths(&non_sink, &sample.system.sink),
            2
        );
    }

    #[test]
    fn scaled_hits_requested_size_approximately() {
        for family in GraphFamily::catalogue(1) {
            for target in [24usize, 60] {
                let n = family
                    .scaled(target)
                    .generate(0)
                    .unwrap()
                    .system
                    .graph
                    .vertex_count();
                assert!(
                    n >= target * 7 / 10 && n <= target + target / 2 + 8,
                    "{} scaled to {target} produced {n}",
                    family.label()
                );
            }
        }
    }

    #[test]
    fn scaling_preserves_structure_parameters() {
        let ring = GraphFamily::RingOfCliques {
            cliques: 2,
            clique_size: 5,
            bridges: 3,
            fault_threshold: 1,
        };
        match ring.scaled(40) {
            GraphFamily::RingOfCliques {
                cliques,
                clique_size,
                bridges,
                ..
            } => {
                assert_eq!((cliques, clique_size, bridges), (8, 5, 3));
            }
            other => panic!("scaled changed the family: {other:?}"),
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = [
            GraphFamily::ErdosRenyi {
                n: 2,
                extra_degree: 4,
                fault_threshold: 1,
            },
            GraphFamily::RingOfCliques {
                cliques: 1,
                clique_size: 4,
                bridges: 2,
                fault_threshold: 1,
            },
            GraphFamily::RingOfCliques {
                cliques: 3,
                clique_size: 3,
                bridges: 3,
                fault_threshold: 1,
            },
            GraphFamily::KDiamond {
                gadgets: 0,
                depth: 2,
                fault_threshold: 1,
            },
            GraphFamily::ScaleFree {
                n: 40,
                out_degree: 0,
                fault_threshold: 1,
            },
            GraphFamily::BridgedPartition {
                a_size: 0,
                sink_size: 3,
                bridge_width: 2,
                fault_threshold: 1,
            },
        ];
        for family in bad {
            assert!(
                matches!(family.generate(0), Err(GraphError::InvalidParams { .. })),
                "{family:?} should be rejected"
            );
        }
    }

    #[test]
    fn large_samples_skip_exact_verification_but_generate_quickly() {
        let family = GraphFamily::erdos_renyi(2_000, 1);
        let sample = family.generate(1).unwrap();
        assert_eq!(sample.system.graph.vertex_count(), 2_000);
        // The SCC fast path still certifies the planted sink at this size.
        assert_eq!(
            sink_with_threshold(&sample.system.graph, 1).as_ref(),
            Some(&sample.system.sink)
        );
    }

    #[test]
    fn ids_are_contiguous_with_sink_first() {
        for family in GraphFamily::catalogue(2) {
            let sample = family.generate(0).unwrap();
            let n = sample.system.graph.vertex_count() as u64;
            let all: Vec<u64> = sample.system.graph.vertices().map(|v| v.raw()).collect();
            assert_eq!(all, (1..=n).collect::<Vec<_>>(), "{}", family.label());
            let max_sink = sample.system.sink.iter().map(|v| v.raw()).max().unwrap();
            assert_eq!(max_sink, sample.system.sink.len() as u64);
        }
    }
}
