//! Candidate search for sink and core identification.
//!
//! Algorithms 2 (Sink) and 4 (Core) are specified as `wait until ∃S1, S2 …`
//! over all subsets of the local view — a specification, not an algorithm.
//! This module supplies the executable search:
//!
//! * **Heuristic candidates**: the sink strongly-connected components of the
//!   *received-knowledge* graph, plus "peeled" variants that drop members
//!   whose (possibly fabricated) PDs depress connectivity. This covers
//!   Scenarios I and II of Section III — silent Byzantine members and slow
//!   correct members simply never enter the received graph, and lying
//!   Byzantine members are peeled — and every witness graph in the paper.
//! * **Exact search**: exhaustive subset enumeration used as ground truth in
//!   tests and for small views, guarded by a cutoff.
//!
//! The heuristic is validated against the exact search by property tests in
//! the crate's test suite.

use crate::connectivity::DisjointPaths;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::{ProcessId, ProcessSet};
use crate::predicates::{derive_s2, is_sink_gdi, max_threshold, SinkDecomposition};
use crate::scc::condensation;
use crate::view::KnowledgeView;

/// A candidate sink/core: a validated decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkCandidate {
    /// The validated decomposition (`S1`, `S2`, threshold).
    pub decomposition: SinkDecomposition,
}

impl SinkCandidate {
    /// All members of the candidate (`S1 ∪ S2`).
    pub fn members(&self) -> ProcessSet {
        self.decomposition.members()
    }

    /// The candidate's fault threshold `f_Gdi`.
    pub fn threshold(&self) -> usize {
        self.decomposition.threshold
    }

    /// The candidate's connectivity `k_Gdi = f_Gdi + 1`.
    pub fn connectivity(&self) -> usize {
        self.decomposition.connectivity()
    }
}

/// Configuration for candidate search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateSearch {
    /// Maximum set size for exhaustive subset enumeration; beyond it only
    /// heuristic candidates are considered.
    pub exact_cutoff: usize,
    /// Maximum number of peeling steps applied to each sink component of
    /// the received graph.
    pub max_peels: usize,
    /// Maximum component size for minimum-cut splitting. Cut splitting
    /// probes all ordered vertex pairs with a max-flow bound, which is
    /// quadratic-times-flow in the component size — essential for the
    /// paper's small witness graphs (a core buried inside a larger SCC),
    /// hopeless on the giant random SCCs that large-scale views contain.
    /// Components above the cutoff skip it; the planted committees of the
    /// scalable graph families are their own (small) sink SCCs, so they
    /// are found without it.
    pub cut_split_cutoff: usize,
}

impl Default for CandidateSearch {
    fn default() -> Self {
        CandidateSearch {
            exact_cutoff: 14,
            max_peels: 4,
            cut_split_cutoff: 64,
        }
    }
}

impl CandidateSearch {
    /// Candidate `S1` sets derived from the structure of the received
    /// graph: every SCC of `G[S_received]` in reverse topological order
    /// (sink components first), plus "peeled" variants of each (iteratively
    /// dropping the member with the lowest internal degree, which is where
    /// a lying Byzantine PD shows up).
    ///
    /// All components are considered — not only sinks — because a Byzantine
    /// member claiming edges to unreceived processes can make the true sink
    /// look non-terminal in the received graph.
    pub fn candidate_s1_sets(&self, view: &KnowledgeView) -> Vec<ProcessSet> {
        let received_graph = view.received_graph();
        let cond = condensation(&received_graph);
        let mut out: Vec<ProcessSet> = Vec::new();
        for sink in cond.components() {
            self.append_component_candidates(&received_graph, sink, &mut out);
        }
        out
    }

    /// Appends the candidates one condensation component contributes, in
    /// the canonical order: the component itself, its peeled variants,
    /// then (size permitting) its minimum-cut splits.
    fn append_component_candidates(
        &self,
        received_graph: &DiGraph,
        sink: &ProcessSet,
        out: &mut Vec<ProcessSet>,
    ) {
        let push_unique = |s: ProcessSet, out: &mut Vec<ProcessSet>| {
            if !s.is_empty() && !out.contains(&s) {
                out.push(s);
            }
        };
        push_unique(sink.clone(), out);
        let mut cur = sink.clone();
        for _ in 0..self.max_peels {
            if cur.len() <= 1 {
                break;
            }
            let sub = received_graph.induced(&cur);
            // Drop the member with the weakest internal connectivity
            // footprint (min of in/out degree, ties by ID for
            // determinism).
            let victim = cur
                .iter()
                .copied()
                .min_by_key(|&v| (sub.out_degree(v).min(sub.in_degree(v)), v))
                .expect("non-empty candidate");
            cur.remove(&victim);
            push_unique(cur.clone(), out);
        }
        // Minimum-cut splitting: a core embedded inside a larger SCC
        // (e.g. Fig. 4a, where the whole graph is one SCC) is exposed by
        // splitting the component at its minimum vertex cuts. All-pairs
        // flow probing is quadratic in the component — skipped above the
        // cutoff (see [`Self::cut_split_cutoff`]).
        if sink.len() <= self.cut_split_cutoff {
            cut_split(received_graph, sink, 3, out);
        }
    }

    /// Algorithm 2's search: find `S1 ⊆ S_received`, `S2 ⊆ S_known ∖ S1`
    /// with `isSinkGdi(f, S1, S2)` for the *given* fault threshold.
    ///
    /// Returns `None` when the view does not yet contain a valid sink —
    /// the caller keeps discovering and retries (the `wait until`).
    pub fn sink_with_threshold(&self, view: &KnowledgeView, f: usize) -> Option<SinkCandidate> {
        // Candidates are generated *lazily per component*, in exactly the
        // order `candidate_s1_sets` would produce them: the condensation's
        // sink components come first, so on a graph with a planted
        // committee the very first candidate usually succeeds and the
        // expensive splitting of later (often giant) components is never
        // computed. This is the identification hot path — every node of an
        // end-to-end run re-enters it on each discovery tick whose view
        // changed.
        let received_graph = view.received_graph();
        let cond = condensation(&received_graph);
        let mut out: Vec<ProcessSet> = Vec::new();
        let mut checked = 0;
        for sink in cond.components() {
            self.append_component_candidates(&received_graph, sink, &mut out);
            while checked < out.len() {
                let s1 = out[checked].clone();
                checked += 1;
                let s2 = derive_s2(view, &s1, f);
                if is_sink_gdi(view, f, &s1, &s2) {
                    return Some(SinkCandidate {
                        decomposition: SinkDecomposition {
                            s1,
                            s2,
                            threshold: f,
                        },
                    });
                }
            }
        }
        // Exhaustive fallback for small views.
        let received = view.received();
        if received.len() <= self.exact_cutoff {
            if let Ok(Some(cand)) = exact_sink_with_threshold(view, f, self.exact_cutoff) {
                return Some(cand);
            }
        }
        None
    }

    /// All validated candidates in the current view, each at its maximum
    /// threshold, ordered by descending threshold (ties: larger member set
    /// first, then lexicographically smaller `S1`).
    pub fn ranked_candidates(&self, view: &KnowledgeView) -> Vec<SinkCandidate> {
        let mut found: Vec<SinkCandidate> = Vec::new();
        for s1 in self.candidate_s1_sets(view) {
            if let Some(dec) = max_threshold(view, &s1) {
                let cand = SinkCandidate { decomposition: dec };
                if !found.contains(&cand) {
                    found.push(cand);
                }
            }
        }
        found.sort_by(|a, b| {
            b.threshold()
                .cmp(&a.threshold())
                .then_with(|| b.members().len().cmp(&a.members().len()))
                .then_with(|| a.decomposition.s1.cmp(&b.decomposition.s1))
        });
        found
    }

    /// Algorithm 4's search: the best candidate by threshold, accepted only
    /// if *internally maximal* — no strict subset of its member set forms a
    /// sink with a threshold at least as large (Theorem 8, condition (b)).
    pub fn best_core(&self, view: &KnowledgeView) -> Option<SinkCandidate> {
        let ranked = self.ranked_candidates(view);
        let best = ranked.into_iter().next()?;
        if self.is_internally_maximal(view, &best) {
            Some(best)
        } else {
            None
        }
    }

    /// Theorem 8(b), made *stable* under partial knowledge: rejects
    /// `candidate` unless it can be **certified** that no strict subset `V`
    /// of its member set satisfies `isSink*(V)` with
    /// `k_Gdi(V) ≥ k_Gdi(candidate)`.
    ///
    /// Certification happens in one of two ways:
    ///
    /// * **size stability** — a competing `V` needs its own `S1'` with
    ///   `|S1'| ≥ 2·(threshold+1) + 1`; when `|members| ≤ 2·threshold + 2`
    ///   no subset can ever beat the candidate, *regardless of PDs yet to
    ///   arrive* (this covers minimal cores of size `2f+1` or `2f+2`
    ///   without any enumeration);
    /// * **complete knowledge** — every member's PD has been received, so
    ///   subsets can be enumerated against ground truth.
    ///
    /// A candidate that is neither size-stable nor fully received is
    /// rejected: a member with a missing PD could, once its PD arrives,
    /// complete a higher-threshold subset (this is not hypothetical — a
    /// view holding all of Fig. 4a's PDs *except one core member's* admits
    /// a whole-graph pseudo-core that the literal Algorithm 4 text would
    /// accept). Discovery continues and the check re-fires, so this
    /// conservatism costs latency, never termination.
    pub fn is_internally_maximal(&self, view: &KnowledgeView, candidate: &SinkCandidate) -> bool {
        let members = candidate.members();
        let g_star = candidate.threshold();
        // Size stability: no subset large enough to beat g* can exist.
        if members.len() <= 2 * g_star + 2 {
            return true;
        }
        // Otherwise we need ground truth for every member.
        if !members.iter().all(|&p| view.has_pd_of(p)) {
            return false;
        }
        let eligible: Vec<ProcessId> = members.iter().copied().collect();
        if eligible.len() <= self.exact_cutoff {
            // Exhaustive: any subset decomposition landing strictly inside
            // `members` with threshold >= g* disqualifies.
            for mask in 1u64..(1u64 << eligible.len()) {
                let s1: ProcessSet = eligible
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &p)| p)
                    .collect();
                if s1.len() < 2 * g_star + 1 {
                    continue;
                }
                if disqualifies(view, &s1, g_star, &members) {
                    return false;
                }
            }
            true
        } else {
            // Heuristic: check peeled variants of the candidate's S1 only.
            let mut cur = candidate.decomposition.s1.clone();
            let graph = view.graph();
            for _ in 0..self.max_peels {
                if cur.len() <= 2 * g_star + 1 {
                    break;
                }
                let sub = graph.induced(&cur);
                let victim = cur
                    .iter()
                    .copied()
                    .min_by_key(|&v| (sub.out_degree(v).min(sub.in_degree(v)), v))
                    .expect("non-empty");
                cur.remove(&victim);
                if disqualifies(view, &cur, g_star, &members) {
                    return false;
                }
            }
            true
        }
    }
}

/// Recursively splits `set` at minimum vertex cuts of the induced subgraph,
/// pushing each side (with and without the cut vertices) as a candidate.
///
/// A set containing a high-connectivity core plus weakly-attached
/// outsiders has a small vertex cut between some cross pair; the side
/// containing the core, together with the cut, recovers the core exactly.
/// Candidate volume is bounded by the recursion `depth` and a global cap.
fn cut_split(graph: &DiGraph, set: &ProcessSet, depth: usize, out: &mut Vec<ProcessSet>) {
    const MAX_CANDIDATES: usize = 96;
    if depth == 0 || set.len() < 3 || out.len() >= MAX_CANDIDATES {
        return;
    }
    let sub = graph.induced(set);
    let dp = DisjointPaths::new(&sub);
    // Find an ordered pair realizing the minimum number of disjoint paths.
    let mut best: Option<(ProcessId, ProcessId, usize)> = None;
    for u in sub.vertices() {
        for v in sub.vertices() {
            if u == v {
                continue;
            }
            let bound = best.as_ref().map(|&(_, _, c)| c);
            let c = dp.count_bounded(u, v, bound);
            if best.as_ref().is_none_or(|&(_, _, bc)| c < bc) {
                best = Some((u, v, c));
            }
        }
    }
    let Some((u, _v, kappa)) = best else { return };
    if kappa == 0 {
        // Not strongly connected: the SCC machinery covers this shape.
        return;
    }
    let (_, v, _) = best.expect("just matched");
    let cut = dp.min_vertex_cut(u, v);
    if cut.is_empty() || cut.len() >= set.len().saturating_sub(2) {
        return;
    }
    let without_cut: ProcessSet = set.difference(&cut).copied().collect();
    let side_u = sub.induced(&without_cut).reachable_from(u);
    let rest: ProcessSet = without_cut.difference(&side_u).copied().collect();
    let push_unique = |s: ProcessSet, out: &mut Vec<ProcessSet>| {
        if !s.is_empty() && s.len() < set.len() && !out.contains(&s) {
            out.push(s);
        }
    };
    let side_u_cut: ProcessSet = side_u.union(&cut).copied().collect();
    let rest_cut: ProcessSet = rest.union(&cut).copied().collect();
    push_unique(side_u.clone(), out);
    push_unique(side_u_cut.clone(), out);
    push_unique(rest.clone(), out);
    push_unique(rest_cut.clone(), out);
    cut_split(graph, &side_u_cut, depth - 1, out);
    cut_split(graph, &rest_cut, depth - 1, out);
}

/// Whether candidate set `s1` (with any feasible `g ≥ g_star`) forms a sink
/// whose members are a strict subset of `limit`.
fn disqualifies(view: &KnowledgeView, s1: &ProcessSet, g_star: usize, limit: &ProcessSet) -> bool {
    let size_bound = (s1.len() - 1) / 2;
    for g in g_star..=size_bound {
        let s2 = derive_s2(view, s1, g);
        let v: ProcessSet = s1.union(&s2).copied().collect();
        if v == *limit || !v.is_subset(limit) {
            continue;
        }
        if is_sink_gdi(view, g, s1, &s2) {
            return true;
        }
    }
    false
}

/// Exhaustive version of Algorithm 2's search (ground truth for tests).
///
/// # Errors
///
/// Returns [`GraphError::TooLargeForExactCheck`] when the received set
/// exceeds `cutoff`.
pub fn exact_sink_with_threshold(
    view: &KnowledgeView,
    f: usize,
    cutoff: usize,
) -> Result<Option<SinkCandidate>, GraphError> {
    let received: Vec<ProcessId> = view.received().into_iter().collect();
    if received.len() > cutoff {
        return Err(GraphError::TooLargeForExactCheck {
            size: received.len(),
            cutoff,
        });
    }
    for mask in 1u64..(1u64 << received.len()) {
        let s1: ProcessSet = received
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        if s1.len() < 2 * f + 1 {
            continue;
        }
        let s2 = derive_s2(view, &s1, f);
        if is_sink_gdi(view, f, &s1, &s2) {
            return Ok(Some(SinkCandidate {
                decomposition: SinkDecomposition {
                    s1,
                    s2,
                    threshold: f,
                },
            }));
        }
    }
    Ok(None)
}

/// Exhaustive best-threshold sink over *all* subsets of the received set
/// (ground truth for the core search).
///
/// # Errors
///
/// Returns [`GraphError::TooLargeForExactCheck`] when the received set
/// exceeds `cutoff`.
pub fn exact_best_sink(
    view: &KnowledgeView,
    cutoff: usize,
) -> Result<Option<SinkCandidate>, GraphError> {
    let received: Vec<ProcessId> = view.received().into_iter().collect();
    if received.len() > cutoff {
        return Err(GraphError::TooLargeForExactCheck {
            size: received.len(),
            cutoff,
        });
    }
    let mut best: Option<SinkCandidate> = None;
    for mask in 1u64..(1u64 << received.len()) {
        let s1: ProcessSet = received
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        if let Some(dec) = max_threshold(view, &s1) {
            let replace = match &best {
                None => true,
                Some(b) => {
                    dec.threshold > b.threshold()
                        || (dec.threshold == b.threshold()
                            && dec.members().len() > b.members().len())
                }
            };
            if replace {
                best = Some(SinkCandidate { decomposition: dec });
            }
        }
    }
    Ok(best)
}

/// Convenience: all heuristic candidates of the default search.
pub fn enumerate_sink_candidates(view: &KnowledgeView) -> Vec<SinkCandidate> {
    CandidateSearch::default().ranked_candidates(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use crate::id::process_set;

    /// Process 1's view in the Section III worked example (Fig. 1b,
    /// process 2 slow, process 4 Byzantine claiming PD {1,2,3}).
    fn worked_view() -> KnowledgeView {
        let mut view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
        view.record_pd(3.into(), process_set([1, 2, 4]));
        view.record_pd(4.into(), process_set([1, 2, 3]));
        view
    }

    #[test]
    fn heuristic_finds_worked_example_sink() {
        let view = worked_view();
        let search = CandidateSearch::default();
        let cand = search.sink_with_threshold(&view, 1).unwrap();
        assert_eq!(cand.members(), process_set([1, 2, 3, 4]));
        assert_eq!(cand.decomposition.s1, process_set([1, 3, 4]));
        assert_eq!(cand.decomposition.s2, process_set([2]));
    }

    #[test]
    fn heuristic_matches_exact_on_worked_example() {
        let view = worked_view();
        let exact = exact_sink_with_threshold(&view, 1, 14).unwrap().unwrap();
        let heuristic = CandidateSearch::default()
            .sink_with_threshold(&view, 1)
            .unwrap();
        assert_eq!(exact.members(), heuristic.members());
    }

    #[test]
    fn no_candidate_before_enough_knowledge() {
        // Only own PD received: nothing satisfies |S1| >= 3 for f = 1.
        let view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
        assert!(CandidateSearch::default()
            .sink_with_threshold(&view, 1)
            .is_none());
    }

    #[test]
    fn core_on_complete_graph_is_whole_set() {
        let g = DiGraph::complete(&process_set(1..=5));
        let view = KnowledgeView::omniscient(&g);
        let core = CandidateSearch::default().best_core(&view).unwrap();
        assert_eq!(core.members(), process_set(1..=5));
        assert_eq!(core.threshold(), 2);
        assert_eq!(core.connectivity(), 3);
    }

    #[test]
    fn ranked_candidates_ordering() {
        let g = DiGraph::complete(&process_set(1..=5));
        let view = KnowledgeView::omniscient(&g);
        let ranked = CandidateSearch::default().ranked_candidates(&view);
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].threshold() >= pair[1].threshold());
        }
    }

    #[test]
    fn exact_best_sink_on_complete_graph() {
        let g = DiGraph::complete(&process_set(1..=5));
        let view = KnowledgeView::omniscient(&g);
        let best = exact_best_sink(&view, 14).unwrap().unwrap();
        assert_eq!(best.threshold(), 2);
        assert_eq!(best.members(), process_set(1..=5));
    }

    #[test]
    fn exact_cutoff_errors() {
        let g = DiGraph::complete(&process_set(1..=16));
        let view = KnowledgeView::omniscient(&g);
        assert!(exact_best_sink(&view, 8).is_err());
        assert!(exact_sink_with_threshold(&view, 1, 8).is_err());
    }

    #[test]
    fn peeling_recovers_sink_despite_lying_byzantine() {
        // Sink triangle {1,2,3}; Byzantine 4 claims a PD pointing only at
        // distant 9, sabotaging kappa of any S1 containing it.
        let mut view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
        view.record_pd(2.into(), process_set([1, 3]));
        view.record_pd(3.into(), process_set([1, 2]));
        view.record_pd(4.into(), process_set([9]));
        let search = CandidateSearch::default();
        let cand = search.sink_with_threshold(&view, 1);
        // {1,2,3} is 2-strongly-connected, size 3 = 2f+1; 4's claimed PD
        // pointing at 9 keeps it out of S2 (only one pointer).
        let cand = cand.expect("sink should be identifiable by peeling");
        assert_eq!(cand.decomposition.s1, process_set([1, 2, 3]));
    }

    #[test]
    fn cut_split_cutoff_governs_embedded_core_discovery() {
        // Core K4 inside a larger SCC needs cut splitting to surface; a
        // search whose cutoff excludes the component must fall back to the
        // other candidate sources (and, on a view this small, still find it
        // via the exhaustive fallback) while the default search finds it
        // heuristically.
        let mut g = DiGraph::complete(&process_set(1..=4));
        g.add_edge(4.into(), 5.into());
        g.add_edge(5.into(), 1.into());
        let view = KnowledgeView::omniscient(&g);
        let with_split = CandidateSearch::default();
        let with = with_split.candidate_s1_sets(&view);
        assert!(with.contains(&process_set(1..=4)));
        let without_split = CandidateSearch {
            cut_split_cutoff: 0,
            ..CandidateSearch::default()
        };
        let without = without_split.candidate_s1_sets(&view);
        assert!(
            without.len() < with.len(),
            "cutoff 0 must drop the split-derived candidates ({} vs {})",
            without.len(),
            with.len()
        );
        assert!(without.iter().all(|s| with.contains(s)));
        // The lazy path and the eager enumeration agree on the result.
        assert_eq!(
            with_split
                .sink_with_threshold(&view, 1)
                .map(|c| c.members()),
            Some(process_set(1..=4))
        );
    }

    #[test]
    fn internally_maximal_rejects_weak_superset() {
        // Core K4 {1,2,3,4} plus appendage 5 pointed at by only one member:
        // the whole-graph candidate (threshold 0) is not maximal because
        // {1,2,3,4} has threshold 1.
        let mut g = DiGraph::complete(&process_set(1..=4));
        g.add_edge(4.into(), 5.into());
        g.add_edge(5.into(), 1.into());
        g.add_edge(5.into(), 2.into());
        let view = KnowledgeView::omniscient(&g);
        let search = CandidateSearch::default();
        let core = search.best_core(&view).unwrap();
        assert_eq!(core.members(), process_set(1..=4));
        assert_eq!(core.threshold(), 1);
    }
}
