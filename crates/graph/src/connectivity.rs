//! Node-disjoint paths and strong connectivity (Menger / max-flow).
//!
//! The paper's central graph quantity is the number of *node-disjoint
//! paths* between ordered pairs, and the derived *strong connectivity*
//! `κ(G)`: the maximum `k` such that every ordered pair of vertices is
//! joined by at least `k` node-disjoint paths (Section II-C).
//!
//! "Node-disjoint" means internally disjoint: paths share no vertex other
//! than the two endpoints. A direct edge counts as one path.

use std::collections::BTreeMap;

use crate::digraph::DiGraph;
use crate::id::{ProcessId, ProcessSet};
use crate::maxflow::UnitFlowNetwork;

/// Node-disjoint path queries between ordered vertex pairs of one graph.
///
/// Construction pre-indexes vertices; each query builds a fresh
/// vertex-split unit-flow network.
///
/// # Example
///
/// ```
/// use cupft_graph::{DiGraph, DisjointPaths, ProcessId};
///
/// let p = |n| ProcessId::new(n);
/// // Complete digraph on 4 vertices: 3 node-disjoint paths between any pair.
/// let g = DiGraph::complete(&[1, 2, 3, 4].map(ProcessId::new).into_iter().collect());
/// let dp = DisjointPaths::new(&g);
/// assert_eq!(dp.count(p(1), p(3)), 3);
/// assert!(dp.at_least(p(2), p(4), 3));
/// assert!(!dp.at_least(p(2), p(4), 4));
/// ```
#[derive(Debug, Clone)]
pub struct DisjointPaths<'g> {
    graph: &'g DiGraph,
    order: Vec<ProcessId>,
    index: BTreeMap<ProcessId, usize>,
}

impl<'g> DisjointPaths<'g> {
    /// Prepares disjoint-path queries over `graph`.
    pub fn new(graph: &'g DiGraph) -> Self {
        let order: Vec<ProcessId> = graph.vertices().collect();
        let index = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        DisjointPaths {
            graph,
            order,
            index,
        }
    }

    /// Builds the standard vertex-split flow network:
    /// node `v` becomes `v_in = 2i` and `v_out = 2i + 1` with a capacity-1
    /// arc `v_in → v_out`; every graph edge `u → w` becomes a capacity-1
    /// arc `u_out → w_in`. Max flow from `s_out` to `t_in` equals the
    /// maximum number of internally node-disjoint `s → t` paths (Menger).
    fn build_network(&self) -> UnitFlowNetwork {
        let n = self.order.len();
        let mut net = UnitFlowNetwork::new(2 * n);
        for i in 0..n {
            net.add_edge(2 * i, 2 * i + 1, 1);
        }
        for (u, w) in self.graph.edges() {
            let (ui, wi) = (self.index[&u], self.index[&w]);
            net.add_edge(2 * ui + 1, 2 * wi, 1);
        }
        net
    }

    /// Maximum number of node-disjoint paths from `s` to `t`.
    ///
    /// Returns 0 if either endpoint is missing; returns `usize::MAX`
    /// conceptually for `s == t` but we clamp it to the vertex count to keep
    /// arithmetic safe.
    pub fn count(&self, s: ProcessId, t: ProcessId) -> usize {
        self.count_bounded(s, t, None)
    }

    /// Like [`Self::count`] but stops once `limit` paths are found.
    pub fn count_bounded(&self, s: ProcessId, t: ProcessId, limit: Option<usize>) -> usize {
        let (Some(&si), Some(&ti)) = (self.index.get(&s), self.index.get(&t)) else {
            return 0;
        };
        if s == t {
            return self.order.len();
        }
        let mut net = self.build_network();
        net.max_flow(2 * si + 1, 2 * ti, limit)
    }

    /// Whether at least `k` node-disjoint paths join `s` to `t`.
    pub fn at_least(&self, s: ProcessId, t: ProcessId, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        self.count_bounded(s, t, Some(k)) >= k
    }

    /// Extracts a minimum vertex cut separating `s` from `t`: a smallest
    /// set of vertices (excluding `s` and `t`) whose removal destroys all
    /// `s → t` paths.
    ///
    /// A direct edge `s → t` cannot be cut by vertices; it is excluded, so
    /// with a direct edge present the returned set severs exactly the
    /// *indirect* paths. Returns an empty set when `t` is unreachable
    /// (other than via the direct edge).
    ///
    /// Unlike the path-counting network (all capacities 1), the cut
    /// network gives edge arcs effectively infinite capacity so that every
    /// minimum cut consists solely of vertex-split arcs — otherwise a flow
    /// saturating the source's outgoing *edges* would yield a residual cut
    /// with no vertex interpretation.
    pub fn min_vertex_cut(&self, s: ProcessId, t: ProcessId) -> ProcessSet {
        let (Some(&si), Some(&ti)) = (self.index.get(&s), self.index.get(&t)) else {
            return ProcessSet::new();
        };
        if s == t {
            return ProcessSet::new();
        }
        let n = self.order.len();
        let big = (n as u32) + 1;
        let mut net = UnitFlowNetwork::new(2 * n);
        for i in 0..n {
            net.add_edge(2 * i, 2 * i + 1, 1);
        }
        for (u, w) in self.graph.edges() {
            if u == s && w == t {
                continue; // a direct edge is not cuttable by vertices
            }
            let (ui, wi) = (self.index[&u], self.index[&w]);
            net.add_edge(2 * ui + 1, 2 * wi, big);
        }
        net.max_flow(2 * si + 1, 2 * ti, None);
        let reach = net.residual_reachable(2 * si + 1);
        let mut cut = ProcessSet::new();
        for (i, &v) in self.order.iter().enumerate() {
            if v == s || v == t {
                continue;
            }
            // Vertex-split arc v_in -> v_out crosses the cut.
            if reach[2 * i] && !reach[2 * i + 1] {
                cut.insert(v);
            }
        }
        cut
    }

    /// Extracts a maximum set of node-disjoint paths from `s` to `t`,
    /// each returned as the full vertex sequence `s, …, t`.
    ///
    /// The number of returned paths equals [`Self::count`].
    pub fn extract(&self, s: ProcessId, t: ProcessId) -> Vec<Vec<ProcessId>> {
        let (Some(&si), Some(&ti)) = (self.index.get(&s), self.index.get(&t)) else {
            return Vec::new();
        };
        if s == t {
            return vec![vec![s]];
        }
        let mut net = self.build_network();
        let flow = net.max_flow(2 * si + 1, 2 * ti, None);
        if flow == 0 {
            return Vec::new();
        }
        // Decompose: successor map over flow-carrying arcs. Because every
        // internal vertex has unit capacity, each node index appears at most
        // once as a source of flow, so successors are unique.
        let mut succ: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (a, b) in net.saturated_edges() {
            succ.entry(a).or_default().push(b);
        }
        let mut paths = Vec::with_capacity(flow);
        let start = 2 * si + 1;
        for _ in 0..flow {
            let mut path = vec![s];
            let mut cur = start;
            loop {
                let nexts = succ.get_mut(&cur);
                let Some(nexts) = nexts else { break };
                let Some(next) = nexts.pop() else { break };
                if next == 2 * ti {
                    path.push(t);
                    break;
                }
                // next is some w_in; hop through w_out.
                let w = self.order[next / 2];
                path.push(w);
                // consume the in->out arc
                let through = succ.get_mut(&next).and_then(|v| v.pop());
                match through {
                    Some(out) => cur = out,
                    None => break,
                }
            }
            if path.last() == Some(&t) {
                paths.push(path);
            }
        }
        paths
    }
}

impl DiGraph {
    /// Maximum number of node-disjoint paths from `s` to `t`.
    pub fn disjoint_path_count(&self, s: ProcessId, t: ProcessId) -> usize {
        DisjointPaths::new(self).count(s, t)
    }

    /// Whether every ordered pair of distinct vertices is joined by at
    /// least `k` node-disjoint paths.
    ///
    /// `k = 0` is trivially true. Single-vertex and empty graphs are
    /// `k`-strongly connected for every `k` (vacuous quantification).
    pub fn is_k_strongly_connected(&self, k: usize) -> bool {
        if k == 0 || self.vertex_count() <= 1 {
            return true;
        }
        // Quick degree-based rejection: each vertex needs out/in degree >= k.
        for v in self.vertices() {
            if self.out_degree(v) < k || self.in_degree(v) < k {
                return false;
            }
        }
        let dp = DisjointPaths::new(self);
        for u in self.vertices() {
            for v in self.vertices() {
                if u != v && !dp.at_least(u, v, k) {
                    return false;
                }
            }
        }
        true
    }

    /// The strong connectivity `κ(G)`: the largest `k` for which
    /// [`Self::is_k_strongly_connected`] holds.
    ///
    /// For graphs with 0 or 1 vertices this returns the vertex count.
    pub fn strong_connectivity(&self) -> usize {
        let n = self.vertex_count();
        if n <= 1 {
            return n;
        }
        // Upper bound: min over vertices of min(out-degree, in-degree).
        let mut bound = usize::MAX;
        let mut in_deg: BTreeMap<ProcessId, usize> = self.vertices().map(|v| (v, 0)).collect();
        for (_, w) in self.edges() {
            *in_deg.get_mut(&w).expect("edge endpoint is a vertex") += 1;
        }
        for v in self.vertices() {
            bound = bound.min(self.out_degree(v)).min(in_deg[&v]);
        }
        if bound == 0 {
            return 0;
        }
        let dp = DisjointPaths::new(self);
        let mut kappa = bound;
        for u in self.vertices() {
            for v in self.vertices() {
                if u == v {
                    continue;
                }
                if kappa == 0 {
                    return 0;
                }
                // Only need to know whether the pair reaches the current
                // minimum; if not, lower it to the exact pair value.
                let c = dp.count_bounded(u, v, Some(kappa));
                kappa = kappa.min(c);
            }
        }
        kappa
    }

    /// Like [`Self::strong_connectivity`] but never spends effort proving
    /// connectivity beyond `cap`: returns `min(κ(G), cap)`.
    ///
    /// The sink predicates only ever need `κ` up to `(|S1|-1)/2 + 1`, so a
    /// capped computation avoids the full all-pairs cost on dense sets.
    pub fn strong_connectivity_capped(&self, cap: usize) -> usize {
        let n = self.vertex_count();
        if n <= 1 {
            return n.min(cap);
        }
        if cap == 0 {
            return 0;
        }
        let dp = DisjointPaths::new(self);
        let mut kappa = cap;
        for u in self.vertices() {
            if self.out_degree(u) < kappa {
                kappa = self.out_degree(u);
            }
            if kappa == 0 {
                return 0;
            }
            for v in self.vertices() {
                if u == v {
                    continue;
                }
                let c = dp.count_bounded(u, v, Some(kappa));
                kappa = kappa.min(c);
                if kappa == 0 {
                    return 0;
                }
            }
        }
        kappa
    }

    /// Number of node-disjoint paths guaranteed from every vertex of `from`
    /// to every vertex of `to` — the minimum over all cross pairs.
    ///
    /// Used for the "k node-disjoint paths from any process outside the
    /// sink/core to any process inside" requirements (Definitions 1 and 2).
    pub fn min_cross_disjoint_paths(&self, from: &ProcessSet, to: &ProcessSet) -> usize {
        self.min_cross_disjoint_paths_capped(from, to, usize::MAX)
    }

    /// Like [`Self::min_cross_disjoint_paths`] but never proves more than
    /// `cap` paths for any pair: returns `min(actual minimum, cap)`.
    ///
    /// The `k`-OSR conditions only ever compare the minimum against a known
    /// `k`, so capping at `k` skips the unbounded max-flow a dense first
    /// pair would otherwise pay (the uncapped minimum only tightens the
    /// bound *after* that first full count).
    pub fn min_cross_disjoint_paths_capped(
        &self,
        from: &ProcessSet,
        to: &ProcessSet,
        cap: usize,
    ) -> usize {
        let dp = DisjointPaths::new(self);
        let mut best = cap;
        let mut any = false;
        for &u in from {
            for &v in to {
                if u == v {
                    continue;
                }
                any = true;
                best = best.min(dp.count_bounded(u, v, Some(best)));
                if best == 0 {
                    return 0;
                }
            }
        }
        if any {
            best
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn direct_edge_is_one_path() {
        let g = DiGraph::from_edges([(1, 2)]);
        assert_eq!(g.disjoint_path_count(p(1), p(2)), 1);
        assert_eq!(g.disjoint_path_count(p(2), p(1)), 0);
    }

    #[test]
    fn triangle_connectivity() {
        // Bidirected triangle: kappa = 2.
        let g = DiGraph::complete(&process_set([1, 2, 3]));
        assert_eq!(g.strong_connectivity(), 2);
        assert!(g.is_k_strongly_connected(2));
        assert!(!g.is_k_strongly_connected(3));
    }

    #[test]
    fn complete_graph_connectivity() {
        for n in 2..=6u64 {
            let g = DiGraph::complete(&process_set(1..=n));
            assert_eq!(g.strong_connectivity(), (n - 1) as usize, "K{n}");
        }
    }

    #[test]
    fn directed_cycle_has_kappa_one() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert_eq!(g.strong_connectivity(), 1);
    }

    #[test]
    fn circulant_kappa_equals_jumps() {
        for k in 1..=3usize {
            let g = DiGraph::circulant(&process_set(1..=8), k);
            assert_eq!(g.strong_connectivity(), k, "circulant jumps={k}");
        }
    }

    #[test]
    fn disconnected_graph_kappa_zero() {
        let g = DiGraph::from_edges([(1, 2), (2, 1), (3, 4), (4, 3)]);
        assert_eq!(g.strong_connectivity(), 0);
        assert!(!g.is_k_strongly_connected(1));
    }

    #[test]
    fn path_count_through_bottleneck() {
        // Two routes but both pass through vertex 9.
        let g = DiGraph::from_edges([(1, 9), (9, 5), (1, 2), (2, 9), (9, 6), (6, 5)]);
        assert_eq!(g.disjoint_path_count(p(1), p(5)), 1);
    }

    #[test]
    fn direct_edge_plus_detour() {
        let g = DiGraph::from_edges([(1, 2), (1, 3), (3, 2)]);
        assert_eq!(g.disjoint_path_count(p(1), p(2)), 2);
    }

    #[test]
    fn extract_paths_are_disjoint_and_valid() {
        let g = DiGraph::complete(&process_set([1, 2, 3, 4, 5]));
        let dp = DisjointPaths::new(&g);
        let paths = dp.extract(p(1), p(4));
        assert_eq!(paths.len(), 4);
        let mut internals = ProcessSet::new();
        for path in &paths {
            assert_eq!(path.first(), Some(&p(1)));
            assert_eq!(path.last(), Some(&p(4)));
            for w in path.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "edge {}->{} missing", w[0], w[1]);
            }
            for &v in &path[1..path.len() - 1] {
                assert!(internals.insert(v), "internal vertex {v} reused");
            }
        }
    }

    #[test]
    fn extract_empty_when_unreachable() {
        let g = DiGraph::from_edges([(2, 1)]);
        let dp = DisjointPaths::new(&g);
        assert!(dp.extract(p(1), p(2)).is_empty());
    }

    #[test]
    fn cross_disjoint_paths() {
        // Non-sink {5} has exactly 2 disjoint paths to each of {1,2,3}.
        let mut g = DiGraph::complete(&process_set([1, 2, 3]));
        g.add_edge(p(5), p(1));
        g.add_edge(p(5), p(2));
        assert_eq!(
            g.min_cross_disjoint_paths(&process_set([5]), &process_set([1, 2, 3])),
            2
        );
    }

    #[test]
    fn trivial_graphs() {
        let mut g = DiGraph::new();
        assert_eq!(g.strong_connectivity(), 0);
        g.add_vertex(p(1));
        assert_eq!(g.strong_connectivity(), 1);
        assert!(g.is_k_strongly_connected(5));
    }

    #[test]
    fn bounded_count_early_exit_matches() {
        let g = DiGraph::complete(&process_set(1..=6));
        let dp = DisjointPaths::new(&g);
        assert_eq!(dp.count_bounded(p(1), p(2), Some(3)), 3);
        assert_eq!(dp.count(p(1), p(2)), 5);
    }

    #[test]
    fn missing_vertices_count_zero() {
        let g = DiGraph::from_edges([(1, 2)]);
        assert_eq!(g.disjoint_path_count(p(1), p(99)), 0);
    }
}

#[cfg(test)]
mod min_cut_tests {
    use super::*;
    use crate::id::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn bottleneck_vertex_is_the_cut() {
        // 1 -> 9 -> 5 and 1 -> 2 -> 9 -> ... : all routes pass through 9.
        let g = DiGraph::from_edges([(1, 9), (9, 5), (1, 2), (2, 9)]);
        let dp = DisjointPaths::new(&g);
        assert_eq!(dp.min_vertex_cut(p(1), p(5)), process_set([9]));
    }

    #[test]
    fn cut_size_matches_menger() {
        let g = DiGraph::complete(&process_set(1..=5));
        let dp = DisjointPaths::new(&g);
        // adjacent pair: the direct edge cannot be cut; the extracted cut
        // covers the remaining paths (count - 1 vertices).
        let cut = dp.min_vertex_cut(p(1), p(2));
        assert_eq!(cut.len(), dp.count(p(1), p(2)) - 1);
        assert_eq!(cut, process_set([3, 4, 5]));
    }

    #[test]
    fn cut_disconnects_when_no_direct_edge() {
        // two disjoint 2-hop routes: cut must take one vertex from each
        let g = DiGraph::from_edges([(1, 2), (2, 5), (1, 3), (3, 5)]);
        let dp = DisjointPaths::new(&g);
        let cut = dp.min_vertex_cut(p(1), p(5));
        assert_eq!(cut.len(), 2);
        let mut g2 = g.clone();
        for v in &cut {
            g2.remove_vertex(*v);
        }
        assert_eq!(g2.disjoint_path_count(p(1), p(5)), 0);
    }

    #[test]
    fn unreachable_pair_has_empty_cut() {
        let g = DiGraph::from_edges([(2, 1)]);
        let dp = DisjointPaths::new(&g);
        assert!(dp.min_vertex_cut(p(1), p(2)).is_empty());
    }
}
