//! Graphviz DOT export for knowledge connectivity graphs.

use std::fmt::Write as _;

use crate::digraph::DiGraph;
use crate::id::ProcessSet;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Vertices drawn filled red (conventionally the Byzantine processes).
    pub highlight: ProcessSet,
    /// Vertices drawn with a double border (conventionally the sink/core).
    pub emphasize: ProcessSet,
    /// Graph label rendered under the drawing.
    pub label: String,
}

/// Renders `graph` as Graphviz DOT.
///
/// # Example
///
/// ```
/// use cupft_graph::{to_dot, DiGraph, DotStyle};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let dot = to_dot(&g, &DotStyle::default());
/// assert!(dot.starts_with("digraph knowledge"));
/// assert!(dot.contains("p1 -> p2"));
/// ```
pub fn to_dot(graph: &DiGraph, style: &DotStyle) -> String {
    let mut out = String::new();
    out.push_str("digraph knowledge {\n");
    out.push_str("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n");
    if !style.label.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", style.label.replace('"', "'"));
    }
    for v in graph.vertices() {
        let mut attrs: Vec<String> = Vec::new();
        if style.highlight.contains(&v) {
            attrs.push("style=filled, fillcolor=\"#f4cccc\"".into());
        }
        if style.emphasize.contains(&v) {
            attrs.push("peripheries=2".into());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {v};");
        } else {
            let _ = writeln!(out, "  {v} [{}];", attrs.join(", "));
        }
    }
    for (a, b) in graph.edges() {
        let _ = writeln!(out, "  {a} -> {b};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig1b;
    use crate::id::process_set;

    #[test]
    fn renders_vertices_and_edges() {
        let g = DiGraph::from_edges([(1, 2), (2, 3)]);
        let dot = to_dot(&g, &DotStyle::default());
        assert!(dot.contains("p1 -> p2;"));
        assert!(dot.contains("p2 -> p3;"));
        assert!(dot.contains("  p3"));
    }

    #[test]
    fn styles_applied() {
        let fig = fig1b();
        let dot = to_dot(
            fig.graph(),
            &DotStyle {
                highlight: fig.byzantine().clone(),
                emphasize: process_set([1, 2, 3]),
                label: "Fig. 1b".into(),
            },
        );
        assert!(dot.contains("p4 [style=filled"));
        assert!(dot.contains("p1 [peripheries=2]"));
        assert!(dot.contains("label=\"Fig. 1b\""));
    }

    #[test]
    fn label_quotes_escaped() {
        let g = DiGraph::from_edges([(1, 2)]);
        let dot = to_dot(
            &g,
            &DotStyle {
                label: "say \"hi\"".into(),
                ..DotStyle::default()
            },
        );
        assert!(!dot.contains("\"say \"hi\"\""));
    }
}
