//! Strongly connected components, condensations, and sink components.

use std::collections::{BTreeMap, BTreeSet};

use crate::digraph::DiGraph;
use crate::id::{ProcessId, ProcessSet};

/// Computes the strongly connected components of `g` using an iterative
/// Tarjan algorithm.
///
/// Components are returned in *reverse topological order* of the
/// condensation (a property of Tarjan's algorithm): every component appears
/// before any component that can reach it. In particular, sink components
/// appear first.
///
/// # Example
///
/// ```
/// use cupft_graph::{strongly_connected_components, DiGraph};
///
/// // 1 <-> 2 -> 3 <-> 4 : two components, {3,4} is the sink.
/// let g = DiGraph::from_edges([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]);
/// let sccs = strongly_connected_components(&g);
/// assert_eq!(sccs.len(), 2);
/// assert!(sccs[0].contains(&cupft_graph::ProcessId::new(3)));
/// ```
pub fn strongly_connected_components(g: &DiGraph) -> Vec<ProcessSet> {
    let vertices: Vec<ProcessId> = g.vertices().collect();
    let index_of: BTreeMap<ProcessId, usize> =
        vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let n = vertices.len();

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<ProcessSet> = Vec::new();

    // Iterative Tarjan: the explicit call stack holds (vertex, neighbor
    // iterator position over a pre-materialized adjacency list).
    let adj: Vec<Vec<usize>> = vertices
        .iter()
        .map(|&v| {
            g.out_neighbors(v)
                .iter()
                .map(|w| index_of[w])
                .collect::<Vec<_>>()
        })
        .collect();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if *pos < adj[v].len() {
                let w = adj[v][*pos];
                *pos += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = ProcessSet::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.insert(vertices[w]);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// The condensation of a directed graph: one node per strongly connected
/// component, with an edge between components iff some original edge
/// crosses them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    components: Vec<ProcessSet>,
    /// `edges[c]` = indices of components reachable from component `c`
    /// through a single original edge.
    edges: Vec<BTreeSet<usize>>,
    component_of: BTreeMap<ProcessId, usize>,
}

impl Condensation {
    /// The strongly connected components, in reverse topological order
    /// (sinks first).
    pub fn components(&self) -> &[ProcessSet] {
        &self.components
    }

    /// Index of the component containing `v`, if `v` is a vertex.
    pub fn component_of(&self, v: ProcessId) -> Option<usize> {
        self.component_of.get(&v).copied()
    }

    /// Outgoing component edges of component `c`.
    pub fn component_edges(&self, c: usize) -> &BTreeSet<usize> {
        &self.edges[c]
    }

    /// Indices of *sink* components: components with no outgoing edges
    /// (Section II-C: "a strongly connected component is a sink iff there is
    /// no path from a node in it to other nodes").
    pub fn sink_indices(&self) -> Vec<usize> {
        (0..self.components.len())
            .filter(|&c| self.edges[c].is_empty())
            .collect()
    }

    /// The sink components themselves.
    pub fn sinks(&self) -> Vec<&ProcessSet> {
        self.sink_indices()
            .into_iter()
            .map(|c| &self.components[c])
            .collect()
    }

    /// If the condensation has exactly one sink, returns it.
    pub fn unique_sink(&self) -> Option<&ProcessSet> {
        let sinks = self.sink_indices();
        match sinks.as_slice() {
            [only] => Some(&self.components[*only]),
            _ => None,
        }
    }

    /// Whether `v` belongs to a sink component ("sink member").
    pub fn is_sink_member(&self, v: ProcessId) -> bool {
        self.component_of(v)
            .is_some_and(|c| self.edges[c].is_empty())
    }
}

/// Computes the condensation of `g`.
///
/// # Example
///
/// ```
/// use cupft_graph::{condensation, DiGraph};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]);
/// let c = condensation(&g);
/// assert_eq!(c.components().len(), 2);
/// let sink = c.unique_sink().unwrap();
/// assert_eq!(sink.len(), 2); // {3, 4}
/// ```
pub fn condensation(g: &DiGraph) -> Condensation {
    let components = strongly_connected_components(g);
    let mut component_of = BTreeMap::new();
    for (i, comp) in components.iter().enumerate() {
        for &v in comp {
            component_of.insert(v, i);
        }
    }
    let mut edges = vec![BTreeSet::new(); components.len()];
    for (u, v) in g.edges() {
        let (cu, cv) = (component_of[&u], component_of[&v]);
        if cu != cv {
            edges[cu].insert(cv);
        }
    }
    Condensation {
        components,
        edges,
        component_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1)]);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], process_set([1, 2, 3]));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (1, 3)]);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        for c in &sccs {
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn components_partition_vertices() {
        let g = DiGraph::from_edges([(1, 2), (2, 1), (3, 4), (4, 3), (2, 3), (5, 1)]);
        let sccs = strongly_connected_components(&g);
        let mut all = ProcessSet::new();
        let mut total = 0;
        for c in &sccs {
            total += c.len();
            all.extend(c.iter().copied());
        }
        assert_eq!(total, g.vertex_count());
        assert_eq!(all, g.vertex_set());
    }

    #[test]
    fn reverse_topological_order() {
        // 5 -> {1,2} -> {3,4}; sink {3,4} must appear before {1,2}, which
        // must appear before {5}.
        let g = DiGraph::from_edges([(1, 2), (2, 1), (3, 4), (4, 3), (2, 3), (5, 1)]);
        let sccs = strongly_connected_components(&g);
        let pos = |set: &ProcessSet| sccs.iter().position(|c| c == set).unwrap();
        assert!(pos(&process_set([3, 4])) < pos(&process_set([1, 2])));
        assert!(pos(&process_set([1, 2])) < pos(&process_set([5])));
    }

    #[test]
    fn condensation_sinks() {
        let g = DiGraph::from_edges([(1, 2), (2, 1), (3, 4), (4, 3), (2, 3), (5, 1)]);
        let c = condensation(&g);
        assert_eq!(c.unique_sink(), Some(&process_set([3, 4])));
        assert!(c.is_sink_member(p(3)));
        assert!(!c.is_sink_member(p(1)));
        assert!(!c.is_sink_member(p(5)));
    }

    #[test]
    fn multiple_sinks_detected() {
        let g = DiGraph::from_edges([(1, 2), (1, 3)]);
        let c = condensation(&g);
        assert_eq!(c.sinks().len(), 2);
        assert!(c.unique_sink().is_none());
    }

    #[test]
    fn isolated_vertex_is_its_own_sink() {
        let mut g = DiGraph::new();
        g.add_vertex(p(9));
        let c = condensation(&g);
        assert_eq!(c.sinks().len(), 1);
        assert!(c.is_sink_member(p(9)));
    }

    #[test]
    fn component_edges_cross_components_only() {
        let g = DiGraph::from_edges([(1, 2), (2, 1), (2, 3)]);
        let c = condensation(&g);
        let c12 = c.component_of(p(1)).unwrap();
        let c3 = c.component_of(p(3)).unwrap();
        assert!(c.component_edges(c12).contains(&c3));
        assert!(c.component_edges(c3).is_empty());
    }

    #[test]
    fn deep_recursion_does_not_overflow() {
        // A long path graph exercises the iterative Tarjan implementation.
        let edges: Vec<(u64, u64)> = (0..20_000).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(edges);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 20_001);
    }

    #[test]
    fn big_cycle_single_component() {
        let mut edges: Vec<(u64, u64)> = (0..5_000).map(|i| (i, i + 1)).collect();
        edges.push((5_000, 0));
        let g = DiGraph::from_edges(edges);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
    }
}
