//! Unit-capacity max-flow (Dinic) used for Menger-style connectivity queries.

use std::collections::VecDeque;

/// A small max-flow network over dense `usize` node indices with integer
/// capacities, specialized for the unit-capacity networks that arise from
/// vertex-connectivity reductions.
///
/// The implementation is Dinic's algorithm; on unit-capacity networks it
/// runs in `O(E · sqrt(V))`, far more than fast enough for knowledge
/// connectivity graphs of protocol scale.
///
/// # Example
///
/// ```
/// use cupft_graph::UnitFlowNetwork;
///
/// // Two parallel length-2 routes from 0 to 3.
/// let mut net = UnitFlowNetwork::new(4);
/// net.add_edge(0, 1, 1);
/// net.add_edge(1, 3, 1);
/// net.add_edge(0, 2, 1);
/// net.add_edge(2, 3, 1);
/// assert_eq!(net.max_flow(0, 3, None), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnitFlowNetwork {
    n: usize,
    // Edge list in pairs: edge 2k is forward, 2k+1 is its residual.
    to: Vec<usize>,
    cap: Vec<u32>,
    head: Vec<Vec<usize>>,
}

impl UnitFlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        UnitFlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed edge with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: u32) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        let e = self.to.len();
        self.to.push(to);
        self.cap.push(capacity);
        self.head[from].push(e);
        self.to.push(from);
        self.cap.push(0);
        self.head[to].push(e + 1);
    }

    /// Computes the maximum flow from `source` to `sink`, optionally
    /// stopping early once `limit` units have been routed (useful when the
    /// caller only needs to know whether the flow reaches a threshold).
    ///
    /// Mutates internal residual capacities; call on a fresh network (or
    /// clone) per query.
    pub fn max_flow(&mut self, source: usize, sink: usize, limit: Option<usize>) -> usize {
        assert!(source < self.n && sink < self.n, "terminal out of range");
        if source == sink {
            return usize::MAX;
        }
        let limit = limit.unwrap_or(usize::MAX);
        let mut flow = 0usize;
        let mut level = vec![-1i32; self.n];
        let mut iter = vec![0usize; self.n];

        while flow < limit {
            // BFS to build level graph.
            level.fill(-1);
            level[source] = 0;
            let mut queue = VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                for &e in &self.head[v] {
                    let w = self.to[e];
                    if self.cap[e] > 0 && level[w] < 0 {
                        level[w] = level[v] + 1;
                        queue.push_back(w);
                    }
                }
            }
            if level[sink] < 0 {
                break;
            }
            iter.fill(0);
            // DFS blocking flow, one augmenting unit at a time (unit caps).
            loop {
                if flow >= limit {
                    break;
                }
                let pushed = self.dfs_augment(source, sink, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    fn dfs_augment(&mut self, v: usize, sink: usize, level: &[i32], iter: &mut [usize]) -> usize {
        // Iterative DFS along the level graph carrying one unit.
        let mut path: Vec<usize> = Vec::new(); // edge indices
        let mut cur = v;
        loop {
            if cur == sink {
                for &e in &path {
                    self.cap[e] -= 1;
                    self.cap[e ^ 1] += 1;
                }
                return 1;
            }
            let mut advanced = false;
            while iter[cur] < self.head[cur].len() {
                let e = self.head[cur][iter[cur]];
                let w = self.to[e];
                if self.cap[e] > 0 && level[w] == level[cur] + 1 {
                    path.push(e);
                    cur = w;
                    advanced = true;
                    break;
                }
                iter[cur] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: retreat.
            match path.pop() {
                Some(e) => {
                    cur = self.to[e ^ 1];
                    iter[cur] += 1;
                }
                None => return 0,
            }
        }
    }

    /// After a [`Self::max_flow`] call, returns the set of nodes reachable
    /// from `source` in the residual network (used to extract minimum
    /// cuts via max-flow/min-cut duality).
    pub fn residual_reachable(&self, source: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[source] = true;
        let mut queue = VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &e in &self.head[v] {
                let w = self.to[e];
                if self.cap[e] > 0 && !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// After a [`Self::max_flow`] call, returns the forward edges (as
    /// `(from, to)` pairs) that carry one unit of flow. Useful for path
    /// decomposition.
    pub fn saturated_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for e in (0..self.to.len()).step_by(2) {
            // Forward edge e originally had cap >= residual; it carries flow
            // iff its residual twin gained capacity.
            if self.cap[e + 1] > 0 {
                out.push((self.to[e + 1], self.to[e]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = UnitFlowNetwork::new(3);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        assert_eq!(net.max_flow(0, 2, None), 1);
    }

    #[test]
    fn no_path() {
        let mut net = UnitFlowNetwork::new(3);
        net.add_edge(1, 0, 1);
        net.add_edge(1, 2, 1);
        assert_eq!(net.max_flow(0, 2, None), 0);
    }

    #[test]
    fn parallel_paths_counted() {
        let mut net = UnitFlowNetwork::new(6);
        // three disjoint routes 0->x->5
        for x in 1..=3 {
            net.add_edge(0, x, 1);
            net.add_edge(x, 5, 1);
        }
        assert_eq!(net.max_flow(0, 5, None), 3);
    }

    #[test]
    fn limit_stops_early() {
        let mut net = UnitFlowNetwork::new(6);
        for x in 1..=4 {
            net.add_edge(0, x, 1);
            net.add_edge(x, 5, 1);
        }
        assert_eq!(net.max_flow(0, 5, Some(2)), 2);
    }

    #[test]
    fn bottleneck_respected() {
        // 0 -> 1 -> {2,3} -> 4: vertex 1 is a bottleneck edge of cap 1.
        let mut net = UnitFlowNetwork::new(5);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 4, 1);
        net.add_edge(3, 4, 1);
        assert_eq!(net.max_flow(0, 4, None), 1);
    }

    #[test]
    fn rerouting_through_residuals() {
        // Classic case where a greedy path must be undone via residual edges.
        let mut net = UnitFlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3, None), 2);
    }

    #[test]
    fn saturated_edges_form_paths() {
        let mut net = UnitFlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        let f = net.max_flow(0, 3, None);
        let sat = net.saturated_edges();
        assert_eq!(f, 2);
        assert_eq!(sat.len(), 4);
        assert!(sat.contains(&(0, 1)));
        assert!(sat.contains(&(2, 3)));
    }

    #[test]
    fn larger_capacities() {
        let mut net = UnitFlowNetwork::new(2);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1, None), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut net = UnitFlowNetwork::new(2);
        net.add_edge(0, 5, 1);
    }
}
