//! Process identifiers and the compact process-set representation.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A unique process identifier.
///
/// The system model (Section II-A of the paper) assumes each process has a
/// unique ID, that IDs are *not necessarily consecutive*, and that faulty
/// processes cannot mint additional IDs (no Sybil attacks). `ProcessId` is a
/// newtype over `u64` so sparse ID spaces are representable, and the
/// simulation registry is the Sybil guard.
///
/// # Example
///
/// ```
/// use cupft_graph::ProcessId;
///
/// let a = ProcessId::new(7);
/// let b = ProcessId::new(1_000_003);
/// assert!(a < b);
/// assert_eq!(a.raw(), 7);
/// assert_eq!(format!("{a}"), "p7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates a process identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw integer value of this identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for ProcessId {
    fn from(raw: u64) -> Self {
        ProcessId(raw)
    }
}

impl From<ProcessId> for u64 {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed per-element hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The 128-bit contribution one element makes to a set fingerprint
/// (two independent 64-bit mixes, concatenated).
#[inline]
fn element_fingerprint(raw: u64) -> u128 {
    let lo = mix64(raw) as u128;
    let hi = mix64(raw ^ 0xa5a5_a5a5_a5a5_a5a5) as u128;
    (hi << 64) | lo
}

/// An ordered set of process identifiers with a cached fingerprint.
///
/// Stored as a sorted, deduplicated `Vec<ProcessId>` — compact and
/// cache-friendly compared to a `BTreeSet` — with a 128-bit *commutative*
/// fingerprint (the wrapping sum of per-element [SplitMix64] hashes)
/// maintained incrementally on every insert/remove. The fingerprint makes
/// hashing **O(1)** and gives equality a constant-time fast reject, which
/// is what the delta-gossip discovery path leans on: per-peer sync states
/// compare whole certificate sets by fingerprint instead of re-walking
/// them.
///
/// Iteration is in ascending ID order, so every protocol decision derived
/// from iteration stays deterministic across runs (the property the old
/// `BTreeSet` alias provided).
///
/// [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
///
/// # Example
///
/// ```
/// use cupft_graph::{process_set, ProcessId, ProcessSet};
///
/// let mut s = ProcessSet::new();
/// assert!(s.insert(ProcessId::new(3)));
/// assert!(s.insert(ProcessId::new(1)));
/// assert!(!s.insert(ProcessId::new(3))); // already present
/// assert_eq!(s, process_set([1, 3]));
/// assert_eq!(s.fingerprint(), process_set([3, 1]).fingerprint());
/// ```
#[derive(Clone, Default)]
pub struct ProcessSet {
    items: Vec<ProcessId>,
    fp: u128,
}

impl ProcessSet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        ProcessSet {
            items: Vec::new(),
            fp: 0,
        }
    }

    /// Creates an empty set with room for `capacity` members.
    pub fn with_capacity(capacity: usize) -> Self {
        ProcessSet {
            items: Vec::with_capacity(capacity),
            fp: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The cached order-independent 128-bit fingerprint: equal sets always
    /// have equal fingerprints, and distinct sets collide with negligible
    /// probability (~2⁻¹²⁸ per pair). Maintained in O(1) per mutation.
    pub fn fingerprint(&self) -> u128 {
        self.fp
    }

    /// Whether `p` is a member (binary search).
    pub fn contains(&self, p: &ProcessId) -> bool {
        self.items.binary_search(p).is_ok()
    }

    /// Inserts `p`; returns `true` if it was not already present.
    ///
    /// Appending in ascending order is O(1); arbitrary-position inserts
    /// shift the tail (the sets this crate builds are either collected in
    /// one pass or grown near their maximum, so this stays cheap in
    /// practice).
    pub fn insert(&mut self, p: ProcessId) -> bool {
        // Fast path: ascending append (the overwhelmingly common pattern).
        if self.items.last().is_none_or(|&last| last < p) {
            self.items.push(p);
        } else {
            match self.items.binary_search(&p) {
                Ok(_) => return false,
                Err(at) => self.items.insert(at, p),
            }
        }
        self.fp = self.fp.wrapping_add(element_fingerprint(p.raw()));
        true
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: &ProcessId) -> bool {
        match self.items.binary_search(p) {
            Ok(at) => {
                self.items.remove(at);
                self.fp = self.fp.wrapping_sub(element_fingerprint(p.raw()));
                true
            }
            Err(_) => false,
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.items.clear();
        self.fp = 0;
    }

    /// Keeps only the members for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(&ProcessId) -> bool) {
        let mut fp = self.fp;
        self.items.retain(|p| {
            let k = keep(p);
            if !k {
                fp = fp.wrapping_sub(element_fingerprint(p.raw()));
            }
            k
        });
        self.fp = fp;
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, ProcessId> {
        self.items.iter()
    }

    /// The members as a sorted slice.
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.items
    }

    /// The smallest member.
    pub fn first(&self) -> Option<&ProcessId> {
        self.items.first()
    }

    /// The largest member.
    pub fn last(&self) -> Option<&ProcessId> {
        self.items.last()
    }

    /// Members of `self` ∪ `other`, ascending (like `BTreeSet::union`).
    pub fn union<'a>(&'a self, other: &'a ProcessSet) -> impl Iterator<Item = &'a ProcessId> {
        MergeIter {
            a: self.items.as_slice(),
            b: other.items.as_slice(),
            keep: |in_a: bool, in_b: bool| in_a || in_b,
        }
    }

    /// Members of `self` ∖ `other`, ascending.
    pub fn difference<'a>(&'a self, other: &'a ProcessSet) -> impl Iterator<Item = &'a ProcessId> {
        MergeIter {
            a: self.items.as_slice(),
            b: other.items.as_slice(),
            keep: |in_a: bool, in_b: bool| in_a && !in_b,
        }
    }

    /// Members of `self` ∩ `other`, ascending.
    pub fn intersection<'a>(
        &'a self,
        other: &'a ProcessSet,
    ) -> impl Iterator<Item = &'a ProcessId> {
        MergeIter {
            a: self.items.as_slice(),
            b: other.items.as_slice(),
            keep: |in_a: bool, in_b: bool| in_a && in_b,
        }
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &ProcessSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.items.iter().all(|p| other.contains(p))
    }

    /// Whether every member of `other` is in `self`.
    pub fn is_superset(&self, other: &ProcessSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets share no member.
    pub fn is_disjoint(&self, other: &ProcessSet) -> bool {
        self.intersection(other).next().is_none()
    }
}

/// Two-pointer merge over two sorted slices, yielding elements selected by
/// `keep(in_a, in_b)` — the shared engine behind union / difference /
/// intersection.
struct MergeIter<'a, F> {
    a: &'a [ProcessId],
    b: &'a [ProcessId],
    keep: F,
}

impl<'a, F: Fn(bool, bool) -> bool> Iterator for MergeIter<'a, F> {
    type Item = &'a ProcessId;

    fn next(&mut self) -> Option<&'a ProcessId> {
        loop {
            let (item, in_a, in_b) = match (self.a.first(), self.b.first()) {
                (None, None) => return None,
                (Some(x), None) => {
                    self.a = &self.a[1..];
                    (x, true, false)
                }
                (None, Some(y)) => {
                    self.b = &self.b[1..];
                    (y, false, true)
                }
                (Some(x), Some(y)) => match x.cmp(y) {
                    Ordering::Less => {
                        self.a = &self.a[1..];
                        (x, true, false)
                    }
                    Ordering::Greater => {
                        self.b = &self.b[1..];
                        (y, false, true)
                    }
                    Ordering::Equal => {
                        self.a = &self.a[1..];
                        self.b = &self.b[1..];
                        (x, true, true)
                    }
                },
            };
            if (self.keep)(in_a, in_b) {
                return Some(item);
            }
        }
    }
}

impl PartialEq for ProcessSet {
    fn eq(&self, other: &Self) -> bool {
        // Fingerprint + length give a constant-time reject; on a match the
        // element compare is what makes Eq exact (never trust 128 bits
        // alone where byte-identical equivalence is asserted).
        self.fp == other.fp && self.items == other.items
    }
}
impl Eq for ProcessSet {}

impl PartialOrd for ProcessSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic over ascending members — the same order the old
/// `BTreeSet` alias had, so `BTreeSet<ProcessSet>` collections keep their
/// ordering.
impl Ord for ProcessSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.items.cmp(&other.items)
    }
}

/// O(1): hashes the cached fingerprint and length instead of the members.
impl Hash for ProcessSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u128(self.fp);
        state.write_usize(self.items.len());
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut items: Vec<ProcessId> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        let fp = items.iter().fold(0u128, |acc, p| {
            acc.wrapping_add(element_fingerprint(p.raw()))
        });
        ProcessSet { items, fp }
    }
}

impl<'a> FromIterator<&'a ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = &'a ProcessId>>(iter: I) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<'a> Extend<&'a ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = &'a ProcessId>>(&mut self, iter: I) {
        self.extend(iter.into_iter().copied());
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = std::vec::IntoIter<ProcessId>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a ProcessSet {
    type Item = &'a ProcessId;
    type IntoIter = std::slice::Iter<'a, ProcessId>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl From<Vec<ProcessId>> for ProcessSet {
    fn from(items: Vec<ProcessId>) -> Self {
        items.into_iter().collect()
    }
}

/// Convenience constructor for a [`ProcessSet`] from raw integers.
///
/// # Example
///
/// ```
/// use cupft_graph::{ProcessId, process_set};
///
/// let s = process_set([1, 2, 3]);
/// assert!(s.contains(&ProcessId::new(2)));
/// ```
pub fn process_set<I: IntoIterator<Item = u64>>(raw: I) -> ProcessSet {
    raw.into_iter().map(ProcessId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(s: &ProcessSet) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ProcessId::new(42).to_string(), "p42");
    }

    #[test]
    fn ordering_matches_raw() {
        let mut ids = [ProcessId::new(9), ProcessId::new(1), ProcessId::new(5)];
        ids.sort();
        assert_eq!(
            ids.iter().map(|p| p.raw()).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn roundtrip_from_u64() {
        let id: ProcessId = 17u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 17);
    }

    #[test]
    fn process_set_dedups_and_sorts() {
        let s = process_set([3, 1, 3, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().next().copied(), Some(ProcessId::new(1)));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessId::default().raw(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId::new(5)));
        assert!(s.insert(ProcessId::new(2)));
        assert!(!s.insert(ProcessId::new(5)));
        assert!(s.contains(&ProcessId::new(2)));
        assert!(!s.contains(&ProcessId::new(3)));
        assert!(s.remove(&ProcessId::new(5)));
        assert!(!s.remove(&ProcessId::new(5)));
        assert_eq!(s, process_set([2]));
    }

    #[test]
    fn fingerprint_is_order_independent_and_incremental() {
        let collected = process_set([7, 1, 9, 4]);
        let mut grown = ProcessSet::new();
        for raw in [9, 4, 7, 1] {
            grown.insert(ProcessId::new(raw));
        }
        assert_eq!(collected.fingerprint(), grown.fingerprint());
        assert_eq!(collected, grown);
        // remove + reinsert returns to the same fingerprint
        let before = grown.fingerprint();
        grown.remove(&ProcessId::new(4));
        assert_ne!(grown.fingerprint(), before);
        grown.insert(ProcessId::new(4));
        assert_eq!(grown.fingerprint(), before);
    }

    #[test]
    fn fingerprint_distinguishes_nearby_sets() {
        // {1,2} vs {3}: a naive sum of raw IDs would collide.
        assert_ne!(
            process_set([1, 2]).fingerprint(),
            process_set([3]).fingerprint()
        );
        assert_ne!(
            process_set([1, 4]).fingerprint(),
            process_set([2, 3]).fingerprint()
        );
    }

    #[test]
    fn equal_sets_hash_equal() {
        let a = process_set([10, 20, 30]);
        let b = process_set([30, 10, 20]);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&a), hash_of(&process_set([10, 20])));
    }

    #[test]
    fn set_algebra_matches_btreeset_semantics() {
        let a = process_set([1, 2, 3, 5]);
        let b = process_set([2, 4, 5]);
        let union: ProcessSet = a.union(&b).copied().collect();
        assert_eq!(union, process_set([1, 2, 3, 4, 5]));
        let diff: ProcessSet = a.difference(&b).copied().collect();
        assert_eq!(diff, process_set([1, 3]));
        let inter: ProcessSet = a.intersection(&b).copied().collect();
        assert_eq!(inter, process_set([2, 5]));
        assert!(process_set([2, 5]).is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(b.is_superset(&process_set([4])));
        assert!(process_set([7, 8]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn ord_is_lexicographic_like_btreeset() {
        assert!(process_set([1, 2]) < process_set([1, 3]));
        assert!(process_set([1]) < process_set([1, 2]));
        assert!(process_set([2]) > process_set([1, 9, 10]));
    }

    #[test]
    fn retain_updates_fingerprint() {
        let mut s = process_set([1, 2, 3, 4, 5]);
        s.retain(|p| p.raw() % 2 == 1);
        assert_eq!(s, process_set([1, 3, 5]));
        assert_eq!(s.fingerprint(), process_set([1, 3, 5]).fingerprint());
    }

    #[test]
    fn iteration_is_ascending() {
        let s = process_set([9, 1, 5]);
        let order: Vec<u64> = s.iter().map(|p| p.raw()).collect();
        assert_eq!(order, vec![1, 5, 9]);
        let owned: Vec<u64> = s.clone().into_iter().map(|p| p.raw()).collect();
        assert_eq!(owned, vec![1, 5, 9]);
        let by_ref: Vec<u64> = (&s).into_iter().map(|p| p.raw()).collect();
        assert_eq!(by_ref, vec![1, 5, 9]);
        assert_eq!(s.first(), Some(&ProcessId::new(1)));
        assert_eq!(s.last(), Some(&ProcessId::new(9)));
    }

    #[test]
    fn clear_resets_fingerprint() {
        let mut s = process_set([1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.fingerprint(), 0);
        assert_eq!(s, ProcessSet::new());
    }
}
