//! Process identifiers.

use std::collections::BTreeSet;
use std::fmt;

/// A unique process identifier.
///
/// The system model (Section II-A of the paper) assumes each process has a
/// unique ID, that IDs are *not necessarily consecutive*, and that faulty
/// processes cannot mint additional IDs (no Sybil attacks). `ProcessId` is a
/// newtype over `u64` so sparse ID spaces are representable, and the
/// simulation registry is the Sybil guard.
///
/// # Example
///
/// ```
/// use cupft_graph::ProcessId;
///
/// let a = ProcessId::new(7);
/// let b = ProcessId::new(1_000_003);
/// assert!(a < b);
/// assert_eq!(a.raw(), 7);
/// assert_eq!(format!("{a}"), "p7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates a process identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw integer value of this identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for ProcessId {
    fn from(raw: u64) -> Self {
        ProcessId(raw)
    }
}

impl From<ProcessId> for u64 {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

/// An ordered set of process identifiers.
///
/// Ordered so that iteration (and therefore every protocol decision derived
/// from iteration) is deterministic across runs.
pub type ProcessSet = BTreeSet<ProcessId>;

/// Convenience constructor for a [`ProcessSet`] from raw integers.
///
/// # Example
///
/// ```
/// use cupft_graph::{ProcessId, process_set};
///
/// let s = process_set([1, 2, 3]);
/// assert!(s.contains(&ProcessId::new(2)));
/// ```
pub fn process_set<I: IntoIterator<Item = u64>>(raw: I) -> ProcessSet {
    raw.into_iter().map(ProcessId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(ProcessId::new(42).to_string(), "p42");
    }

    #[test]
    fn ordering_matches_raw() {
        let mut ids = [ProcessId::new(9), ProcessId::new(1), ProcessId::new(5)];
        ids.sort();
        assert_eq!(
            ids.iter().map(|p| p.raw()).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn roundtrip_from_u64() {
        let id: ProcessId = 17u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 17);
    }

    #[test]
    fn process_set_dedups_and_sorts() {
        let s = process_set([3, 1, 3, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().next().copied(), Some(ProcessId::new(1)));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessId::default().raw(), 0);
    }
}
