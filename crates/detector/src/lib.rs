//! Participant detectors: the initial-knowledge oracle of the CUP model.
//!
//! Section II-C: each process `i` obtains its initial knowledge from a
//! local oracle `PDᵢ` returning a fixed subset of processes; the oracles
//! collectively define the knowledge connectivity graph. This crate
//! provides the oracle ([`PdOracle`]), signed PD certificates bridging the
//! crypto substrate to [`cupft_graph`] types ([`PdCertificate`]), and the
//! [`SystemSetup`] helper wiring a whole simulated system (keys + oracles)
//! from a knowledge connectivity graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cupft_crypto::{KeyRegistry, SignedPd, SigningKey};
use cupft_graph::{DiGraph, ProcessId, ProcessSet};

/// The participant detector oracle: a static map from process to its
/// initial knowledge, derived from a knowledge connectivity graph.
///
/// The oracle always returns the same set for the same process (the PD of
/// the CUP model is static; knowledge growth happens in the Discovery
/// protocol's state, not in the oracle).
///
/// # Example
///
/// ```
/// use cupft_detector::PdOracle;
/// use cupft_graph::{DiGraph, ProcessId, process_set};
///
/// let g = DiGraph::from_edges([(1, 2), (1, 3), (2, 3)]);
/// let oracle = PdOracle::from_graph(&g);
/// assert_eq!(oracle.pd_of(ProcessId::new(1)), process_set([2, 3]));
/// assert!(oracle.pd_of(ProcessId::new(9)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PdOracle {
    pds: BTreeMap<ProcessId, ProcessSet>,
}

impl PdOracle {
    /// Derives the oracle from a knowledge connectivity graph: `PDᵢ` is the
    /// out-neighborhood of `i`.
    pub fn from_graph(graph: &DiGraph) -> Self {
        PdOracle {
            pds: graph
                .vertices()
                .map(|v| (v, graph.out_neighbors(v)))
                .collect(),
        }
    }

    /// The PD of `id` (empty for unknown processes).
    pub fn pd_of(&self, id: ProcessId) -> ProcessSet {
        self.pds.get(&id).cloned().unwrap_or_default()
    }

    /// All processes known to the oracle.
    pub fn processes(&self) -> ProcessSet {
        self.pds.keys().copied().collect()
    }
}

/// A signature-carrying PD record in graph-typed form.
///
/// Correct processes produce these once at startup (Algorithm 1 line 1
/// signs `⟨i, PDᵢ⟩ᵢ`); Byzantine processes may fabricate records for
/// *their own* ID with arbitrary contents, but records fabricated for
/// other IDs fail verification.
///
/// Every certificate carries a precomputed 128-bit [fingerprint] of its
/// exact contents (author, PD, signature bytes), so equality has a
/// constant-time fast path, `Hash` is O(1), and the discovery layer can
/// dedup/memoize by fingerprint instead of re-hashing or re-verifying
/// whole records.
///
/// [fingerprint]: Self::fingerprint
#[derive(Debug, Clone)]
pub struct PdCertificate {
    inner: SignedPd,
    fp: u128,
}

/// SHA-256 over the canonical record bytes, truncated to 128 bits.
///
/// The fingerprint must be *collision-resistant against adversarial
/// inputs*, not merely well-mixed: the discovery layer memoizes signature
/// verification by fingerprint, so a Byzantine process able to craft a
/// forged record colliding with an already-verified one would smuggle an
/// unverified certificate past the HMAC check (and a collision with a
/// rejected one would censor a valid record). A domain-separated SHA-256
/// closes that door; the cost is paid once per certificate construction,
/// never on the absorb hot path.
fn cert_fingerprint(inner: &SignedPd) -> u128 {
    let mut bytes = Vec::with_capacity(44 + inner.pd().len() * 8);
    bytes.extend_from_slice(b"cupft-cert-fp-v1");
    bytes.extend_from_slice(&inner.author().to_be_bytes());
    bytes.extend_from_slice(&(inner.pd().len() as u64).to_be_bytes());
    for p in inner.pd() {
        bytes.extend_from_slice(&p.to_be_bytes());
    }
    bytes.extend_from_slice(&inner.signature().signer().to_be_bytes());
    bytes.extend_from_slice(inner.signature().tag());
    let digest = cupft_crypto::sha256::digest(&bytes);
    u128::from_be_bytes(digest[..16].try_into().expect("digest is 32 bytes"))
}

impl PdCertificate {
    fn from_inner(inner: SignedPd) -> Self {
        let fp = cert_fingerprint(&inner);
        PdCertificate { inner, fp }
    }

    /// Rebuilds a certificate from a deserialized [`SignedPd`] record.
    ///
    /// The fingerprint is recomputed from the record bytes, so a codec
    /// round-trip (serialize → [`Self::from_signed`]) reproduces the
    /// identical fingerprint — and the rebuilt certificate verifies iff
    /// the serialized one did (the signature travels verbatim).
    pub fn from_signed(inner: SignedPd) -> Self {
        PdCertificate::from_inner(inner)
    }

    /// The record in wire-typed form (author, raw PD, signature) — the
    /// counterpart of [`Self::from_signed`] for serialization layers.
    pub fn as_signed(&self) -> &SignedPd {
        &self.inner
    }

    /// Signs `pd` as `key`'s participant detector output.
    pub fn sign(key: &SigningKey, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate::from_inner(SignedPd::sign(key, raw))
    }

    /// Fabricates an unverifiable record claiming to be `author`'s PD —
    /// the attack Algorithm 1's signatures exist to prevent.
    pub fn forge(author: ProcessId, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate::from_inner(SignedPd::forge(author.raw(), raw))
    }

    /// The claimed author.
    pub fn author(&self) -> ProcessId {
        ProcessId::new(self.inner.author())
    }

    /// The claimed PD.
    pub fn pd(&self) -> ProcessSet {
        self.inner.pd().iter().map(|&r| ProcessId::new(r)).collect()
    }

    /// The precomputed content fingerprint: a pure function of author, PD,
    /// and signature bytes (truncated domain-separated SHA-256, so
    /// collisions are infeasible even for adversarially crafted records —
    /// the property the discovery layer's verification memoization relies
    /// on). Equality remains exact — the fingerprint only *fast-rejects*.
    pub fn fingerprint(&self) -> u128 {
        self.fp
    }

    /// Verifies the signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        self.inner.verify(registry)
    }

    /// Verifies the signature inside an open batch session (see
    /// [`cupft_crypto::KeyRegistry::batch`]).
    pub fn verify_with(&self, batch: &cupft_crypto::BatchVerifier<'_>) -> bool {
        self.inner.verify_with(batch)
    }
}

impl PartialEq for PdCertificate {
    fn eq(&self, other: &Self) -> bool {
        // fp is a pure function of inner: unequal fps ⇒ unequal records.
        self.fp == other.fp && self.inner == other.inner
    }
}
impl Eq for PdCertificate {}

impl PartialOrd for PdCertificate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PdCertificate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

/// O(1): hashes the cached fingerprint only.
impl Hash for PdCertificate {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u128(self.fp);
    }
}

/// Wire form: exactly the inner [`SignedPd`] record — the fingerprint is
/// derived state and never travels (a peer-supplied fingerprint would be
/// an unverified claim; recomputing it on decode keeps the memoization
/// sound).
impl cupft_wire::Encode for PdCertificate {
    fn encode(&self, out: &mut Vec<u8>) {
        cupft_wire::Encode::encode(&self.inner, out);
    }
}

impl cupft_wire::Decode for PdCertificate {
    fn decode(r: &mut cupft_wire::Reader<'_>) -> Result<Self, cupft_wire::WireError> {
        <SignedPd as cupft_wire::Decode>::decode(r).map(PdCertificate::from_signed)
    }
}

/// A shared, thread-safe interning pool of [`PdCertificate`]s keyed by
/// fingerprint.
///
/// The delta-gossip discovery path passes certificates around as
/// `Arc<PdCertificate>` so that cloning a `SETPDS` message is
/// pointer-bumping; the pool is where those `Arc`s are born. Interning the
/// same record twice returns the *same* allocation, so a simulation with
/// `n` processes holds each certificate once, not `O(n)` times.
///
/// # Example
///
/// ```
/// use cupft_detector::{CertPool, PdCertificate, SystemSetup};
/// use cupft_graph::{DiGraph, ProcessId};
/// use std::sync::Arc;
///
/// let setup = SystemSetup::new(&DiGraph::from_edges([(1, 2), (2, 1)]));
/// let pool = CertPool::new();
/// let a = pool.intern(setup.certificate_for(ProcessId::new(1)).unwrap());
/// let b = pool.intern(setup.certificate_for(ProcessId::new(1)).unwrap());
/// assert!(Arc::ptr_eq(&a, &b));
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CertPool {
    by_fp: RwLock<HashMap<u128, Arc<PdCertificate>>>,
    /// Memoized verification verdicts, keyed by fingerprint. Sound to
    /// share system-wide because verification is a pure function of the
    /// record bytes against the one shared [`KeyRegistry`], and the
    /// fingerprint is collision-resistant (see [`PdCertificate`] docs):
    /// whoever verifies a record first verifies it for everyone.
    ///
    /// Read-mostly after the discovery transient, hence the `RwLock`:
    /// probes from a thousand concurrently-absorbing processes share the
    /// read lock instead of serializing; only first-sight settlement
    /// takes the write lock.
    verdicts: RwLock<HashMap<u128, bool>>,
    /// Distinct forged records seen — incremented exactly once per
    /// rejected fingerprint, no matter how many processes (or worker
    /// threads) race to verify the same forgery.
    forged_records: AtomicU64,
    /// Verification requests answered from the verdict memo (no HMAC
    /// work). Together with [`Self::memo_misses`] this is the memo's
    /// hit-rate instrument, surfaced as observability gauges.
    memo_hits: AtomicU64,
    /// Verification requests that had to fall through to the HMAC check.
    memo_misses: AtomicU64,
}

impl CertPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        CertPool::default()
    }

    /// Returns the pooled `Arc` for `cert`, inserting it on first sight.
    pub fn intern(&self, cert: PdCertificate) -> Arc<PdCertificate> {
        let mut pool = self.by_fp.write().expect("cert pool poisoned");
        pool.entry(cert.fingerprint())
            .or_insert_with(|| Arc::new(cert))
            .clone()
    }

    /// Looks up a pooled certificate by fingerprint.
    pub fn get(&self, fingerprint: u128) -> Option<Arc<PdCertificate>> {
        self.by_fp
            .read()
            .expect("cert pool poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Number of distinct certificates interned.
    pub fn len(&self) -> usize {
        self.by_fp.read().expect("cert pool poisoned").len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memoized verdict for `fingerprint`, if any process (or stage
    /// worker) has verified a record with it before.
    pub fn verdict(&self, fingerprint: u128) -> Option<bool> {
        self.verdicts
            .read()
            .expect("cert pool poisoned")
            .get(&fingerprint)
            .copied()
    }

    /// Records a verdict, returning the verdict that actually stuck —
    /// under a race the first writer wins (both racers computed the same
    /// pure function, so the verdicts agree anyway). A rejected
    /// fingerprint bumps [`Self::forged_records`] exactly once, on the
    /// insert that stuck.
    pub fn record_verdict(&self, fingerprint: u128, ok: bool) -> bool {
        let mut verdicts = self.verdicts.write().expect("cert pool poisoned");
        match verdicts.entry(fingerprint) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ok);
                if !ok {
                    self.forged_records.fetch_add(1, Ordering::Relaxed);
                }
                ok
            }
        }
    }

    /// Memoized single-certificate verification: probes the shared
    /// verdict memo, falls back to the HMAC check, and records the
    /// result so no other process pays for this fingerprint again.
    pub fn verify_cert(&self, cert: &PdCertificate, registry: &KeyRegistry) -> bool {
        if let Some(ok) = self.verdict(cert.fingerprint()) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return ok;
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let ok = cert.verify(registry);
        self.record_verdict(cert.fingerprint(), ok)
    }

    /// Batch verification of a whole SETPDS bundle: one memo probe pass
    /// under a single lock acquisition, then one [`KeyRegistry::batch`]
    /// session for the misses, then one pass recording the fresh
    /// verdicts. Returns one verdict per input certificate, in order.
    pub fn verify_batch(&self, certs: &[Arc<PdCertificate>], registry: &KeyRegistry) -> Vec<bool> {
        let mut out = vec![false; certs.len()];
        let mut misses: Vec<usize> = Vec::new();
        {
            let verdicts = self.verdicts.read().expect("cert pool poisoned");
            for (i, cert) in certs.iter().enumerate() {
                match verdicts.get(&cert.fingerprint()) {
                    Some(&ok) => out[i] = ok,
                    None => misses.push(i),
                }
            }
        }
        self.memo_hits
            .fetch_add((certs.len() - misses.len()) as u64, Ordering::Relaxed);
        self.memo_misses
            .fetch_add(misses.len() as u64, Ordering::Relaxed);
        if misses.is_empty() {
            return out;
        }
        {
            let batch = registry.batch();
            for &i in &misses {
                out[i] = certs[i].verify_with(&batch);
            }
        }
        for &i in &misses {
            out[i] = self.record_verdict(certs[i].fingerprint(), out[i]);
        }
        out
    }

    /// Distinct forged (verification-failing) records ever seen by this
    /// pool — each rejected fingerprint counts once, concurrency
    /// notwithstanding.
    pub fn forged_records(&self) -> u64 {
        self.forged_records.load(Ordering::Relaxed)
    }

    /// Verification requests answered from the verdict memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Verification requests that fell through to the HMAC check — one
    /// per *first sight* of a fingerprint, absent races.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses.load(Ordering::Relaxed)
    }
}

/// Wires a complete simulated system from a knowledge connectivity graph:
/// one registered key per vertex plus the PD oracle.
///
/// # Example
///
/// ```
/// use cupft_detector::SystemSetup;
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let setup = SystemSetup::new(&g);
/// let key = setup.key_of(ProcessId::new(1)).unwrap();
/// let cert = setup.certificate_for(ProcessId::new(1)).unwrap();
/// assert!(cert.verify(setup.registry()));
/// assert_eq!(key.id(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSetup {
    registry: KeyRegistry,
    keys: BTreeMap<ProcessId, SigningKey>,
    oracle: PdOracle,
    pool: Arc<CertPool>,
}

impl SystemSetup {
    /// Registers every vertex of `graph` and derives the PD oracle.
    pub fn new(graph: &DiGraph) -> Self {
        let mut registry = KeyRegistry::new();
        let keys = graph
            .vertices()
            .map(|v| (v, registry.register(v.raw())))
            .collect();
        SystemSetup {
            registry,
            keys,
            oracle: PdOracle::from_graph(graph),
            pool: Arc::new(CertPool::new()),
        }
    }

    /// The setup's shared certificate pool (clones share it).
    pub fn pool(&self) -> &Arc<CertPool> {
        &self.pool
    }

    /// The shared key registry (simulated PKI).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// The PD oracle.
    pub fn oracle(&self) -> &PdOracle {
        &self.oracle
    }

    /// The signing key of `id`, if registered.
    pub fn key_of(&self, id: ProcessId) -> Option<&SigningKey> {
        self.keys.get(&id)
    }

    /// Convenience: `id`'s correctly-signed PD certificate.
    pub fn certificate_for(&self, id: ProcessId) -> Option<PdCertificate> {
        let key = self.keys.get(&id)?;
        Some(PdCertificate::sign(key, &self.oracle.pd_of(id)))
    }

    /// Like [`Self::certificate_for`], but interned in the setup's shared
    /// [`CertPool`] — repeated calls return the same allocation.
    pub fn shared_certificate_for(&self, id: ProcessId) -> Option<Arc<PdCertificate>> {
        Some(self.pool.intern(self.certificate_for(id)?))
    }

    /// All process IDs in the system.
    pub fn processes(&self) -> ProcessSet {
        self.keys.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn oracle_matches_graph() {
        let g = DiGraph::from_edges([(1, 2), (1, 3), (3, 1)]);
        let oracle = PdOracle::from_graph(&g);
        assert_eq!(oracle.pd_of(p(1)), process_set([2, 3]));
        assert_eq!(oracle.pd_of(p(2)), ProcessSet::new());
        assert_eq!(oracle.processes(), process_set([1, 2, 3]));
    }

    #[test]
    fn certificate_roundtrip() {
        let g = DiGraph::from_edges([(1, 2), (1, 3)]);
        let setup = SystemSetup::new(&g);
        let cert = setup.certificate_for(p(1)).unwrap();
        assert_eq!(cert.author(), p(1));
        assert_eq!(cert.pd(), process_set([2, 3]));
        assert!(cert.verify(setup.registry()));
    }

    #[test]
    fn forged_certificate_rejected() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        // Byzantine 2 forges a PD for correct process 1.
        let forged = PdCertificate::forge(p(1), &process_set([9]));
        assert!(!forged.verify(setup.registry()));
    }

    #[test]
    fn byzantine_own_pd_lies_verify() {
        // A Byzantine process may claim ANY pd for itself — that is
        // allowed by the model (signatures only pin authorship).
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let key2 = setup.key_of(p(2)).unwrap();
        let lying = PdCertificate::sign(key2, &process_set([1, 42, 99]));
        assert!(lying.verify(setup.registry()));
        assert_eq!(lying.pd(), process_set([1, 42, 99]));
    }

    #[test]
    fn setup_covers_all_vertices() {
        let g = DiGraph::from_edges([(1, 2), (3, 4), (4, 3), (2, 3)]);
        let setup = SystemSetup::new(&g);
        assert_eq!(setup.processes(), process_set([1, 2, 3, 4]));
        for v in setup.processes() {
            assert!(setup.key_of(v).is_some());
            assert!(setup.certificate_for(v).unwrap().verify(setup.registry()));
        }
    }

    #[test]
    fn missing_process_has_no_key() {
        let g = DiGraph::from_edges([(1, 2)]);
        let setup = SystemSetup::new(&g);
        assert!(setup.key_of(p(9)).is_none());
        assert!(setup.certificate_for(p(9)).is_none());
        assert!(setup.shared_certificate_for(p(9)).is_none());
    }

    #[test]
    fn fingerprint_tracks_exact_contents() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let a = setup.certificate_for(p(1)).unwrap();
        let b = setup.certificate_for(p(1)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        // Different author ⇒ different fingerprint.
        let c = setup.certificate_for(p(2)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same author + PD but forged signature ⇒ different fingerprint
        // (the signature bytes are part of the record's identity).
        let forged = PdCertificate::forge(p(1), &a.pd());
        assert_ne!(a.fingerprint(), forged.fingerprint());
        assert_ne!(a, forged);
    }

    #[test]
    fn from_signed_roundtrips_fingerprint_and_verdict() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let cert = setup.certificate_for(p(1)).unwrap();
        let rebuilt = PdCertificate::from_signed(cert.as_signed().clone());
        assert_eq!(rebuilt, cert);
        assert_eq!(rebuilt.fingerprint(), cert.fingerprint());
        assert!(rebuilt.verify(setup.registry()));
        // Forged records survive the round-trip as forged.
        let forged = PdCertificate::forge(p(2), &process_set([9]));
        let forged2 = PdCertificate::from_signed(forged.as_signed().clone());
        assert_eq!(forged2.fingerprint(), forged.fingerprint());
        assert!(!forged2.verify(setup.registry()));
    }

    #[test]
    fn pool_memoizes_verdicts_and_counts_forgeries_once() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let pool = setup.pool();
        let good = setup.shared_certificate_for(p(1)).unwrap();
        let forged = Arc::new(PdCertificate::forge(p(2), &process_set([9])));
        assert_eq!(pool.verdict(good.fingerprint()), None);
        assert!(pool.verify_cert(&good, setup.registry()));
        assert_eq!(pool.verdict(good.fingerprint()), Some(true));
        // Re-verifying hits the memo (same verdict, no recount).
        assert!(pool.verify_cert(&good, setup.registry()));
        for _ in 0..3 {
            assert!(!pool.verify_cert(&forged, setup.registry()));
        }
        assert_eq!(pool.forged_records(), 1);
        // A second distinct forgery counts separately.
        let other = Arc::new(PdCertificate::forge(p(1), &process_set([4, 5])));
        assert!(!pool.verify_cert(&other, setup.registry()));
        assert_eq!(pool.forged_records(), 2);
    }

    #[test]
    fn pool_batch_verify_matches_serial() {
        let g = DiGraph::from_edges([(1, 2), (2, 3), (3, 1)]);
        let setup = SystemSetup::new(&g);
        let pool = setup.pool();
        let mut bundle: Vec<Arc<PdCertificate>> = setup
            .processes()
            .into_iter()
            .map(|v| setup.shared_certificate_for(v).unwrap())
            .collect();
        bundle.push(Arc::new(PdCertificate::forge(p(3), &process_set([7]))));
        // Duplicate entry in the same bundle: still one verdict, counted once.
        bundle.push(bundle[3].clone());
        let verdicts = pool.verify_batch(&bundle, setup.registry());
        assert_eq!(verdicts, vec![true, true, true, false, false]);
        assert_eq!(pool.forged_records(), 1);
        // Warm run: all memo hits, identical verdicts.
        assert_eq!(pool.verify_batch(&bundle, setup.registry()), verdicts);
        assert_eq!(pool.forged_records(), 1);
    }

    #[test]
    fn pool_counts_memo_hits_and_misses() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let pool = setup.pool();
        let a = setup.shared_certificate_for(p(1)).unwrap();
        let b = setup.shared_certificate_for(p(2)).unwrap();
        assert_eq!((pool.memo_hits(), pool.memo_misses()), (0, 0));
        // Cold single verify: one miss; warm re-verify: one hit.
        assert!(pool.verify_cert(&a, setup.registry()));
        assert!(pool.verify_cert(&a, setup.registry()));
        assert_eq!((pool.memo_hits(), pool.memo_misses()), (1, 1));
        // Batch with one warm and one cold entry splits accordingly.
        let bundle = vec![a.clone(), b.clone()];
        assert_eq!(pool.verify_batch(&bundle, setup.registry()), [true, true]);
        assert_eq!((pool.memo_hits(), pool.memo_misses()), (2, 2));
        // Fully warm batch is all hits.
        assert_eq!(pool.verify_batch(&bundle, setup.registry()), [true, true]);
        assert_eq!((pool.memo_hits(), pool.memo_misses()), (4, 2));
    }

    #[test]
    fn concurrent_verifies_count_each_forgery_once() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let forged = Arc::new(PdCertificate::forge(p(1), &process_set([8])));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let setup = &setup;
                let forged = &forged;
                s.spawn(move || {
                    for _ in 0..16 {
                        assert!(!setup.pool().verify_cert(forged, setup.registry()));
                    }
                });
            }
        });
        assert_eq!(setup.pool().forged_records(), 1);
    }

    #[test]
    fn pool_interns_by_fingerprint() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let shared1 = setup.shared_certificate_for(p(1)).unwrap();
        let shared2 = setup.shared_certificate_for(p(1)).unwrap();
        assert!(Arc::ptr_eq(&shared1, &shared2));
        assert_eq!(setup.pool().len(), 1);
        assert_eq!(
            setup.pool().get(shared1.fingerprint()).as_deref(),
            Some(shared1.as_ref())
        );
        assert!(setup.pool().get(0).is_none());
        // Clones of the setup share the pool.
        let clone = setup.clone();
        let shared3 = clone.shared_certificate_for(p(1)).unwrap();
        assert!(Arc::ptr_eq(&shared1, &shared3));
        let _ = clone.shared_certificate_for(p(2)).unwrap();
        assert_eq!(setup.pool().len(), 2);
        assert!(!setup.pool().is_empty());
    }
}
