//! Participant detectors: the initial-knowledge oracle of the CUP model.
//!
//! Section II-C: each process `i` obtains its initial knowledge from a
//! local oracle `PDᵢ` returning a fixed subset of processes; the oracles
//! collectively define the knowledge connectivity graph. This crate
//! provides the oracle ([`PdOracle`]), signed PD certificates bridging the
//! crypto substrate to [`cupft_graph`] types ([`PdCertificate`]), and the
//! [`SystemSetup`] helper wiring a whole simulated system (keys + oracles)
//! from a knowledge connectivity graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use cupft_crypto::{KeyRegistry, SignedPd, SigningKey};
use cupft_graph::{DiGraph, ProcessId, ProcessSet};

/// The participant detector oracle: a static map from process to its
/// initial knowledge, derived from a knowledge connectivity graph.
///
/// The oracle always returns the same set for the same process (the PD of
/// the CUP model is static; knowledge growth happens in the Discovery
/// protocol's state, not in the oracle).
///
/// # Example
///
/// ```
/// use cupft_detector::PdOracle;
/// use cupft_graph::{DiGraph, ProcessId, process_set};
///
/// let g = DiGraph::from_edges([(1, 2), (1, 3), (2, 3)]);
/// let oracle = PdOracle::from_graph(&g);
/// assert_eq!(oracle.pd_of(ProcessId::new(1)), process_set([2, 3]));
/// assert!(oracle.pd_of(ProcessId::new(9)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PdOracle {
    pds: BTreeMap<ProcessId, ProcessSet>,
}

impl PdOracle {
    /// Derives the oracle from a knowledge connectivity graph: `PDᵢ` is the
    /// out-neighborhood of `i`.
    pub fn from_graph(graph: &DiGraph) -> Self {
        PdOracle {
            pds: graph
                .vertices()
                .map(|v| (v, graph.out_neighbors(v)))
                .collect(),
        }
    }

    /// The PD of `id` (empty for unknown processes).
    pub fn pd_of(&self, id: ProcessId) -> ProcessSet {
        self.pds.get(&id).cloned().unwrap_or_default()
    }

    /// All processes known to the oracle.
    pub fn processes(&self) -> ProcessSet {
        self.pds.keys().copied().collect()
    }
}

/// A signature-carrying PD record in graph-typed form.
///
/// Correct processes produce these once at startup (Algorithm 1 line 1
/// signs `⟨i, PDᵢ⟩ᵢ`); Byzantine processes may fabricate records for
/// *their own* ID with arbitrary contents, but records fabricated for
/// other IDs fail verification.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PdCertificate {
    inner: SignedPd,
}

impl PdCertificate {
    /// Signs `pd` as `key`'s participant detector output.
    pub fn sign(key: &SigningKey, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate {
            inner: SignedPd::sign(key, raw),
        }
    }

    /// Fabricates an unverifiable record claiming to be `author`'s PD —
    /// the attack Algorithm 1's signatures exist to prevent.
    pub fn forge(author: ProcessId, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate {
            inner: SignedPd::forge(author.raw(), raw),
        }
    }

    /// The claimed author.
    pub fn author(&self) -> ProcessId {
        ProcessId::new(self.inner.author())
    }

    /// The claimed PD.
    pub fn pd(&self) -> ProcessSet {
        self.inner.pd().iter().map(|&r| ProcessId::new(r)).collect()
    }

    /// Verifies the signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        self.inner.verify(registry)
    }
}

/// Wires a complete simulated system from a knowledge connectivity graph:
/// one registered key per vertex plus the PD oracle.
///
/// # Example
///
/// ```
/// use cupft_detector::SystemSetup;
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let setup = SystemSetup::new(&g);
/// let key = setup.key_of(ProcessId::new(1)).unwrap();
/// let cert = setup.certificate_for(ProcessId::new(1)).unwrap();
/// assert!(cert.verify(setup.registry()));
/// assert_eq!(key.id(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSetup {
    registry: KeyRegistry,
    keys: BTreeMap<ProcessId, SigningKey>,
    oracle: PdOracle,
}

impl SystemSetup {
    /// Registers every vertex of `graph` and derives the PD oracle.
    pub fn new(graph: &DiGraph) -> Self {
        let mut registry = KeyRegistry::new();
        let keys = graph
            .vertices()
            .map(|v| (v, registry.register(v.raw())))
            .collect();
        SystemSetup {
            registry,
            keys,
            oracle: PdOracle::from_graph(graph),
        }
    }

    /// The shared key registry (simulated PKI).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// The PD oracle.
    pub fn oracle(&self) -> &PdOracle {
        &self.oracle
    }

    /// The signing key of `id`, if registered.
    pub fn key_of(&self, id: ProcessId) -> Option<&SigningKey> {
        self.keys.get(&id)
    }

    /// Convenience: `id`'s correctly-signed PD certificate.
    pub fn certificate_for(&self, id: ProcessId) -> Option<PdCertificate> {
        let key = self.keys.get(&id)?;
        Some(PdCertificate::sign(key, &self.oracle.pd_of(id)))
    }

    /// All process IDs in the system.
    pub fn processes(&self) -> ProcessSet {
        self.keys.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn oracle_matches_graph() {
        let g = DiGraph::from_edges([(1, 2), (1, 3), (3, 1)]);
        let oracle = PdOracle::from_graph(&g);
        assert_eq!(oracle.pd_of(p(1)), process_set([2, 3]));
        assert_eq!(oracle.pd_of(p(2)), ProcessSet::new());
        assert_eq!(oracle.processes(), process_set([1, 2, 3]));
    }

    #[test]
    fn certificate_roundtrip() {
        let g = DiGraph::from_edges([(1, 2), (1, 3)]);
        let setup = SystemSetup::new(&g);
        let cert = setup.certificate_for(p(1)).unwrap();
        assert_eq!(cert.author(), p(1));
        assert_eq!(cert.pd(), process_set([2, 3]));
        assert!(cert.verify(setup.registry()));
    }

    #[test]
    fn forged_certificate_rejected() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        // Byzantine 2 forges a PD for correct process 1.
        let forged = PdCertificate::forge(p(1), &process_set([9]));
        assert!(!forged.verify(setup.registry()));
    }

    #[test]
    fn byzantine_own_pd_lies_verify() {
        // A Byzantine process may claim ANY pd for itself — that is
        // allowed by the model (signatures only pin authorship).
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let key2 = setup.key_of(p(2)).unwrap();
        let lying = PdCertificate::sign(key2, &process_set([1, 42, 99]));
        assert!(lying.verify(setup.registry()));
        assert_eq!(lying.pd(), process_set([1, 42, 99]));
    }

    #[test]
    fn setup_covers_all_vertices() {
        let g = DiGraph::from_edges([(1, 2), (3, 4), (4, 3), (2, 3)]);
        let setup = SystemSetup::new(&g);
        assert_eq!(setup.processes(), process_set([1, 2, 3, 4]));
        for v in setup.processes() {
            assert!(setup.key_of(v).is_some());
            assert!(setup.certificate_for(v).unwrap().verify(setup.registry()));
        }
    }

    #[test]
    fn missing_process_has_no_key() {
        let g = DiGraph::from_edges([(1, 2)]);
        let setup = SystemSetup::new(&g);
        assert!(setup.key_of(p(9)).is_none());
        assert!(setup.certificate_for(p(9)).is_none());
    }
}
