//! Participant detectors: the initial-knowledge oracle of the CUP model.
//!
//! Section II-C: each process `i` obtains its initial knowledge from a
//! local oracle `PDᵢ` returning a fixed subset of processes; the oracles
//! collectively define the knowledge connectivity graph. This crate
//! provides the oracle ([`PdOracle`]), signed PD certificates bridging the
//! crypto substrate to [`cupft_graph`] types ([`PdCertificate`]), and the
//! [`SystemSetup`] helper wiring a whole simulated system (keys + oracles)
//! from a knowledge connectivity graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use cupft_crypto::{KeyRegistry, SignedPd, SigningKey};
use cupft_graph::{DiGraph, ProcessId, ProcessSet};

/// The participant detector oracle: a static map from process to its
/// initial knowledge, derived from a knowledge connectivity graph.
///
/// The oracle always returns the same set for the same process (the PD of
/// the CUP model is static; knowledge growth happens in the Discovery
/// protocol's state, not in the oracle).
///
/// # Example
///
/// ```
/// use cupft_detector::PdOracle;
/// use cupft_graph::{DiGraph, ProcessId, process_set};
///
/// let g = DiGraph::from_edges([(1, 2), (1, 3), (2, 3)]);
/// let oracle = PdOracle::from_graph(&g);
/// assert_eq!(oracle.pd_of(ProcessId::new(1)), process_set([2, 3]));
/// assert!(oracle.pd_of(ProcessId::new(9)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PdOracle {
    pds: BTreeMap<ProcessId, ProcessSet>,
}

impl PdOracle {
    /// Derives the oracle from a knowledge connectivity graph: `PDᵢ` is the
    /// out-neighborhood of `i`.
    pub fn from_graph(graph: &DiGraph) -> Self {
        PdOracle {
            pds: graph
                .vertices()
                .map(|v| (v, graph.out_neighbors(v)))
                .collect(),
        }
    }

    /// The PD of `id` (empty for unknown processes).
    pub fn pd_of(&self, id: ProcessId) -> ProcessSet {
        self.pds.get(&id).cloned().unwrap_or_default()
    }

    /// All processes known to the oracle.
    pub fn processes(&self) -> ProcessSet {
        self.pds.keys().copied().collect()
    }
}

/// A signature-carrying PD record in graph-typed form.
///
/// Correct processes produce these once at startup (Algorithm 1 line 1
/// signs `⟨i, PDᵢ⟩ᵢ`); Byzantine processes may fabricate records for
/// *their own* ID with arbitrary contents, but records fabricated for
/// other IDs fail verification.
///
/// Every certificate carries a precomputed 128-bit [fingerprint] of its
/// exact contents (author, PD, signature bytes), so equality has a
/// constant-time fast path, `Hash` is O(1), and the discovery layer can
/// dedup/memoize by fingerprint instead of re-hashing or re-verifying
/// whole records.
///
/// [fingerprint]: Self::fingerprint
#[derive(Debug, Clone)]
pub struct PdCertificate {
    inner: SignedPd,
    fp: u128,
}

/// SHA-256 over the canonical record bytes, truncated to 128 bits.
///
/// The fingerprint must be *collision-resistant against adversarial
/// inputs*, not merely well-mixed: the discovery layer memoizes signature
/// verification by fingerprint, so a Byzantine process able to craft a
/// forged record colliding with an already-verified one would smuggle an
/// unverified certificate past the HMAC check (and a collision with a
/// rejected one would censor a valid record). A domain-separated SHA-256
/// closes that door; the cost is paid once per certificate construction,
/// never on the absorb hot path.
fn cert_fingerprint(inner: &SignedPd) -> u128 {
    let mut bytes = Vec::with_capacity(44 + inner.pd().len() * 8);
    bytes.extend_from_slice(b"cupft-cert-fp-v1");
    bytes.extend_from_slice(&inner.author().to_be_bytes());
    bytes.extend_from_slice(&(inner.pd().len() as u64).to_be_bytes());
    for p in inner.pd() {
        bytes.extend_from_slice(&p.to_be_bytes());
    }
    bytes.extend_from_slice(&inner.signature().signer().to_be_bytes());
    bytes.extend_from_slice(inner.signature().tag());
    let digest = cupft_crypto::sha256::digest(&bytes);
    u128::from_be_bytes(digest[..16].try_into().expect("digest is 32 bytes"))
}

impl PdCertificate {
    fn from_inner(inner: SignedPd) -> Self {
        let fp = cert_fingerprint(&inner);
        PdCertificate { inner, fp }
    }

    /// Signs `pd` as `key`'s participant detector output.
    pub fn sign(key: &SigningKey, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate::from_inner(SignedPd::sign(key, raw))
    }

    /// Fabricates an unverifiable record claiming to be `author`'s PD —
    /// the attack Algorithm 1's signatures exist to prevent.
    pub fn forge(author: ProcessId, pd: &ProcessSet) -> Self {
        let raw: Vec<u64> = pd.iter().map(|p| p.raw()).collect();
        PdCertificate::from_inner(SignedPd::forge(author.raw(), raw))
    }

    /// The claimed author.
    pub fn author(&self) -> ProcessId {
        ProcessId::new(self.inner.author())
    }

    /// The claimed PD.
    pub fn pd(&self) -> ProcessSet {
        self.inner.pd().iter().map(|&r| ProcessId::new(r)).collect()
    }

    /// The precomputed content fingerprint: a pure function of author, PD,
    /// and signature bytes (truncated domain-separated SHA-256, so
    /// collisions are infeasible even for adversarially crafted records —
    /// the property the discovery layer's verification memoization relies
    /// on). Equality remains exact — the fingerprint only *fast-rejects*.
    pub fn fingerprint(&self) -> u128 {
        self.fp
    }

    /// Verifies the signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        self.inner.verify(registry)
    }
}

impl PartialEq for PdCertificate {
    fn eq(&self, other: &Self) -> bool {
        // fp is a pure function of inner: unequal fps ⇒ unequal records.
        self.fp == other.fp && self.inner == other.inner
    }
}
impl Eq for PdCertificate {}

impl PartialOrd for PdCertificate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PdCertificate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

/// O(1): hashes the cached fingerprint only.
impl Hash for PdCertificate {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u128(self.fp);
    }
}

/// A shared, thread-safe interning pool of [`PdCertificate`]s keyed by
/// fingerprint.
///
/// The delta-gossip discovery path passes certificates around as
/// `Arc<PdCertificate>` so that cloning a `SETPDS` message is
/// pointer-bumping; the pool is where those `Arc`s are born. Interning the
/// same record twice returns the *same* allocation, so a simulation with
/// `n` processes holds each certificate once, not `O(n)` times.
///
/// # Example
///
/// ```
/// use cupft_detector::{CertPool, PdCertificate, SystemSetup};
/// use cupft_graph::{DiGraph, ProcessId};
/// use std::sync::Arc;
///
/// let setup = SystemSetup::new(&DiGraph::from_edges([(1, 2), (2, 1)]));
/// let pool = CertPool::new();
/// let a = pool.intern(setup.certificate_for(ProcessId::new(1)).unwrap());
/// let b = pool.intern(setup.certificate_for(ProcessId::new(1)).unwrap());
/// assert!(Arc::ptr_eq(&a, &b));
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CertPool {
    by_fp: Mutex<HashMap<u128, Arc<PdCertificate>>>,
}

impl CertPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        CertPool::default()
    }

    /// Returns the pooled `Arc` for `cert`, inserting it on first sight.
    pub fn intern(&self, cert: PdCertificate) -> Arc<PdCertificate> {
        let mut pool = self.by_fp.lock().expect("cert pool poisoned");
        pool.entry(cert.fingerprint())
            .or_insert_with(|| Arc::new(cert))
            .clone()
    }

    /// Looks up a pooled certificate by fingerprint.
    pub fn get(&self, fingerprint: u128) -> Option<Arc<PdCertificate>> {
        self.by_fp
            .lock()
            .expect("cert pool poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Number of distinct certificates interned.
    pub fn len(&self) -> usize {
        self.by_fp.lock().expect("cert pool poisoned").len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wires a complete simulated system from a knowledge connectivity graph:
/// one registered key per vertex plus the PD oracle.
///
/// # Example
///
/// ```
/// use cupft_detector::SystemSetup;
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let setup = SystemSetup::new(&g);
/// let key = setup.key_of(ProcessId::new(1)).unwrap();
/// let cert = setup.certificate_for(ProcessId::new(1)).unwrap();
/// assert!(cert.verify(setup.registry()));
/// assert_eq!(key.id(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSetup {
    registry: KeyRegistry,
    keys: BTreeMap<ProcessId, SigningKey>,
    oracle: PdOracle,
    pool: Arc<CertPool>,
}

impl SystemSetup {
    /// Registers every vertex of `graph` and derives the PD oracle.
    pub fn new(graph: &DiGraph) -> Self {
        let mut registry = KeyRegistry::new();
        let keys = graph
            .vertices()
            .map(|v| (v, registry.register(v.raw())))
            .collect();
        SystemSetup {
            registry,
            keys,
            oracle: PdOracle::from_graph(graph),
            pool: Arc::new(CertPool::new()),
        }
    }

    /// The setup's shared certificate pool (clones share it).
    pub fn pool(&self) -> &Arc<CertPool> {
        &self.pool
    }

    /// The shared key registry (simulated PKI).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// The PD oracle.
    pub fn oracle(&self) -> &PdOracle {
        &self.oracle
    }

    /// The signing key of `id`, if registered.
    pub fn key_of(&self, id: ProcessId) -> Option<&SigningKey> {
        self.keys.get(&id)
    }

    /// Convenience: `id`'s correctly-signed PD certificate.
    pub fn certificate_for(&self, id: ProcessId) -> Option<PdCertificate> {
        let key = self.keys.get(&id)?;
        Some(PdCertificate::sign(key, &self.oracle.pd_of(id)))
    }

    /// Like [`Self::certificate_for`], but interned in the setup's shared
    /// [`CertPool`] — repeated calls return the same allocation.
    pub fn shared_certificate_for(&self, id: ProcessId) -> Option<Arc<PdCertificate>> {
        Some(self.pool.intern(self.certificate_for(id)?))
    }

    /// All process IDs in the system.
    pub fn processes(&self) -> ProcessSet {
        self.keys.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn oracle_matches_graph() {
        let g = DiGraph::from_edges([(1, 2), (1, 3), (3, 1)]);
        let oracle = PdOracle::from_graph(&g);
        assert_eq!(oracle.pd_of(p(1)), process_set([2, 3]));
        assert_eq!(oracle.pd_of(p(2)), ProcessSet::new());
        assert_eq!(oracle.processes(), process_set([1, 2, 3]));
    }

    #[test]
    fn certificate_roundtrip() {
        let g = DiGraph::from_edges([(1, 2), (1, 3)]);
        let setup = SystemSetup::new(&g);
        let cert = setup.certificate_for(p(1)).unwrap();
        assert_eq!(cert.author(), p(1));
        assert_eq!(cert.pd(), process_set([2, 3]));
        assert!(cert.verify(setup.registry()));
    }

    #[test]
    fn forged_certificate_rejected() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        // Byzantine 2 forges a PD for correct process 1.
        let forged = PdCertificate::forge(p(1), &process_set([9]));
        assert!(!forged.verify(setup.registry()));
    }

    #[test]
    fn byzantine_own_pd_lies_verify() {
        // A Byzantine process may claim ANY pd for itself — that is
        // allowed by the model (signatures only pin authorship).
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let key2 = setup.key_of(p(2)).unwrap();
        let lying = PdCertificate::sign(key2, &process_set([1, 42, 99]));
        assert!(lying.verify(setup.registry()));
        assert_eq!(lying.pd(), process_set([1, 42, 99]));
    }

    #[test]
    fn setup_covers_all_vertices() {
        let g = DiGraph::from_edges([(1, 2), (3, 4), (4, 3), (2, 3)]);
        let setup = SystemSetup::new(&g);
        assert_eq!(setup.processes(), process_set([1, 2, 3, 4]));
        for v in setup.processes() {
            assert!(setup.key_of(v).is_some());
            assert!(setup.certificate_for(v).unwrap().verify(setup.registry()));
        }
    }

    #[test]
    fn missing_process_has_no_key() {
        let g = DiGraph::from_edges([(1, 2)]);
        let setup = SystemSetup::new(&g);
        assert!(setup.key_of(p(9)).is_none());
        assert!(setup.certificate_for(p(9)).is_none());
        assert!(setup.shared_certificate_for(p(9)).is_none());
    }

    #[test]
    fn fingerprint_tracks_exact_contents() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let a = setup.certificate_for(p(1)).unwrap();
        let b = setup.certificate_for(p(1)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        // Different author ⇒ different fingerprint.
        let c = setup.certificate_for(p(2)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same author + PD but forged signature ⇒ different fingerprint
        // (the signature bytes are part of the record's identity).
        let forged = PdCertificate::forge(p(1), &a.pd());
        assert_ne!(a.fingerprint(), forged.fingerprint());
        assert_ne!(a, forged);
    }

    #[test]
    fn pool_interns_by_fingerprint() {
        let g = DiGraph::from_edges([(1, 2), (2, 1)]);
        let setup = SystemSetup::new(&g);
        let shared1 = setup.shared_certificate_for(p(1)).unwrap();
        let shared2 = setup.shared_certificate_for(p(1)).unwrap();
        assert!(Arc::ptr_eq(&shared1, &shared2));
        assert_eq!(setup.pool().len(), 1);
        assert_eq!(
            setup.pool().get(shared1.fingerprint()).as_deref(),
            Some(shared1.as_ref())
        );
        assert!(setup.pool().get(0).is_none());
        // Clones of the setup share the pool.
        let clone = setup.clone();
        let shared3 = clone.shared_certificate_for(p(1)).unwrap();
        assert!(Arc::ptr_eq(&shared1, &shared3));
        let _ = clone.shared_certificate_for(p(2)).unwrap();
        assert_eq!(setup.pool().len(), 2);
        assert!(!setup.pool().is_empty());
    }
}
