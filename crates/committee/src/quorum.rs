//! Committee membership and sink quorums.

use cupft_graph::{ProcessId, ProcessSet};

/// A fixed consensus committee: the discovered sink/core members plus the
/// fault threshold the quorums must tolerate.
///
/// # Example
///
/// ```
/// use cupft_committee::Committee;
/// use cupft_graph::process_set;
///
/// // A minimal sink: 2f+1 correct members + f Byzantine, f = 1.
/// let c = Committee::new(process_set([1, 2, 3, 4]), 1);
/// assert_eq!(c.quorum_size(), 3); // ceil((4 + 1 + 1) / 2)
/// assert_eq!(c.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Committee {
    members: Vec<ProcessId>,
    fault_threshold: usize,
}

impl Committee {
    /// Creates a committee from its member set and fault threshold.
    ///
    /// # Panics
    ///
    /// Panics if the committee is empty.
    pub fn new(members: ProcessSet, fault_threshold: usize) -> Self {
        assert!(!members.is_empty(), "committee cannot be empty");
        Committee {
            members: members.into_iter().collect(),
            fault_threshold,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the committee is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The fault threshold `f` the quorums tolerate.
    pub fn fault_threshold(&self) -> usize {
        self.fault_threshold
    }

    /// The sink quorum size `⌈(|S| + f + 1) / 2⌉` of \[11\].
    pub fn quorum_size(&self) -> usize {
        (self.len() + self.fault_threshold + 1).div_ceil(2)
    }

    /// The decision-learning threshold of Algorithm 3 line 7:
    /// `⌈(|S| + 1) / 2⌉` matching answers (≥ f+1, so at least one correct).
    pub fn learning_threshold(&self) -> usize {
        (self.len() + 1).div_ceil(2)
    }

    /// The leader of `view` (round-robin over the sorted member list).
    pub fn leader_of(&self, view: u64) -> ProcessId {
        self.members[(view % self.members.len() as u64) as usize]
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.binary_search(&p).is_ok()
    }

    /// The members in ascending ID order.
    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }

    /// The member set.
    pub fn member_set(&self) -> ProcessSet {
        self.members.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn quorum_sizes_match_paper() {
        // |S| = 4, f = 1 -> q = 3 (PBFT shape n = 3f+1: q = 2f+1)
        assert_eq!(Committee::new(process_set(1..=4), 1).quorum_size(), 3);
        // |S| = 3, f = 1 -> q = ceil(5/2) = 3 (all-correct minimal sink)
        assert_eq!(Committee::new(process_set(1..=3), 1).quorum_size(), 3);
        // |S| = 7, f = 2 -> q = 5
        assert_eq!(Committee::new(process_set(1..=7), 2).quorum_size(), 5);
    }

    #[test]
    fn quorums_intersect_in_correct_process() {
        // 2q - |S| >= f + 1 for all committee shapes the model allows.
        for f in 0..4usize {
            for extra in 0..=f {
                let n = 2 * f + 1 + extra; // correct sink + some Byzantine
                let c = Committee::new(process_set(1..=(n as u64)), f);
                let q = c.quorum_size();
                assert!(2 * q > n + f, "f={f} n={n}: quorums must intersect in f+1");
            }
        }
    }

    #[test]
    fn learning_threshold_exceeds_f() {
        for f in 0..4usize {
            let n = 2 * f + 1;
            let c = Committee::new(process_set(1..=(n as u64)), f);
            assert!(c.learning_threshold() > f);
        }
    }

    #[test]
    fn leader_rotation() {
        let c = Committee::new(process_set([5, 2, 9]), 1);
        assert_eq!(c.leader_of(0), p(2));
        assert_eq!(c.leader_of(1), p(5));
        assert_eq!(c.leader_of(2), p(9));
        assert_eq!(c.leader_of(3), p(2));
    }

    #[test]
    fn membership() {
        let c = Committee::new(process_set([1, 3]), 0);
        assert!(c.contains(p(1)));
        assert!(!c.contains(p(2)));
        assert_eq!(c.member_set(), process_set([1, 3]));
    }

    #[test]
    #[should_panic(expected = "committee cannot be empty")]
    fn empty_committee_panics() {
        Committee::new(ProcessSet::new(), 1);
    }
}
