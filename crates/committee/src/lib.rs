//! Committee consensus: the "traditional consensus protocol (e.g., PBFT)"
//! that Algorithm 3 runs among the sink/core members.
//!
//! A signed, single-shot, leader-based three-phase protocol (pre-prepare /
//! prepare / commit) with rotating-leader view changes, parameterized by
//! the *sink quorums* of Vassantlal et al. \[11\]: with committee `S` and
//! fault threshold `f`, every quorum has
//! `q = ⌈(|S| + f + 1) / 2⌉` members, so any two quorums intersect in at
//! least `f + 1` processes — at least one correct — which is what the sink
//! composition (`≥ 2f+1` correct, `≤ f` Byzantine) supports. The classical
//! `n ≥ 3f+1` shape is the special case `|S| = 3f+1`.
//!
//! The protocol satisfies, under partial synchrony and the sink
//! composition guarantee:
//!
//! * **Validity** — a decided value was proposed by some member (decisions
//!   carry quorum certificates rooted in a leader proposal);
//! * **Agreement** — quorum intersection makes conflicting commit
//!   certificates impossible;
//! * **Termination** — doubling view timeouts rotate the leader until a
//!   correct leader runs after GST;
//! * **Integrity** — a replica decides at most once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod msgs;
mod quorum;
mod replica;

pub use msgs::{CommitteeMsg, PreparedCert, Value, ViewChangeRecord};
pub use quorum::Committee;
pub use replica::{
    view_of_timer, view_timer_kind, Effects, Replica, ReplicaConfig, VIEW_TIMER_BASE,
};
