//! Committee protocol messages and their signed canonical encodings.

use bytes::Bytes;
use cupft_crypto::sha256::{digest, Digest, DIGEST_LEN};
use cupft_crypto::{KeyRegistry, SignedValue, SigningKey};
use cupft_graph::ProcessId;
use cupft_net::Labeled;
use cupft_wire::{Decode, Encode, Reader, WireError};

use crate::quorum::Committee;

/// The value type the committee agrees on.
pub type Value = Bytes;

/// Signing domains (domain separation prevents cross-phase replay).
/// Shared with [`cupft_crypto::domains`] so the wire codec can intern
/// decoded domains back onto the same statics.
const D_PREPREPARE: &str = cupft_crypto::domains::PREPREPARE;
const D_PREPARE: &str = cupft_crypto::domains::PREPARE;
const D_COMMIT: &str = cupft_crypto::domains::COMMIT;
const D_VIEWCHANGE: &str = cupft_crypto::domains::VIEWCHANGE;

fn encode_view_value(view: u64, value: &Value) -> Bytes {
    let mut out = Vec::with_capacity(8 + value.len());
    out.extend_from_slice(&view.to_be_bytes());
    out.extend_from_slice(value);
    Bytes::from(out)
}

fn encode_view_digest(view: u64, digest: &Digest) -> Bytes {
    let mut out = Vec::with_capacity(8 + 32);
    out.extend_from_slice(&view.to_be_bytes());
    out.extend_from_slice(digest);
    Bytes::from(out)
}

fn encode_view_change(new_view: u64, prepared: Option<(u64, &Digest)>) -> Bytes {
    let mut out = Vec::with_capacity(8 + 1 + 8 + 32);
    out.extend_from_slice(&new_view.to_be_bytes());
    match prepared {
        Some((view, digest)) => {
            out.push(1);
            out.extend_from_slice(&view.to_be_bytes());
            out.extend_from_slice(digest);
        }
        None => out.push(0),
    }
    Bytes::from(out)
}

/// A *prepared certificate*: proof that some quorum prepared `value` in
/// `view`. Carried by view-change messages so a new leader cannot revert a
/// possibly-decided value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedCert {
    /// The view in which the quorum prepared.
    pub view: u64,
    /// The prepared value.
    pub value: Value,
    /// Quorum of prepare signatures over `(view, digest(value))`.
    pub prepares: Vec<SignedValue>,
}

impl PreparedCert {
    /// Verifies the certificate: all prepares are valid signatures by
    /// distinct committee members over this view/digest, and there are at
    /// least `quorum_size` of them.
    pub fn verify(&self, registry: &KeyRegistry, committee: &Committee) -> bool {
        let d = digest(&self.value);
        let expected = encode_view_digest(self.view, &d);
        let mut signers = std::collections::BTreeSet::new();
        for p in &self.prepares {
            if !p.verify(registry, D_PREPARE) || p.payload() != &expected {
                return false;
            }
            let signer = ProcessId::new(p.signer());
            if !committee.contains(signer) || !signers.insert(signer) {
                return false;
            }
        }
        signers.len() >= committee.quorum_size()
    }
}

/// A signed view-change vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeRecord {
    /// The view the sender wants to enter.
    pub new_view: u64,
    /// The sender's highest prepared certificate, if any.
    pub prepared: Option<PreparedCert>,
    /// Signature over `(new_view, prepared summary)`.
    pub signed: SignedValue,
}

impl ViewChangeRecord {
    /// Signs a view-change vote.
    pub fn sign(key: &SigningKey, new_view: u64, prepared: Option<PreparedCert>) -> Self {
        let summary = prepared.as_ref().map(|c| (c.view, digest(&c.value)));
        let payload = encode_view_change(new_view, summary.as_ref().map(|(v, d)| (*v, d)));
        ViewChangeRecord {
            new_view,
            prepared,
            signed: SignedValue::sign(key, D_VIEWCHANGE, payload),
        }
    }

    /// The voting process.
    pub fn signer(&self) -> ProcessId {
        ProcessId::new(self.signed.signer())
    }

    /// Verifies signature, payload consistency, committee membership, and
    /// the embedded prepared certificate (when present).
    pub fn verify(&self, registry: &KeyRegistry, committee: &Committee) -> bool {
        if !committee.contains(self.signer()) {
            return false;
        }
        let summary = self.prepared.as_ref().map(|c| (c.view, digest(&c.value)));
        let payload = encode_view_change(self.new_view, summary.as_ref().map(|(v, d)| (*v, d)));
        if self.signed.payload() != &payload || !self.signed.verify(registry, D_VIEWCHANGE) {
            return false;
        }
        match &self.prepared {
            Some(cert) => cert.verify(registry, committee),
            None => true,
        }
    }
}

/// Committee consensus messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitteeMsg {
    /// Leader proposal for a view. For views > 0 the proposal must carry a
    /// quorum of view-change votes justifying the value choice.
    PrePrepare {
        /// Proposal view.
        view: u64,
        /// Proposed value.
        value: Value,
        /// Leader signature over `(view, value)`.
        signed: SignedValue,
        /// View-change justification (empty for view 0).
        justification: Vec<ViewChangeRecord>,
    },
    /// Prepare vote over `(view, digest)`.
    Prepare {
        /// Vote view.
        view: u64,
        /// Digest of the pre-prepared value.
        digest: Digest,
        /// Voter signature.
        signed: SignedValue,
    },
    /// Commit vote over `(view, digest)`.
    Commit {
        /// Vote view.
        view: u64,
        /// Digest of the prepared value.
        digest: Digest,
        /// Voter signature.
        signed: SignedValue,
    },
    /// View-change vote.
    ViewChange(ViewChangeRecord),
}

impl CommitteeMsg {
    /// Builds a signed pre-prepare.
    pub fn pre_prepare(
        key: &SigningKey,
        view: u64,
        value: Value,
        justification: Vec<ViewChangeRecord>,
    ) -> Self {
        let signed = SignedValue::sign(key, D_PREPREPARE, encode_view_value(view, &value));
        CommitteeMsg::PrePrepare {
            view,
            value,
            signed,
            justification,
        }
    }

    /// Builds a signed prepare vote.
    pub fn prepare(key: &SigningKey, view: u64, d: Digest) -> Self {
        let signed = SignedValue::sign(key, D_PREPARE, encode_view_digest(view, &d));
        CommitteeMsg::Prepare {
            view,
            digest: d,
            signed,
        }
    }

    /// Builds a signed commit vote.
    pub fn commit(key: &SigningKey, view: u64, d: Digest) -> Self {
        let signed = SignedValue::sign(key, D_COMMIT, encode_view_digest(view, &d));
        CommitteeMsg::Commit {
            view,
            digest: d,
            signed,
        }
    }

    /// Verifies the message's signature and structural consistency
    /// against the registry and committee. (Leader/view semantics are the
    /// replica's job; this checks authenticity.)
    pub fn verify(&self, registry: &KeyRegistry, committee: &Committee) -> bool {
        match self {
            CommitteeMsg::PrePrepare {
                view,
                value,
                signed,
                justification,
            } => {
                let signer = ProcessId::new(signed.signer());
                committee.contains(signer)
                    && signed.payload() == &encode_view_value(*view, value)
                    && signed.verify(registry, D_PREPREPARE)
                    && justification
                        .iter()
                        .all(|vc| vc.verify(registry, committee))
            }
            CommitteeMsg::Prepare {
                view,
                digest,
                signed,
            } => {
                committee.contains(ProcessId::new(signed.signer()))
                    && signed.payload() == &encode_view_digest(*view, digest)
                    && signed.verify(registry, D_PREPARE)
            }
            CommitteeMsg::Commit {
                view,
                digest,
                signed,
            } => {
                committee.contains(ProcessId::new(signed.signer()))
                    && signed.payload() == &encode_view_digest(*view, digest)
                    && signed.verify(registry, D_COMMIT)
            }
            CommitteeMsg::ViewChange(vc) => vc.verify(registry, committee),
        }
    }

    /// The signer of the message.
    pub fn signer(&self) -> ProcessId {
        match self {
            CommitteeMsg::PrePrepare { signed, .. }
            | CommitteeMsg::Prepare { signed, .. }
            | CommitteeMsg::Commit { signed, .. } => ProcessId::new(signed.signer()),
            CommitteeMsg::ViewChange(vc) => vc.signer(),
        }
    }
}

impl Labeled for CommitteeMsg {
    fn label(&self) -> &'static str {
        match self {
            CommitteeMsg::PrePrepare { .. } => "PREPREPARE",
            CommitteeMsg::Prepare { .. } => "PREPARE",
            CommitteeMsg::Commit { .. } => "COMMIT",
            CommitteeMsg::ViewChange(_) => "VIEWCHANGE",
        }
    }
}

fn decode_digest(r: &mut Reader<'_>) -> Result<Digest, WireError> {
    Ok(r.take(DIGEST_LEN)?.try_into().expect("digest length"))
}

impl Encode for PreparedCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.value.encode(out);
        self.prepares.encode(out);
    }
}

impl Decode for PreparedCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PreparedCert {
            view: r.u64()?,
            value: Value::decode(r)?,
            prepares: Vec::decode(r)?,
        })
    }
}

impl Encode for ViewChangeRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.new_view.encode(out);
        self.prepared.encode(out);
        self.signed.encode(out);
    }
}

impl Decode for ViewChangeRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewChangeRecord {
            new_view: r.u64()?,
            prepared: Option::decode(r)?,
            signed: SignedValue::decode(r)?,
        })
    }
}

/// Wire form: `tag:u8` (0 = `PREPREPARE`, 1 = `PREPARE`, 2 = `COMMIT`,
/// 3 = `VIEWCHANGE`) followed by the variant fields; digests travel as
/// raw 32-byte strings. Decoding restores structure only — authenticity
/// is still [`CommitteeMsg::verify`]'s job, exactly as for a locally
/// constructed message.
impl Encode for CommitteeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CommitteeMsg::PrePrepare {
                view,
                value,
                signed,
                justification,
            } => {
                out.push(0);
                view.encode(out);
                value.encode(out);
                signed.encode(out);
                justification.encode(out);
            }
            CommitteeMsg::Prepare {
                view,
                digest,
                signed,
            } => {
                out.push(1);
                view.encode(out);
                out.extend_from_slice(digest);
                signed.encode(out);
            }
            CommitteeMsg::Commit {
                view,
                digest,
                signed,
            } => {
                out.push(2);
                view.encode(out);
                out.extend_from_slice(digest);
                signed.encode(out);
            }
            CommitteeMsg::ViewChange(vc) => {
                out.push(3);
                vc.encode(out);
            }
        }
    }
}

impl Decode for CommitteeMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(CommitteeMsg::PrePrepare {
                view: r.u64()?,
                value: Value::decode(r)?,
                signed: SignedValue::decode(r)?,
                justification: Vec::decode(r)?,
            }),
            1 => Ok(CommitteeMsg::Prepare {
                view: r.u64()?,
                digest: decode_digest(r)?,
                signed: SignedValue::decode(r)?,
            }),
            2 => Ok(CommitteeMsg::Commit {
                view: r.u64()?,
                digest: decode_digest(r)?,
                signed: SignedValue::decode(r)?,
            }),
            3 => Ok(CommitteeMsg::ViewChange(ViewChangeRecord::decode(r)?)),
            tag => Err(WireError::BadTag {
                ty: "CommitteeMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn setup() -> (KeyRegistry, Vec<SigningKey>, Committee) {
        let mut registry = KeyRegistry::new();
        let keys: Vec<SigningKey> = (1..=4).map(|i| registry.register(i)).collect();
        let committee = Committee::new(process_set(1..=4), 1);
        (registry, keys, committee)
    }

    #[test]
    fn preprepare_verifies() {
        let (registry, keys, committee) = setup();
        let msg = CommitteeMsg::pre_prepare(&keys[0], 0, Bytes::from_static(b"v"), vec![]);
        assert!(msg.verify(&registry, &committee));
        assert_eq!(msg.signer(), ProcessId::new(1));
        assert_eq!(msg.label(), "PREPREPARE");
    }

    #[test]
    fn tampered_preprepare_rejected() {
        let (registry, keys, committee) = setup();
        let msg = CommitteeMsg::pre_prepare(&keys[0], 0, Bytes::from_static(b"v"), vec![]);
        if let CommitteeMsg::PrePrepare {
            view,
            signed,
            justification,
            ..
        } = msg
        {
            let tampered = CommitteeMsg::PrePrepare {
                view,
                value: Bytes::from_static(b"EVIL"),
                signed,
                justification,
            };
            assert!(!tampered.verify(&registry, &committee));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn prepare_commit_verify_and_label() {
        let (registry, keys, committee) = setup();
        let d = digest(b"v");
        let prep = CommitteeMsg::prepare(&keys[1], 3, d);
        let comm = CommitteeMsg::commit(&keys[2], 3, d);
        assert!(prep.verify(&registry, &committee));
        assert!(comm.verify(&registry, &committee));
        assert_eq!(prep.label(), "PREPARE");
        assert_eq!(comm.label(), "COMMIT");
    }

    #[test]
    fn prepare_not_replayable_as_commit() {
        let (registry, keys, committee) = setup();
        let d = digest(b"v");
        let prep = CommitteeMsg::prepare(&keys[1], 3, d);
        if let CommitteeMsg::Prepare {
            view,
            digest,
            signed,
        } = prep
        {
            let fake_commit = CommitteeMsg::Commit {
                view,
                digest,
                signed,
            };
            assert!(!fake_commit.verify(&registry, &committee));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn non_member_rejected() {
        let (registry, _keys, committee) = setup();
        let mut reg2 = registry.clone();
        let outsider = reg2.register(99);
        let msg = CommitteeMsg::prepare(&outsider, 0, digest(b"v"));
        assert!(!msg.verify(&reg2, &committee));
    }

    #[test]
    fn prepared_cert_requires_quorum_of_distinct_members() {
        let (registry, keys, committee) = setup();
        let value = Bytes::from_static(b"v");
        let d = digest(&value);
        let make_prepare = |k: &SigningKey| match CommitteeMsg::prepare(k, 2, d) {
            CommitteeMsg::Prepare { signed, .. } => signed,
            _ => unreachable!(),
        };
        // quorum = 3
        let good = PreparedCert {
            view: 2,
            value: value.clone(),
            prepares: vec![
                make_prepare(&keys[0]),
                make_prepare(&keys[1]),
                make_prepare(&keys[2]),
            ],
        };
        assert!(good.verify(&registry, &committee));
        let short = PreparedCert {
            view: 2,
            value: value.clone(),
            prepares: vec![make_prepare(&keys[0]), make_prepare(&keys[1])],
        };
        assert!(!short.verify(&registry, &committee));
        let duplicated = PreparedCert {
            view: 2,
            value,
            prepares: vec![
                make_prepare(&keys[0]),
                make_prepare(&keys[0]),
                make_prepare(&keys[1]),
            ],
        };
        assert!(!duplicated.verify(&registry, &committee));
    }

    #[test]
    fn view_change_roundtrip() {
        let (registry, keys, committee) = setup();
        let vc = ViewChangeRecord::sign(&keys[3], 5, None);
        assert!(vc.verify(&registry, &committee));
        assert_eq!(vc.signer(), ProcessId::new(4));
        let msg = CommitteeMsg::ViewChange(vc);
        assert!(msg.verify(&registry, &committee));
        assert_eq!(msg.label(), "VIEWCHANGE");
    }

    #[test]
    fn view_change_with_bogus_cert_rejected() {
        let (registry, keys, committee) = setup();
        let bogus = PreparedCert {
            view: 1,
            value: Bytes::from_static(b"v"),
            prepares: vec![],
        };
        let vc = ViewChangeRecord::sign(&keys[0], 2, Some(bogus));
        assert!(!vc.verify(&registry, &committee));
    }
}
