//! The replica state machine for single-shot committee consensus.

use std::collections::{BTreeMap, BTreeSet};

use cupft_crypto::sha256::{digest, Digest};
use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_graph::ProcessId;

use crate::msgs::{CommitteeMsg, PreparedCert, Value, ViewChangeRecord};
use crate::quorum::Committee;

/// Base for view-timeout timer kinds: the timer for view `v` has kind
/// `VIEW_TIMER_BASE + v`, so a firing timer identifies which view it
/// belongs to. Without this, timers armed for superseded views would fire
/// as premature timeouts of the current view and drive a perpetual
/// view-change carousel.
pub const VIEW_TIMER_BASE: u64 = 0xC0 << 32;

/// The timer kind for a given view's timeout.
pub fn view_timer_kind(view: u64) -> u64 {
    VIEW_TIMER_BASE + view
}

/// Recovers the view from a view-timeout timer kind, if it is one.
pub fn view_of_timer(kind: u64) -> Option<u64> {
    kind.checked_sub(VIEW_TIMER_BASE)
}

/// Replica tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// View-0 timeout; view `v` waits `base · 2^min(v,8)`.
    pub timeout_base: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig { timeout_base: 400 }
    }
}

/// Effects produced by one replica step: messages to send, a timer to arm,
/// and possibly a decision.
#[derive(Debug, Default)]
pub struct Effects {
    /// Outgoing messages.
    pub msgs: Vec<(ProcessId, CommitteeMsg)>,
    /// Timer to arm: `(kind, delay)`.
    pub timer: Option<(u64, u64)>,
    /// The decided value, the first time the replica decides.
    pub decided: Option<Value>,
}

impl Effects {
    fn broadcast(&mut self, committee: &Committee, msg: CommitteeMsg) {
        for &m in committee.members() {
            self.msgs.push((m, msg.clone()));
        }
    }
}

/// A correct committee member running the signed three-phase protocol.
///
/// The replica is runtime-agnostic: callers feed it messages and timer
/// expirations and apply the returned [`Effects`]. `cupft-core` embeds it
/// in full protocol nodes; the tests here drive it through the simulator.
///
/// # Example
///
/// ```
/// use cupft_committee::{Committee, Replica, ReplicaConfig, Value};
/// use cupft_crypto::KeyRegistry;
/// use cupft_graph::process_set;
///
/// // A singleton committee decides its own proposal immediately after
/// // hearing its own (self-addressed) protocol messages.
/// let mut registry = KeyRegistry::new();
/// let key = registry.register(1);
/// let committee = Committee::new(process_set([1]), 0);
/// let mut replica = Replica::new(
///     key,
///     registry,
///     committee,
///     Value::from_static(b"solo"),
///     ReplicaConfig::default(),
/// );
/// let me = replica.id();
/// let mut inbox: Vec<_> = replica.start().msgs;
/// while let Some((_, msg)) = inbox.pop() {
///     let fx = replica.handle(me, msg);
///     inbox.extend(fx.msgs);
/// }
/// assert_eq!(replica.decision().map(|v| v.as_ref()), Some(&b"solo"[..]));
/// ```
#[derive(Debug)]
pub struct Replica {
    id: ProcessId,
    key: SigningKey,
    registry: KeyRegistry,
    committee: Committee,
    config: ReplicaConfig,
    my_value: Value,

    view: u64,
    /// Leader proposal accepted per view (equivocation guard).
    accepted: BTreeMap<u64, Digest>,
    /// Values learned from valid pre-prepares, for commit-time lookup.
    values: BTreeMap<(u64, Digest), Value>,
    prepares: BTreeMap<(u64, Digest), BTreeMap<ProcessId, CommitteeMsg>>,
    commits: BTreeMap<(u64, Digest), BTreeSet<ProcessId>>,
    sent_prepare: BTreeSet<u64>,
    sent_commit: BTreeSet<u64>,
    sent_view_change: BTreeSet<u64>,
    proposed_in: BTreeSet<u64>,
    view_changes: BTreeMap<u64, BTreeMap<ProcessId, ViewChangeRecord>>,
    prepared_cert: Option<PreparedCert>,
    decided: Option<Value>,
}

impl Replica {
    /// Creates a replica proposing `my_value`.
    ///
    /// # Panics
    ///
    /// Panics if the key's ID is not a committee member.
    pub fn new(
        key: SigningKey,
        registry: KeyRegistry,
        committee: Committee,
        my_value: Value,
        config: ReplicaConfig,
    ) -> Self {
        let id = ProcessId::new(key.id());
        assert!(committee.contains(id), "replica must be a committee member");
        Replica {
            id,
            key,
            registry,
            committee,
            config,
            my_value,
            view: 0,
            accepted: BTreeMap::new(),
            values: BTreeMap::new(),
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            sent_prepare: BTreeSet::new(),
            sent_commit: BTreeSet::new(),
            sent_view_change: BTreeSet::new(),
            proposed_in: BTreeSet::new(),
            view_changes: BTreeMap::new(),
            prepared_cert: None,
            decided: None,
        }
    }

    /// This replica's ID.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The decided value, if any (Integrity: set at most once).
    pub fn decision(&self) -> Option<&Value> {
        self.decided.as_ref()
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The committee this replica serves.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    fn timeout_for(&self, view: u64) -> u64 {
        self.config.timeout_base.saturating_mul(1 << view.min(8))
    }

    /// Begins the protocol: leader of view 0 proposes; everyone arms the
    /// view timer.
    pub fn start(&mut self) -> Effects {
        let mut fx = Effects::default();
        if self.committee.leader_of(0) == self.id {
            let msg = CommitteeMsg::pre_prepare(&self.key, 0, self.my_value.clone(), vec![]);
            fx.broadcast(&self.committee, msg);
            self.proposed_in.insert(0);
        }
        fx.timer = Some((view_timer_kind(0), self.timeout_for(0)));
        fx
    }

    /// Handles one protocol message.
    pub fn handle(&mut self, _from: ProcessId, msg: CommitteeMsg) -> Effects {
        let mut fx = Effects::default();
        if self.decided.is_some() {
            return fx;
        }
        if !msg.verify(&self.registry, &self.committee) {
            return fx;
        }
        let signer = msg.signer();
        match msg {
            CommitteeMsg::PrePrepare {
                view,
                value,
                justification,
                ..
            } => self.on_pre_prepare(view, value, signer, justification, &mut fx),
            prepare @ CommitteeMsg::Prepare { .. } => {
                self.on_prepare(prepare, &mut fx);
            }
            CommitteeMsg::Commit { view, digest, .. } => {
                self.on_commit(view, digest, signer, &mut fx);
            }
            CommitteeMsg::ViewChange(vc) => self.on_view_change(vc, &mut fx),
        }
        fx
    }

    fn on_pre_prepare(
        &mut self,
        view: u64,
        value: Value,
        signer: ProcessId,
        justification: Vec<ViewChangeRecord>,
        fx: &mut Effects,
    ) {
        if signer != self.committee.leader_of(view) {
            return;
        }
        // A proposal for a superseded view carries no voting weight, but
        // its VALUE must still be recorded: commit quorums reference values
        // by digest, and a replica that advanced past the deciding view
        // before the pre-prepare arrived would otherwise hold a full
        // commit certificate it can never resolve (slow-replica catch-up,
        // the role checkpoints play in full PBFT). Recording is safe: a
        // decision still requires a commit quorum over the same digest.
        if view < self.view {
            let d = digest(&value);
            self.values.insert((view, d), value.clone());
            if let Some(ids) = self.commits.get(&(view, d)) {
                if ids.len() >= self.committee.quorum_size() && self.decided.is_none() {
                    self.decided = Some(value.clone());
                    fx.decided = Some(value);
                }
            }
            return;
        }
        // Views > 0 need a quorum of view-change votes and a value choice
        // consistent with the highest prepared certificate among them.
        if view > 0 {
            let mut signers = BTreeSet::new();
            for vc in &justification {
                if vc.new_view == view {
                    signers.insert(vc.signer());
                }
            }
            if signers.len() < self.committee.quorum_size() {
                return;
            }
            if let Some(best) = justification
                .iter()
                .filter(|vc| vc.new_view == view)
                .filter_map(|vc| vc.prepared.as_ref())
                .max_by_key(|cert| cert.view)
            {
                if best.value != value {
                    return;
                }
            }
        }
        let d = digest(&value);
        match self.accepted.get(&view) {
            Some(existing) if *existing != d => return, // equivocation
            Some(_) => return,                          // duplicate
            None => {}
        }
        self.accepted.insert(view, d);
        self.values.insert((view, d), value);
        if view > self.view {
            self.enter_view(view, fx);
        }
        if self.sent_prepare.insert(view) {
            let msg = CommitteeMsg::prepare(&self.key, view, d);
            fx.broadcast(&self.committee, msg);
        }
    }

    fn on_prepare(&mut self, msg: CommitteeMsg, fx: &mut Effects) {
        let (view, d) = match &msg {
            CommitteeMsg::Prepare { view, digest, .. } => (*view, *digest),
            _ => return,
        };
        let signer = msg.signer();
        self.prepares
            .entry((view, d))
            .or_default()
            .insert(signer, msg);
        let count = self.prepares[&(view, d)].len();
        if count >= self.committee.quorum_size() {
            // We are "prepared" for (view, d) if we know the value.
            if let Some(value) = self.values.get(&(view, d)).cloned() {
                let better = self.prepared_cert.as_ref().is_none_or(|c| view > c.view);
                if better {
                    let prepares = self.prepares[&(view, d)]
                        .values()
                        .filter_map(|m| match m {
                            CommitteeMsg::Prepare { signed, .. } => Some(signed.clone()),
                            _ => None,
                        })
                        .collect();
                    self.prepared_cert = Some(PreparedCert {
                        view,
                        value,
                        prepares,
                    });
                }
                if self.sent_commit.insert(view) {
                    let msg = CommitteeMsg::commit(&self.key, view, d);
                    fx.broadcast(&self.committee, msg);
                }
            }
        }
    }

    fn on_commit(&mut self, view: u64, d: Digest, signer: ProcessId, fx: &mut Effects) {
        self.commits.entry((view, d)).or_default().insert(signer);
        let count = self.commits[&(view, d)].len();
        if count >= self.committee.quorum_size() {
            if let Some(value) = self.values.get(&(view, d)) {
                self.decided = Some(value.clone());
                fx.decided = Some(value.clone());
            }
        }
    }

    fn on_view_change(&mut self, vc: ViewChangeRecord, fx: &mut Effects) {
        let nv = vc.new_view;
        if nv <= self.view && self.sent_view_change.contains(&nv) {
            // stale
        }
        self.view_changes
            .entry(nv)
            .or_default()
            .insert(vc.signer(), vc);
        let count = self.view_changes[&nv].len();
        let f = self.committee.fault_threshold();
        // Join a view change once f+1 members demand it (at least one is
        // correct), even if our own timer has not fired.
        if count > f && nv > self.view && !self.sent_view_change.contains(&nv) {
            self.send_view_change(nv, fx);
            self.enter_view(nv, fx);
        }
        // As the new leader, propose once a quorum backs the view.
        if count >= self.committee.quorum_size()
            && self.committee.leader_of(nv) == self.id
            && self.proposed_in.insert(nv)
        {
            let vcs: Vec<ViewChangeRecord> = self.view_changes[&nv].values().cloned().collect();
            let value = vcs
                .iter()
                .filter_map(|vc| vc.prepared.as_ref())
                .max_by_key(|cert| cert.view)
                .map(|cert| cert.value.clone())
                .unwrap_or_else(|| self.my_value.clone());
            if nv > self.view {
                self.enter_view(nv, fx);
            }
            let msg = CommitteeMsg::pre_prepare(&self.key, nv, value, vcs);
            fx.broadcast(&self.committee, msg);
        }
    }

    /// Handles the timeout of `timed_out_view`: if the replica is still
    /// undecided *in that view*, vote to move to the next one. Timeouts of
    /// superseded views are ignored — every `enter_view` arms a fresh
    /// timer for its view, so the current view always has a live timer.
    pub fn on_timeout(&mut self, timed_out_view: u64) -> Effects {
        let mut fx = Effects::default();
        if self.decided.is_some() || timed_out_view != self.view {
            return fx;
        }
        let nv = self.view + 1;
        if !self.sent_view_change.contains(&nv) {
            self.send_view_change(nv, &mut fx);
        }
        self.enter_view(nv, &mut fx);
        fx
    }

    fn send_view_change(&mut self, nv: u64, fx: &mut Effects) {
        self.sent_view_change.insert(nv);
        let vc = ViewChangeRecord::sign(&self.key, nv, self.prepared_cert.clone());
        fx.broadcast(&self.committee, CommitteeMsg::ViewChange(vc));
    }

    fn enter_view(&mut self, view: u64, fx: &mut Effects) {
        if view > self.view {
            self.view = view;
        }
        fx.timer = Some((view_timer_kind(self.view), self.timeout_for(self.view)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cupft_graph::process_set;

    fn make_replicas(n: u64, f: usize) -> (Vec<Replica>, KeyRegistry, Committee) {
        let mut registry = KeyRegistry::new();
        let committee = Committee::new(process_set(1..=n), f);
        let replicas = (1..=n)
            .map(|i| {
                let key = registry.register(i);
                Replica::new(
                    key,
                    registry.clone(),
                    committee.clone(),
                    Bytes::from(format!("value-{i}")),
                    ReplicaConfig::default(),
                )
            })
            .collect();
        (replicas, registry, committee)
    }

    /// Synchronous lock-step delivery loop: applies every effect message
    /// immediately. Good enough for logic tests; timing behavior is tested
    /// through the simulator in cupft-core.
    fn run_lockstep(replicas: &mut [Replica], drop_from: &[u64]) -> Vec<Option<Value>> {
        let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
        for r in replicas.iter_mut() {
            let fx = r.start();
            for (to, m) in fx.msgs {
                queue.push((r.id(), to, m));
            }
        }
        let mut steps = 0;
        while let Some((from, to, msg)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000, "lockstep did not converge");
            if drop_from.contains(&from.raw()) {
                continue;
            }
            let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
                continue;
            };
            let fx = r.handle(from, msg);
            for (to2, m2) in fx.msgs {
                queue.push((r.id(), to2, m2));
            }
        }
        replicas.iter().map(|r| r.decision().cloned()).collect()
    }

    #[test]
    fn four_replicas_decide_leader_value() {
        let (mut replicas, _, _) = make_replicas(4, 1);
        let decisions = run_lockstep(&mut replicas, &[]);
        for d in &decisions {
            assert_eq!(d.as_deref(), Some(&b"value-1"[..]));
        }
    }

    #[test]
    fn three_replicas_f1_all_correct() {
        // minimal sink: 2f+1 = 3 members, all correct; quorum = 3
        let (mut replicas, _, _) = make_replicas(3, 1);
        let decisions = run_lockstep(&mut replicas, &[]);
        for d in &decisions {
            assert_eq!(d.as_deref(), Some(&b"value-1"[..]));
        }
    }

    #[test]
    fn singleton_committee() {
        let (mut replicas, _, _) = make_replicas(1, 0);
        let decisions = run_lockstep(&mut replicas, &[]);
        assert_eq!(decisions[0].as_deref(), Some(&b"value-1"[..]));
    }

    #[test]
    fn silent_follower_does_not_block() {
        // 4 members, f=1, quorum 3: replica 4 silent (messages dropped).
        let (mut replicas, _, _) = make_replicas(4, 1);
        let decisions = run_lockstep(&mut replicas, &[4]);
        for (i, d) in decisions.iter().enumerate() {
            if i == 3 {
                continue; // the silent one may or may not decide
            }
            assert_eq!(d.as_deref(), Some(&b"value-1"[..]), "replica {}", i + 1);
        }
    }

    #[test]
    fn silent_leader_triggers_view_change_and_decision() {
        let (mut replicas, _, _) = make_replicas(4, 1);
        // Leader (1) never sends anything; followers time out.
        // Simulate: start all, drop leader messages, then fire timeouts.
        let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
        for r in replicas.iter_mut() {
            let fx = r.start();
            for (to, m) in fx.msgs {
                if r.id().raw() != 1 {
                    queue.push((r.id(), to, m));
                }
            }
        }
        // all followers time out view 0
        for r in replicas.iter_mut() {
            if r.id().raw() == 1 {
                continue;
            }
            let fx = r.on_timeout(r.view());
            for (to, m) in fx.msgs {
                queue.push((r.id(), to, m));
            }
        }
        let mut steps = 0;
        while let Some((from, to, msg)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000);
            if from.raw() == 1 {
                continue;
            }
            let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
                continue;
            };
            let fx = r.handle(from, msg);
            for (to2, m2) in fx.msgs {
                queue.push((r.id(), to2, m2));
            }
        }
        // replica 2 is leader of view 1; followers 2,3,4 decide value-2
        for r in &replicas {
            if r.id().raw() == 1 {
                continue;
            }
            assert_eq!(
                r.decision().map(|v| v.as_ref()),
                Some(&b"value-2"[..]),
                "replica {} must decide in view 1",
                r.id()
            );
        }
    }

    #[test]
    fn equivocating_leader_cannot_split_decision() {
        // Leader 1 sends value A to replicas 2,3 and value B to 4 (f=1,
        // n=4, quorum 3): no quorum forms for either in view 0; after view
        // change all correct decide the same value.
        let (mut replicas, registry, committee) = make_replicas(4, 1);
        let mut fake_registry = registry.clone();
        let leader_key = fake_registry.register(1);
        let a = CommitteeMsg::pre_prepare(&leader_key, 0, Bytes::from_static(b"A"), vec![]);
        let b = CommitteeMsg::pre_prepare(&leader_key, 0, Bytes::from_static(b"B"), vec![]);
        let _ = committee;

        let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
        for r in replicas.iter_mut() {
            let _ = r.start(); // discard leader 1's honest proposal
        }
        queue.push((ProcessId::new(1), ProcessId::new(2), a.clone()));
        queue.push((ProcessId::new(1), ProcessId::new(3), a));
        queue.push((ProcessId::new(1), ProcessId::new(4), b));

        let mut steps = 0;
        loop {
            while let Some((from, to, msg)) = queue.pop() {
                steps += 1;
                assert!(steps < 200_000);
                if from.raw() == 1 {
                    if let Some(r) = replicas.iter_mut().find(|r| r.id() == to) {
                        let fx = r.handle(from, msg);
                        for (to2, m2) in fx.msgs {
                            queue.push((r.id(), to2, m2));
                        }
                    }
                    continue;
                }
                let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
                    continue;
                };
                let fx = r.handle(from, msg);
                for (to2, m2) in fx.msgs {
                    queue.push((r.id(), to2, m2));
                }
            }
            // nobody can progress in view 0: fire timeouts on correct
            let undecided: Vec<u64> = replicas
                .iter()
                .filter(|r| r.id().raw() != 1 && r.decision().is_none())
                .map(|r| r.id().raw())
                .collect();
            if undecided.is_empty() {
                break;
            }
            let mut produced = false;
            for r in replicas.iter_mut() {
                if r.id().raw() == 1 || r.decision().is_some() {
                    continue;
                }
                let fx = r.on_timeout(r.view());
                for (to, m) in fx.msgs {
                    queue.push((r.id(), to, m));
                    produced = true;
                }
            }
            assert!(produced, "no progress possible: {undecided:?}");
        }

        let decisions: BTreeSet<Vec<u8>> = replicas
            .iter()
            .filter(|r| r.id().raw() != 1)
            .filter_map(|r| r.decision().map(|v| v.to_vec()))
            .collect();
        assert_eq!(decisions.len(), 1, "agreement violated: {decisions:?}");
    }

    #[test]
    fn decides_at_most_once() {
        let (mut replicas, _, _) = make_replicas(4, 1);
        let _ = run_lockstep(&mut replicas, &[]);
        // feed a stale commit quorum again: decision must not change and
        // no new decided effect may fire
        let r = &mut replicas[1];
        assert!(r.decision().is_some());
        let fx = r.on_timeout(r.view());
        assert!(fx.decided.is_none());
        assert!(fx.msgs.is_empty());
    }

    #[test]
    fn non_leader_preprepare_ignored() {
        let (mut replicas, registry, _) = make_replicas(4, 1);
        let mut reg = registry.clone();
        let key2 = reg.register(2); // member but not leader of view 0
        let msg = CommitteeMsg::pre_prepare(&key2, 0, Bytes::from_static(b"evil"), vec![]);
        let fx = replicas[2].handle(ProcessId::new(2), msg);
        assert!(fx.msgs.is_empty());
    }

    #[test]
    fn unjustified_view_jump_ignored() {
        let (mut replicas, registry, _) = make_replicas(4, 1);
        let mut reg = registry.clone();
        let key2 = reg.register(2); // leader of view 1
        let msg = CommitteeMsg::pre_prepare(&key2, 1, Bytes::from_static(b"evil"), vec![]);
        let fx = replicas[2].handle(ProcessId::new(2), msg);
        assert!(fx.msgs.is_empty(), "view-1 proposal needs justification");
    }
}
