//! Observability layer for the BFT-CUPFT reproduction: a structured-event
//! recorder, a metrics registry, and per-node **phase timelines**.
//!
//! The paper's protocol is a pipeline — participant discovery →
//! sink/core identification → consensus — but `NetStats` only observes its
//! endpoints (message counters and one end-to-end scalar). This crate adds
//! the middle: per-phase marks, fixed-bucket log2 latency histograms, and
//! an event ring, all behind an `Option<Arc<Recorder>>` so a run that does
//! not observe pays nothing but a pointer-null check.
//!
//! # Clock domains
//!
//! A [`Recorder`] owns one [`Clock`] that serves both execution
//! substrates:
//!
//! * **virtual** — the deterministic simulator drives the clock from its
//!   own event time ([`Clock::advance_virtual`]), so every recorded
//!   timestamp is a simulated tick and two same-seed runs produce
//!   *byte-identical* reports;
//! * **wall** — the threaded runtime leaves the clock in its initial wall
//!   domain, where [`Clock::now`] is monotonic microseconds since the
//!   recorder was created. Wall reports are for profiling, never for
//!   regression gating.
//!
//! Which domain a report was recorded under is stamped on
//! [`ObsReport::clock_domain`].
//!
//! # Determinism contract
//!
//! On the simulator, everything the recorder stores is a pure function of
//! the scenario and seed: phase marks carry explicit simulated
//! timestamps, histograms count virtual quantities (events per tick,
//! queue depths, certificate units), and the event ring is appended in
//! event-loop order. Wall-clock quantities are recorded **only** by the
//! threaded runtime, under its own metric names. The root
//! `tests/obs_determinism.rs` holds both halves of the contract: sim
//! reports are byte-identical across runs, and observation never changes
//! decisions, views, or `NetStats` on either substrate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clock;
mod hist;
mod recorder;
mod report;

pub use clock::{Clock, ClockDomain};
pub use hist::{Histogram, BUCKETS};
pub use recorder::{Recorder, DEFAULT_EVENT_CAPACITY};
pub use report::{ObsEvent, ObsReport, PhaseMark, PhaseTimeline};
