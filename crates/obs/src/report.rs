//! Immutable snapshots of a [`crate::Recorder`]: phase timelines, the
//! metrics registry, and the event ring.

use std::collections::BTreeMap;

use crate::clock::ClockDomain;
use crate::hist::Histogram;

/// The five per-node marks of the protocol pipeline, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseMark {
    /// The node sent its first discovery gossip round (Algorithm 1 start).
    FirstGossip,
    /// The node's `S_PD` knowledge view last changed — once discovery
    /// quiesces, this is the fixpoint time of Algorithm 1 (Theorem 2's
    /// "eventually common `S_PD`").
    SpdFixpoint,
    /// The sink/core detector returned (Algorithms 2/4 succeeded).
    SinkIdentified,
    /// The node installed its consensus view (joined the committee as a
    /// member, or entered the learning phase).
    ViewInstalled,
    /// The node decided a value.
    Decided,
}

impl PhaseMark {
    /// Stable snake_case name used in events and JSON exports.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseMark::FirstGossip => "first_gossip",
            PhaseMark::SpdFixpoint => "spd_fixpoint",
            PhaseMark::SinkIdentified => "sink_identified",
            PhaseMark::ViewInstalled => "view_installed",
            PhaseMark::Decided => "decided",
        }
    }

    /// All marks in pipeline order.
    pub fn all() -> [PhaseMark; 5] {
        [
            PhaseMark::FirstGossip,
            PhaseMark::SpdFixpoint,
            PhaseMark::SinkIdentified,
            PhaseMark::ViewInstalled,
            PhaseMark::Decided,
        ]
    }
}

/// One node's journey through the pipeline, as clock timestamps.
///
/// Every mark is first-write-wins except [`PhaseMark::SpdFixpoint`],
/// which is last-write-wins: the fixpoint of Algorithm 1 is by definition
/// the *final* time the knowledge view changed, which is only known in
/// retrospect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimeline {
    /// When the node first gossiped (virtually always the start time).
    pub first_gossip: Option<u64>,
    /// Last time the node's `S_PD` view changed.
    pub spd_fixpoint: Option<u64>,
    /// When the sink/core detector succeeded.
    pub sink_identified: Option<u64>,
    /// When the consensus view was installed.
    pub view_installed: Option<u64>,
    /// When the node decided.
    pub decided: Option<u64>,
}

impl PhaseTimeline {
    /// Applies one mark (see the type docs for the write semantics).
    pub fn set(&mut self, mark: PhaseMark, at: u64) {
        let slot = match mark {
            PhaseMark::FirstGossip => &mut self.first_gossip,
            PhaseMark::SpdFixpoint => {
                self.spd_fixpoint = Some(at);
                return;
            }
            PhaseMark::SinkIdentified => &mut self.sink_identified,
            PhaseMark::ViewInstalled => &mut self.view_installed,
            PhaseMark::Decided => &mut self.decided,
        };
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Reads one mark back.
    pub fn get(&self, mark: PhaseMark) -> Option<u64> {
        match mark {
            PhaseMark::FirstGossip => self.first_gossip,
            PhaseMark::SpdFixpoint => self.spd_fixpoint,
            PhaseMark::SinkIdentified => self.sink_identified,
            PhaseMark::ViewInstalled => self.view_installed,
            PhaseMark::Decided => self.decided,
        }
    }

    /// Whether all five marks are present — true exactly for nodes that
    /// traversed the whole pipeline (i.e. decided).
    pub fn is_complete(&self) -> bool {
        PhaseMark::all().iter().all(|m| self.get(*m).is_some())
    }
}

/// One entry of the ring-buffered event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Clock timestamp (see [`ObsReport::clock_domain`] for the unit).
    pub at: u64,
    /// The node the event concerns (raw process ID).
    pub node: u64,
    /// Stable event name (phase-mark names or instrumentation-site tags).
    pub what: String,
}

/// An immutable snapshot of everything a [`crate::Recorder`] collected.
///
/// Derives `Eq` so whole reports can be compared in determinism tests
/// (and so the runtime reports that embed one keep their own `Eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// Which clock domain every timestamp in the report belongs to.
    pub clock_domain: ClockDomain,
    /// Monotonic counters, keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, keyed by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Log2 latency/size histograms, keyed by metric name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-node phase timelines, keyed by raw process ID.
    pub timelines: BTreeMap<u64, PhaseTimeline>,
    /// The event ring contents, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events evicted from the ring because it was full.
    pub events_dropped: u64,
}

impl ObsReport {
    /// Largest timestamp any node recorded for `mark`, `None` if no node
    /// reached it. On the simulator this is the deterministic
    /// "system-wide phase latency" scalar the bench gate consumes.
    pub fn phase_max(&self, mark: PhaseMark) -> Option<u64> {
        self.timelines.values().filter_map(|t| t.get(mark)).max()
    }

    /// Number of nodes whose timeline has all five marks.
    pub fn complete_timelines(&self) -> usize {
        self.timelines.values().filter(|t| t.is_complete()).count()
    }

    /// Counter value, `0` when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if any samples were recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_write_semantics() {
        let mut t = PhaseTimeline::default();
        t.set(PhaseMark::FirstGossip, 5);
        t.set(PhaseMark::FirstGossip, 99); // first write wins
        assert_eq!(t.first_gossip, Some(5));
        t.set(PhaseMark::SpdFixpoint, 10);
        t.set(PhaseMark::SpdFixpoint, 40); // last write wins
        assert_eq!(t.spd_fixpoint, Some(40));
        assert!(!t.is_complete());
        t.set(PhaseMark::SinkIdentified, 50);
        t.set(PhaseMark::ViewInstalled, 50);
        t.set(PhaseMark::Decided, 80);
        assert!(t.is_complete());
        assert_eq!(t.get(PhaseMark::Decided), Some(80));
    }

    #[test]
    fn phase_max_spans_nodes() {
        let mut report = ObsReport {
            clock_domain: ClockDomain::Virtual,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            timelines: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
        };
        assert_eq!(report.phase_max(PhaseMark::Decided), None);
        let mut a = PhaseTimeline::default();
        a.set(PhaseMark::Decided, 120);
        let mut b = PhaseTimeline::default();
        b.set(PhaseMark::Decided, 300);
        report.timelines.insert(1, a);
        report.timelines.insert(2, b);
        assert_eq!(report.phase_max(PhaseMark::Decided), Some(300));
        assert_eq!(report.complete_timelines(), 0);
    }
}
