//! The two-domain clock behind every [`crate::Recorder`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Which time domain a clock (and therefore a report) runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Simulated ticks, advanced explicitly by the discrete-event
    /// simulator. Deterministic: a pure function of scenario + seed.
    Virtual,
    /// Monotonic wall time in microseconds since the clock was created.
    /// Used by the threaded runtime; never comparable across machines.
    Wall,
}

impl ClockDomain {
    /// Stable lowercase name used in JSON exports.
    pub fn name(&self) -> &'static str {
        match self {
            ClockDomain::Virtual => "virtual",
            ClockDomain::Wall => "wall",
        }
    }
}

/// A clock that starts in the wall domain and can be switched to the
/// virtual domain by a deterministic driver (the simulator does this in
/// its `set_recorder`).
///
/// All operations are lock-free atomics: reading the clock from a hot
/// path costs two relaxed loads.
#[derive(Debug)]
pub struct Clock {
    virtual_domain: AtomicBool,
    virtual_now: AtomicU64,
    start: Instant,
}

impl Clock {
    /// A new clock in the wall domain, with `now() == 0` at creation.
    pub fn new() -> Self {
        Clock {
            virtual_domain: AtomicBool::new(false),
            virtual_now: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Switches the clock into the virtual domain (idempotent). After
    /// this, [`Clock::now`] reports whatever the driver last passed to
    /// [`Clock::advance_virtual`].
    pub fn set_virtual(&self) {
        self.virtual_domain.store(true, Ordering::Relaxed);
    }

    /// The domain the clock currently reports in.
    pub fn domain(&self) -> ClockDomain {
        if self.virtual_domain.load(Ordering::Relaxed) {
            ClockDomain::Virtual
        } else {
            ClockDomain::Wall
        }
    }

    /// Advances the virtual clock to `to` (monotonic: a lower value is a
    /// no-op). Only meaningful in the virtual domain; harmless otherwise.
    pub fn advance_virtual(&self, to: u64) {
        self.virtual_now.fetch_max(to, Ordering::Relaxed);
    }

    /// Current time: virtual ticks in the virtual domain, monotonic
    /// microseconds since creation in the wall domain.
    pub fn now(&self) -> u64 {
        match self.domain() {
            ClockDomain::Virtual => self.virtual_now.load(Ordering::Relaxed),
            ClockDomain::Wall => self.start.elapsed().as_micros() as u64,
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_wall_domain() {
        let clock = Clock::new();
        assert_eq!(clock.domain(), ClockDomain::Wall);
        assert_eq!(clock.domain().name(), "wall");
    }

    #[test]
    fn virtual_domain_is_driver_controlled_and_monotonic() {
        let clock = Clock::new();
        clock.set_virtual();
        assert_eq!(clock.domain(), ClockDomain::Virtual);
        assert_eq!(clock.now(), 0);
        clock.advance_virtual(42);
        assert_eq!(clock.now(), 42);
        clock.advance_virtual(17); // going backwards is a no-op
        assert_eq!(clock.now(), 42);
        assert_eq!(clock.domain().name(), "virtual");
    }
}
