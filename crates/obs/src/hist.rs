//! Fixed-bucket log2 histograms: integer-only quantiles, no floats in
//! the hot path, mergeable across shards like `NetStats::merge`.

/// Number of buckets: one for the value `0` plus one per bit length of a
/// `u64` (bucket `k ≥ 1` covers `[2^(k-1), 2^k - 1]`).
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Recording is O(1) (a `leading_zeros` and two adds), quantile queries
/// walk at most [`BUCKETS`] counters, and [`Histogram::merge`] is exact:
/// a merged histogram is indistinguishable from one that saw every
/// sample itself (the property `tests/proptest_obs.rs` checks at the
/// repo root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `index`.
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    /// Records one sample. The running sum saturates at `u64::MAX`
    /// rather than wrapping (quantiles never consult it).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `num/den` quantile as the inclusive upper bound of the bucket
    /// holding the rank-`⌈count·num/den⌉` sample, clamped to the observed
    /// `[min, max]` range (so a single-sample histogram reports that
    /// sample exactly). Returns `0` for an empty histogram.
    ///
    /// Integer-only: rank arithmetic runs in `u128`, so `num/den` up to
    /// `u64::MAX` samples cannot overflow.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0, "quantile denominator must be nonzero");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128)).max(1);
        let mut cumulative: u128 = 0;
        for (index, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket as u128;
            if cumulative >= rank {
                return Self::bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(1, 2)`).
    pub fn p50(&self) -> u64 {
        self.quantile(1, 2)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }

    /// Folds `other` into `self`. Exact, commutative, and associative —
    /// the same conservation contract as `NetStats::merge`, so per-shard
    /// histograms can be merged in shard-index order into one report.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_samples_is_fully_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        for value in [0u64, 1, 7, 1 << 40, u64::MAX] {
            let mut h = Histogram::new();
            h.record(value);
            assert_eq!(h.count(), 1);
            assert_eq!(h.min(), Some(value));
            assert_eq!(h.max(), Some(value));
            assert_eq!(h.p50(), value, "p50 of single sample {value}");
            assert_eq!(h.p999(), value, "p999 of single sample {value}");
        }
    }

    #[test]
    fn u64_max_lands_in_the_top_bucket_and_sum_saturates() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_power_of_two_aligned() {
        // 0 is its own bucket; [2^(k-1), 2^k - 1] share bucket k.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(8), 255);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        // rank(p50) = 3 → third sample (3) lives in bucket 2, upper 3.
        assert_eq!(h.p50(), 3);
        // p99 → rank 5 → bucket of 100 is 7, upper 127, clamped to max.
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn merge_conserves_count_sum_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 9, 1024] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 77, u64::MAX] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(
            a, whole,
            "merge must equal one histogram seeing all samples"
        );
        // Merging an empty histogram in either direction changes nothing.
        let empty = Histogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before);
        let mut from_empty = Histogram::new();
        from_empty.merge(&before);
        assert_eq!(from_empty, before);
    }
}
