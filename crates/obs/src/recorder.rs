//! The shared, thread-safe recorder every instrumentation site talks to.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::report::{ObsEvent, ObsReport, PhaseMark, PhaseTimeline};

/// Default capacity of the event ring. Phase-mark events for a
/// 1000-node run fit with room to spare; older entries are evicted (and
/// counted) rather than growing without bound.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    timelines: BTreeMap<u64, PhaseTimeline>,
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

/// A metrics registry + event ring + phase-timeline store, shared across
/// every instrumented layer of a run as an `Arc<Recorder>`.
///
/// Metric names are `&'static str` literals at the call sites, so the
/// hot path allocates nothing; the registry is a single mutex, which is
/// uncontended on the simulator (one driving thread) and touched only a
/// handful of times per message on the threaded runtime. Runs that do
/// not observe never construct a recorder at all — every call site is
/// gated on `Option<Arc<Recorder>>`.
#[derive(Debug)]
pub struct Recorder {
    clock: Clock,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Recorder {
    /// A recorder with the default event-ring capacity, clock in the
    /// wall domain (the simulator switches it to virtual on install).
    pub fn new() -> Self {
        Recorder::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder with an explicit event-ring capacity.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Recorder {
            clock: Clock::new(),
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The recorder's clock (substrates use this to pick or drive the
    /// time domain).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panicking thread held the
        // lock mid-update; the metrics are still best-effort readable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `n` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name).or_insert(0) += n;
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        self.lock().gauges.insert(name, value);
    }

    /// Raises the named gauge to `value` if larger (high-water marks).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        let mut inner = self.lock();
        let slot = inner.gauges.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one sample into the named histogram.
    pub fn hist_record(&self, name: &'static str, value: u64) {
        let mut inner = self.lock();
        inner.hists.entry(name).or_default().record(value);
    }

    /// Merges a locally-accumulated histogram into the named one — how
    /// router shards fold their private depth histograms into the shared
    /// report in shard-index order.
    pub fn merge_hist(&self, name: &'static str, hist: &Histogram) {
        let mut inner = self.lock();
        inner.hists.entry(name).or_default().merge(hist);
    }

    /// Appends a ring event stamped with the clock's current time.
    pub fn event(&self, node: u64, what: &'static str) {
        self.event_at(node, what, self.clock.now());
    }

    /// Appends a ring event with an explicit timestamp (instrumentation
    /// sites that know the simulated time pass it directly, keeping the
    /// trace exact even before the driver advanced the clock).
    pub fn event_at(&self, node: u64, what: &'static str, at: u64) {
        let mut inner = self.lock();
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(ObsEvent {
            at,
            node,
            what: what.to_string(),
        });
    }

    /// Applies a phase mark to `node`'s timeline (see
    /// [`PhaseTimeline::set`] for write semantics) and mirrors it into
    /// the event ring.
    pub fn mark(&self, node: u64, mark: PhaseMark, at: u64) {
        {
            let mut inner = self.lock();
            inner.timelines.entry(node).or_default().set(mark, at);
        }
        self.event_at(node, mark.name(), at);
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> ObsReport {
        let inner = self.lock();
        ObsReport {
            clock_domain: self.clock.domain(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: inner
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            timelines: inner.timelines.clone(),
            events: inner.events.iter().cloned().collect(),
            events_dropped: inner.dropped,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let rec = Recorder::new();
        rec.counter_add("ticks", 2);
        rec.counter_add("ticks", 3);
        rec.gauge_set("depth", 7);
        rec.gauge_set("depth", 4);
        rec.gauge_max("peak", 9);
        rec.gauge_max("peak", 6);
        rec.hist_record("batch", 16);
        let report = rec.snapshot();
        assert_eq!(report.counter("ticks"), 5);
        assert_eq!(report.counter("absent"), 0);
        assert_eq!(report.gauges["depth"], 4);
        assert_eq!(report.gauges["peak"], 9);
        assert_eq!(report.histogram("batch").unwrap().count(), 1);
        assert!(report.histogram("absent").is_none());
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts_drops() {
        let rec = Recorder::with_event_capacity(2);
        rec.event_at(1, "a", 10);
        rec.event_at(1, "b", 20);
        rec.event_at(1, "c", 30);
        let report = rec.snapshot();
        assert_eq!(report.events_dropped, 1);
        let names: Vec<_> = report.events.iter().map(|e| e.what.as_str()).collect();
        assert_eq!(names, ["b", "c"], "oldest entry evicted first");
    }

    #[test]
    fn marks_build_timelines_and_mirror_into_the_ring() {
        let rec = Recorder::new();
        rec.mark(7, PhaseMark::FirstGossip, 0);
        rec.mark(7, PhaseMark::SpdFixpoint, 400);
        rec.mark(7, PhaseMark::SinkIdentified, 500);
        rec.mark(7, PhaseMark::ViewInstalled, 500);
        rec.mark(7, PhaseMark::Decided, 900);
        let report = rec.snapshot();
        assert_eq!(report.complete_timelines(), 1);
        assert_eq!(report.timelines[&7].decided, Some(900));
        assert_eq!(report.phase_max(PhaseMark::Decided), Some(900));
        assert_eq!(report.events.len(), 5);
        assert_eq!(report.events[0].what, "first_gossip");
    }

    #[test]
    fn merged_shard_histograms_equal_one_recorder() {
        let shared = Recorder::new();
        let mut shard_a = Histogram::new();
        let mut shard_b = Histogram::new();
        let solo = Recorder::new();
        for v in [1u64, 5, 9] {
            shard_a.record(v);
            solo.hist_record("depth", v);
        }
        for v in [2u64, 1000] {
            shard_b.record(v);
            solo.hist_record("depth", v);
        }
        shared.merge_hist("depth", &shard_a);
        shared.merge_hist("depth", &shard_b);
        assert_eq!(
            shared.snapshot().histogram("depth"),
            solo.snapshot().histogram("depth")
        );
    }
}
