//! Discovery protocol messages.

use cupft_detector::PdCertificate;
use cupft_net::Labeled;

/// The two messages of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryMsg {
    /// "Send me the PDs you have received" (line 2).
    GetPds,
    /// The responder's `S_PD` (line 3): signed PD records.
    SetPds(Vec<PdCertificate>),
}

impl Labeled for DiscoveryMsg {
    fn label(&self) -> &'static str {
        match self {
            DiscoveryMsg::GetPds => "GETPDS",
            DiscoveryMsg::SetPds(_) => "SETPDS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(DiscoveryMsg::GetPds.label(), "GETPDS");
        assert_eq!(DiscoveryMsg::SetPds(vec![]).label(), "SETPDS");
    }
}
