//! Discovery protocol messages.

use std::sync::Arc;

use cupft_detector::PdCertificate;
use cupft_graph::ProcessSet;
use cupft_net::Labeled;
use cupft_wire::{put_len, Decode, Encode, Reader, WireError};

/// A compact summary of one process's certificate set (`S_PD`): the member
/// count plus the commutative 128-bit sum of the certificates'
/// [fingerprints](PdCertificate::fingerprint).
///
/// Equal sync states mean identical certificate sets (up to a ~2⁻¹²⁸
/// collision), which is how the delta-gossip layer decides a peer has
/// nothing new without shipping the set itself. A default (`count == 0`)
/// state can never equal a live process's state — every process holds at
/// least its own certificate — so fabricated zero states merely disable
/// suppression toward their sender.
///
/// The `epoch` is the owner's membership incarnation: it starts at 0 and is
/// bumped each time the process crash-recovers (see
/// `DiscoveryState::bump_epoch`). It participates in equality, so a
/// rejoining peer that restored a stale-but-identical-looking `S_PD` can
/// never be suppressed by the sync-skip optimization — its reported state
/// stops matching anything recorded about its previous incarnation, and
/// polling re-arms on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SyncState {
    /// Number of certificates held.
    pub count: u32,
    /// Wrapping sum of the held certificates' fingerprints.
    pub fp: u128,
    /// The owner's membership incarnation (0 until a crash-recovery).
    pub epoch: u32,
}

impl SyncState {
    /// Folds one more certificate fingerprint into the state (the epoch is
    /// untouched — it tracks incarnations, not set contents).
    pub fn add(&mut self, cert_fp: u128) {
        self.count += 1;
        self.fp = self.fp.wrapping_add(cert_fp);
    }
}

/// The two messages of Algorithm 1, carrying the delta-gossip metadata.
///
/// Certificates travel as `Arc<PdCertificate>` inside an `Arc<[_]>` bundle
/// and the `GETPDS` have-set as `Arc<ProcessSet>`, so cloning a message —
/// for fan-out, for the simulator's per-recipient copies, or across the
/// threaded router's shard hops — bumps one reference count instead of
/// deep-copying signed records or even the bundle's pointer vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryMsg {
    /// "Send me the PDs you have received" (line 2), annotated with what
    /// the requester already holds: `have` lists the authors of its
    /// verified certificates, `state` summarizes the exact set. A
    /// delta-gossip responder answers with only the certificates whose
    /// authors are missing from `have` — on first contact `have` is just
    /// the requester itself, so the reply degenerates to the full `S_PD`
    /// of the baseline protocol.
    GetPds {
        /// Authors of the certificates the requester already holds.
        have: Arc<ProcessSet>,
        /// The requester's certificate-set summary.
        state: SyncState,
    },
    /// The responder's `S_PD` (line 3): signed PD records (all of them, or
    /// the requester's delta), plus the responder's own set summary so the
    /// requester can stop polling once the two sets agree.
    SetPds {
        /// The shipped certificates (shared bundle: cloning the message
        /// is one atomic increment, zero per-certificate work).
        certs: Arc<[Arc<PdCertificate>]>,
        /// The responder's certificate-set summary.
        state: SyncState,
    },
}

impl Labeled for DiscoveryMsg {
    fn label(&self) -> &'static str {
        match self {
            DiscoveryMsg::GetPds { .. } => "GETPDS",
            DiscoveryMsg::SetPds { .. } => "SETPDS",
        }
    }

    /// `SETPDS` weighs its certificate count; `GETPDS` is control traffic.
    fn payload_units(&self) -> u64 {
        match self {
            DiscoveryMsg::GetPds { .. } => 0,
            DiscoveryMsg::SetPds { certs, .. } => certs.len() as u64,
        }
    }
}

impl Encode for SyncState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.fp.encode(out);
        self.epoch.encode(out);
    }
}

impl Decode for SyncState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SyncState {
            count: r.u32()?,
            fp: r.u128()?,
            epoch: r.u32()?,
        })
    }
}

/// Wire form: `tag:u8` (0 = `GETPDS`, 1 = `SETPDS`) followed by the
/// variant fields. The `Arc` sharing wrappers are a process-local
/// optimization and do not travel: decode rebuilds fresh bundles, and
/// every certificate's fingerprint is recomputed from its record bytes.
impl Encode for DiscoveryMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DiscoveryMsg::GetPds { have, state } => {
                out.push(0);
                have.encode(out);
                state.encode(out);
            }
            DiscoveryMsg::SetPds { certs, state } => {
                out.push(1);
                put_len(out, certs.len());
                for cert in certs.iter() {
                    cert.encode(out);
                }
                state.encode(out);
            }
        }
    }
}

impl Decode for DiscoveryMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(DiscoveryMsg::GetPds {
                have: Arc::decode(r)?,
                state: SyncState::decode(r)?,
            }),
            1 => {
                let count = r.len_prefix()?;
                let mut certs = Vec::with_capacity(count);
                for _ in 0..count {
                    certs.push(Arc::new(PdCertificate::decode(r)?));
                }
                Ok(DiscoveryMsg::SetPds {
                    certs: certs.into(),
                    state: SyncState::decode(r)?,
                })
            }
            tag => Err(WireError::BadTag {
                ty: "DiscoveryMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_payload() {
        let get = DiscoveryMsg::GetPds {
            have: Arc::new(ProcessSet::new()),
            state: SyncState::default(),
        };
        assert_eq!(get.label(), "GETPDS");
        assert_eq!(get.payload_units(), 0);
        let set = DiscoveryMsg::SetPds {
            certs: Vec::new().into(),
            state: SyncState::default(),
        };
        assert_eq!(set.label(), "SETPDS");
        assert_eq!(set.payload_units(), 0);
        // Cloning a SETPDS shares the bundle allocation.
        let bundle: Arc<[Arc<PdCertificate>]> = Vec::new().into();
        let a = DiscoveryMsg::SetPds {
            certs: bundle.clone(),
            state: SyncState::default(),
        };
        let b = a.clone();
        match (&a, &b) {
            (DiscoveryMsg::SetPds { certs: ca, .. }, DiscoveryMsg::SetPds { certs: cb, .. }) => {
                assert!(Arc::ptr_eq(ca, cb));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sync_state_is_order_independent() {
        let mut a = SyncState::default();
        a.add(10);
        a.add(7);
        let mut b = SyncState::default();
        b.add(7);
        b.add(10);
        assert_eq!(a, b);
        assert_eq!(a.count, 2);
        assert_ne!(a, SyncState::default());
    }

    #[test]
    fn sync_state_epoch_participates_in_equality() {
        let mut a = SyncState::default();
        a.add(10);
        let mut b = a;
        assert_eq!(a, b);
        // Same certificate set, different incarnation: never equal, so the
        // delta-gossip skip can never suppress a rejoined peer.
        b.epoch += 1;
        assert_ne!(a, b);
        // The set summary itself is unchanged by the bump.
        assert_eq!((a.count, a.fp), (b.count, b.fp));
    }
}
