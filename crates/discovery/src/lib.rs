//! The Discovery algorithm (Algorithm 1 of the paper).
//!
//! Every correct process periodically asks the processes it knows for the
//! PDs they have collected (`GETPDS`), answers such requests with its own
//! collection (`SETPDS`), and merges verified records into its
//! [`cupft_graph::KnowledgeView`]. Theorem 2 guarantees that in a graph
//! from `G_di` every correct process eventually knows all correct sink
//! members and holds their PDs; the tests reproduce that convergence.
//!
//! The module exposes the protocol twice:
//!
//! * [`DiscoveryState`] — a runtime-agnostic state machine (messages in,
//!   messages out), embedded by the full BFT-CUP/BFT-CUPFT nodes in
//!   `cupft-core`;
//! * [`DiscoveryActor`] — a standalone actor for discovery-only
//!   experiments and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod msgs;
mod state;

pub use msgs::DiscoveryMsg;
pub use state::{DiscoveryState, DISCOVERY_TICK};

use cupft_graph::ProcessId;
use cupft_net::{Actor, Context};

/// A standalone discovery participant: runs Algorithm 1 forever (the
/// `discovery` task has no termination condition of its own — the Sink and
/// Core algorithms simply stop consulting it once they return).
#[derive(Debug)]
pub struct DiscoveryActor {
    state: DiscoveryState,
    period: u64,
}

impl DiscoveryActor {
    /// Creates an actor around an initialized state with the given tick
    /// period.
    pub fn new(state: DiscoveryState, period: u64) -> Self {
        DiscoveryActor { state, period }
    }

    /// Read access to the protocol state.
    pub fn state(&self) -> &DiscoveryState {
        &self.state
    }
}

impl Actor<DiscoveryMsg> for DiscoveryActor {
    fn id(&self) -> ProcessId {
        self.state.id()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<DiscoveryMsg>) {
        for (to, msg) in self.state.tick() {
            ctx.send(to, msg);
        }
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }

    fn on_message(&mut self, from: ProcessId, msg: DiscoveryMsg, ctx: &mut Context<DiscoveryMsg>) {
        for (to, out) in self.state.handle(from, msg) {
            ctx.send(to, out);
        }
    }

    fn on_timer(&mut self, _timer: u64, ctx: &mut Context<DiscoveryMsg>) {
        for (to, msg) in self.state.tick() {
            ctx.send(to, msg);
        }
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_detector::SystemSetup;
    use cupft_graph::{fig1b, process_set, DiGraph, ProcessSet};
    use cupft_net::sim::Simulation;
    use cupft_net::{DelayPolicy, SimConfig};

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    /// Builds a simulation where every process in `graph` runs discovery;
    /// `silent` processes are registered but never started (the silent-
    /// Byzantine behavior).
    fn discovery_sim(
        graph: &DiGraph,
        silent: &ProcessSet,
        seed: u64,
    ) -> (Simulation<DiscoveryMsg>, SystemSetup) {
        let setup = SystemSetup::new(graph);
        let mut sim = Simulation::new(SimConfig {
            seed,
            max_time: 50_000,
            policy: DelayPolicy::PartialSynchrony {
                gst: 200,
                delta: 10,
                pre_gst_max: 150,
            },
        });
        for v in graph.vertices() {
            if silent.contains(&v) {
                continue;
            }
            let state = DiscoveryState::from_setup(&setup, v).unwrap();
            sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
        }
        (sim, setup)
    }

    /// Extracts the concrete actor type back from the simulator.
    fn as_discovery(actor: &dyn Actor<DiscoveryMsg>) -> &DiscoveryActor {
        actor
            .as_any()
            .downcast_ref::<DiscoveryActor>()
            .expect("all test actors are DiscoveryActor")
    }

    /// Theorem 2 on Fig. 1b: every correct process eventually discovers and
    /// receives the PDs of all correct sink members, even with the
    /// Byzantine process silent.
    #[test]
    fn theorem2_on_fig1b_with_silent_byzantine() {
        let fig = fig1b();
        let (mut sim, _setup) = discovery_sim(fig.graph(), fig.byzantine(), 1);
        sim.run_until(|s| s.now() > 2_000);
        let correct_sink = process_set([1, 2, 3]);
        for (id, actor) in sim.into_actors() {
            if fig.byzantine().contains(&id) {
                continue;
            }
            let discovery = as_discovery(actor.as_ref());
            let view = discovery.state().view();
            for &member in &correct_sink {
                assert!(
                    view.knows(member),
                    "{id} must discover sink member {member}"
                );
                assert!(
                    view.has_pd_of(member),
                    "{id} must receive PD of sink member {member}"
                );
            }
        }
    }

    /// With the bridge process of Fig. 1a silent, the two halves never
    /// learn of each other — the premise of the Fig. 1a impossibility.
    #[test]
    fn fig1a_partition_under_silent_bridge() {
        let fig = cupft_graph::fig1a();
        let (mut sim, _setup) = discovery_sim(fig.graph(), fig.byzantine(), 2);
        sim.run_until(|s| s.now() > 2_000);
        for (id, actor) in sim.into_actors() {
            let discovery = as_discovery(actor.as_ref());
            let view = discovery.state().view();
            if [1, 2, 3].map(p).contains(&id) {
                for other in [5, 6, 7, 8].map(p) {
                    assert!(!view.knows(other), "{id} must not learn of {other}");
                }
            }
            if [5, 6, 7, 8].map(p).contains(&id) {
                for other in [1, 2, 3].map(p) {
                    assert!(!view.knows(other), "{id} must not learn of {other}");
                }
            }
        }
    }

    /// Discovery converges within O(diameter) rounds after GST.
    #[test]
    fn convergence_time_bounded_by_diameter() {
        // A 6-process bidirectional chain: diameter 5.
        let graph = DiGraph::from_edges([
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 4),
            (5, 6),
            (6, 5),
        ]);
        let (mut sim, _setup) = discovery_sim(&graph, &ProcessSet::new(), 3);
        // gst=200, delta=10, tick=20: full propagation needs a handful of
        // round trips; 6 * (20 + 2*10) per hop is a generous bound.
        let deadline = 200 + 6 * 60;
        sim.run_until(|s| s.now() > deadline);
        for (_id, actor) in sim.into_actors() {
            let discovery = as_discovery(actor.as_ref());
            assert_eq!(discovery.state().view().received_count(), 6);
        }
    }
}
