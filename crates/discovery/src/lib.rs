//! The Discovery algorithm (Algorithm 1 of the paper), with a
//! delta-gossip fast path.
//!
//! Every correct process periodically asks the processes it knows for the
//! PDs they have collected (`GETPDS`), answers such requests with its own
//! collection (`SETPDS`), and merges verified records into its
//! [`cupft_graph::KnowledgeView`]. Theorem 2 guarantees that in a graph
//! from `G_di` every correct process eventually knows all correct sink
//! members and holds their PDs; the tests reproduce that convergence.
//!
//! # Delta gossip
//!
//! The literal Algorithm 1 ships the **whole** `S_PD` in every `SETPDS`,
//! which makes the protocol's payload complexity `O(rounds · n³)` records
//! system-wide — the wall every end-to-end experiment beyond a few dozen
//! processes used to hit. [`GossipMode::Delta`] (the default) changes
//! *how much* is shipped, never *what is eventually known*:
//!
//! 1. **Requester-described deltas.** A `GETPDS` carries the authors the
//!    requester already holds certificates for ([`DiscoveryMsg::GetPds`]'s
//!    `have` set) and the responder replies with only the missing
//!    records. The delta is recomputed *statelessly* from each request:
//!    the responder never marks anything "already sent" on its own, so a
//!    dropped or reordered reply costs one round, never a certificate.
//! 2. **Sync-state suppression.** Every message carries a [`SyncState`] —
//!    count plus commutative fingerprint of the sender's certificate set.
//!    A process skips its `GETPDS` toward a peer exactly while the peer's
//!    last reported state equals its own current state (identical sets,
//!    up to a ~2⁻¹²⁸ fingerprint collision). The moment either side
//!    learns anything, its state changes, the equality breaks on the next
//!    exchanged message, and polling resumes.
//! 3. **Memoized verification.** [`DiscoveryState::absorb`] discards exact
//!    duplicates *before* signature verification and caches the
//!    fingerprints of both verified and rejected records, so each
//!    distinct certificate pays for at most one HMAC check per process
//!    and replayed forgeries are counted once.
//!
//! ## Why Algorithm 1's invariants survive
//!
//! The paper's termination lemma for Algorithm 1 (and everything built on
//! it: Theorem 2's "S_PD eventually common" across correct sink members)
//! needs exactly one dissemination property:
//!
//! > **(P)** If correct `j` holds certificate `c` and correct `i` reaches
//! > `j` along correct processes, then `i` eventually holds a certificate
//! > from `c`'s author.
//!
//! Delta mode preserves (P) hop by hop: while `i` lacks `c`'s author,
//! `i`'s `have` set omits it, so **every** reply `j` computes for `i`
//! includes `c` — rule 1 cannot suppress an unreceived author, and rule 2
//! cannot silence the pair, because `j`'s state (which counts `c`) cannot
//! equal `i`'s state (which does not — the per-element fingerprints sum
//! over *distinct* records). Dropped messages only delay the next
//! request/reply pair, exactly as in the baseline. The single semantic
//! difference is benign: a second, *conflicting* certificate from an
//! equivocating (hence Byzantine) author may not be re-shipped to a
//! process that already holds one from that author — and Algorithm 1
//! discards such conflicts anyway ("first record wins"), so every
//! reachable `KnowledgeView` is byte-identical to the baseline's
//! fixpoint. `tests/discovery_equivalence.rs` and
//! `tests/proptest_discovery.rs` hold both modes to that claim, including
//! under message-reordering and dropping adversaries.
//!
//! # The verification stage
//!
//! Rule 3 generalizes across processes: the verdict of a certificate is a
//! pure function of its bytes (an *oracle*), so **where** and **when** it
//! is computed cannot affect Algorithm 1's fixpoint. [`VerifyStage`] is
//! the stateless half of that split packaged as a
//! [`cupft_net::Preflight`]: installed on a runtime, it pre-verifies
//! inbound `SETPDS` bundles against a shared [`CertPool`] memo before
//! delivery — batch-verifying whole bundles under one registry read lock —
//! so by the time [`DiscoveryState::absorb`] runs, every verdict is a memo
//! hit. On the threaded runtime the stage runs on a real worker pool off
//! the protocol threads; in the simulator it runs synchronously at the
//! delivery event, leaving traces byte-identical (see [`cupft_net::stage`]).
//!
//! The module exposes the protocol twice:
//!
//! * [`DiscoveryState`] — a runtime-agnostic state machine (messages in,
//!   messages out), embedded by the full BFT-CUP/BFT-CUPFT nodes in
//!   `cupft-core`;
//! * [`DiscoveryActor`] — a standalone actor for discovery-only
//!   experiments and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod msgs;
mod state;

pub use msgs::{DiscoveryMsg, SyncState};
pub use state::{DiscoveryState, GossipMode, DISCOVERY_TICK};

use std::sync::Arc;

use cupft_crypto::KeyRegistry;
use cupft_detector::CertPool;
use cupft_graph::ProcessId;
use cupft_net::threaded::Board;
use cupft_net::{Actor, Context, Preflight};
use cupft_obs::Recorder;

/// The stateless half of the certificate-verification pipeline: a
/// [`Preflight`] that settles the verdict of every certificate aboard an
/// inbound `SETPDS` in the shared [`CertPool`] memo before the message
/// reaches its destination actor (see the [module docs](self)).
///
/// Cheap to clone (two `Arc`s); the threaded runtime shares one instance
/// across its stage workers.
#[derive(Debug, Clone)]
pub struct VerifyStage {
    pool: Arc<CertPool>,
    registry: KeyRegistry,
    recorder: Option<Arc<Recorder>>,
}

impl VerifyStage {
    /// Creates a stage over the run's shared pool and key registry
    /// (both typically borrowed from one `SystemSetup`).
    pub fn new(pool: Arc<CertPool>, registry: KeyRegistry) -> Self {
        VerifyStage {
            pool,
            registry,
            recorder: None,
        }
    }

    /// Attaches an observability recorder: each wanted bundle records a
    /// `verify_bundles` count and a `verify_batch_certs` bundle-size
    /// histogram. Both are functions of the message flow, not the clock,
    /// so they are deterministic on the simulator.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The shared pool the stage warms.
    pub fn pool(&self) -> &Arc<CertPool> {
        &self.pool
    }
}

impl Preflight<DiscoveryMsg> for VerifyStage {
    fn preflight(&self, _from: ProcessId, _to: ProcessId, msg: &DiscoveryMsg) {
        if let DiscoveryMsg::SetPds { certs, .. } = msg {
            if let Some(rec) = &self.recorder {
                rec.counter_add("verify_bundles", 1);
                rec.hist_record("verify_batch_certs", certs.len() as u64);
            }
            // Batch settlement: one memo probe pass plus one registry read
            // lock for the whole bundle. Idempotent — re-running on a
            // clone of the bundle is all memo hits.
            self.pool.verify_batch(certs, &self.registry);
        }
    }

    /// Only `SETPDS` bundles actually carrying certificates have stage
    /// work; everything else — `GETPDS` polling traffic and the *empty*
    /// delta replies that dominate a converged system — bypasses the
    /// stage entirely.
    fn wants(&self, msg: &DiscoveryMsg) -> bool {
        matches!(msg, DiscoveryMsg::SetPds { certs, .. } if !certs.is_empty())
    }
}

/// A standalone discovery participant: runs Algorithm 1 forever (the
/// `discovery` task has no termination condition of its own — the Sink and
/// Core algorithms simply stop consulting it once they return).
#[derive(Debug)]
pub struct DiscoveryActor {
    state: DiscoveryState,
    period: u64,
    board: Option<Board<usize>>,
}

impl DiscoveryActor {
    /// Creates an actor around an initialized state with the given tick
    /// period.
    pub fn new(state: DiscoveryState, period: u64) -> Self {
        DiscoveryActor {
            state,
            period,
            board: None,
        }
    }

    /// Attaches a progress board: the actor publishes its
    /// `S_received` count whenever it grows, so a driver can stop a run
    /// once every actor reports the expected count (the only portable way
    /// to observe convergence on the threaded runtime, whose actors are
    /// unreachable mid-run).
    pub fn with_board(mut self, board: Board<usize>) -> Self {
        self.board = Some(board);
        self
    }

    /// Read access to the protocol state.
    pub fn state(&self) -> &DiscoveryState {
        &self.state
    }

    fn publish_progress(&self) {
        if let Some(board) = &self.board {
            board.publish(self.state.id(), self.state.view().received_count());
        }
    }
}

impl Actor<DiscoveryMsg> for DiscoveryActor {
    fn id(&self) -> ProcessId {
        self.state.id()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<DiscoveryMsg>) {
        for (to, msg) in self.state.tick() {
            ctx.send(to, msg);
        }
        self.publish_progress();
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }

    fn on_message(&mut self, from: ProcessId, msg: DiscoveryMsg, ctx: &mut Context<DiscoveryMsg>) {
        for (to, out) in self.state.handle(from, msg) {
            ctx.send(to, out);
        }
        if self.state.take_changed() {
            self.publish_progress();
        }
    }

    fn on_timer(&mut self, _timer: u64, ctx: &mut Context<DiscoveryMsg>) {
        for (to, msg) in self.state.tick() {
            ctx.send(to, msg);
        }
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_detector::SystemSetup;
    use cupft_graph::{fig1b, process_set, DiGraph, ProcessSet};
    use cupft_net::sim::Simulation;
    use cupft_net::{DelayPolicy, SimConfig};

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    /// Builds a simulation where every process in `graph` runs discovery;
    /// `silent` processes are registered but never started (the silent-
    /// Byzantine behavior).
    fn discovery_sim(
        graph: &DiGraph,
        silent: &ProcessSet,
        seed: u64,
    ) -> (Simulation<DiscoveryMsg>, SystemSetup) {
        discovery_sim_with(graph, silent, seed, GossipMode::Delta)
    }

    fn discovery_sim_with(
        graph: &DiGraph,
        silent: &ProcessSet,
        seed: u64,
        mode: GossipMode,
    ) -> (Simulation<DiscoveryMsg>, SystemSetup) {
        let setup = SystemSetup::new(graph);
        let mut sim = Simulation::new(SimConfig {
            seed,
            max_time: 50_000,
            policy: DelayPolicy::PartialSynchrony {
                gst: 200,
                delta: 10,
                pre_gst_max: 150,
            },
        });
        for v in graph.vertices() {
            if silent.contains(&v) {
                continue;
            }
            let state = DiscoveryState::from_setup(&setup, v)
                .unwrap()
                .with_gossip(mode);
            sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
        }
        (sim, setup)
    }

    /// Extracts the concrete actor type back from the simulator.
    fn as_discovery(actor: &dyn Actor<DiscoveryMsg>) -> &DiscoveryActor {
        actor
            .as_any()
            .downcast_ref::<DiscoveryActor>()
            .expect("all test actors are DiscoveryActor")
    }

    /// Theorem 2 on Fig. 1b: every correct process eventually discovers and
    /// receives the PDs of all correct sink members, even with the
    /// Byzantine process silent.
    #[test]
    fn theorem2_on_fig1b_with_silent_byzantine() {
        let fig = fig1b();
        let (mut sim, _setup) = discovery_sim(fig.graph(), fig.byzantine(), 1);
        sim.run_until(|s| s.now() > 2_000);
        let correct_sink = process_set([1, 2, 3]);
        for (id, actor) in sim.into_actors() {
            if fig.byzantine().contains(&id) {
                continue;
            }
            let discovery = as_discovery(actor.as_ref());
            let view = discovery.state().view();
            for &member in &correct_sink {
                assert!(
                    view.knows(member),
                    "{id} must discover sink member {member}"
                );
                assert!(
                    view.has_pd_of(member),
                    "{id} must receive PD of sink member {member}"
                );
            }
        }
    }

    /// With the bridge process of Fig. 1a silent, the two halves never
    /// learn of each other — the premise of the Fig. 1a impossibility.
    #[test]
    fn fig1a_partition_under_silent_bridge() {
        let fig = cupft_graph::fig1a();
        let (mut sim, _setup) = discovery_sim(fig.graph(), fig.byzantine(), 2);
        sim.run_until(|s| s.now() > 2_000);
        for (id, actor) in sim.into_actors() {
            let discovery = as_discovery(actor.as_ref());
            let view = discovery.state().view();
            if [1, 2, 3].map(p).contains(&id) {
                for other in [5, 6, 7, 8].map(p) {
                    assert!(!view.knows(other), "{id} must not learn of {other}");
                }
            }
            if [5, 6, 7, 8].map(p).contains(&id) {
                for other in [1, 2, 3].map(p) {
                    assert!(!view.knows(other), "{id} must not learn of {other}");
                }
            }
        }
    }

    /// Discovery converges within O(diameter) rounds after GST.
    #[test]
    fn convergence_time_bounded_by_diameter() {
        // A 6-process bidirectional chain: diameter 5.
        let graph = DiGraph::from_edges([
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 4),
            (5, 6),
            (6, 5),
        ]);
        let (mut sim, _setup) = discovery_sim(&graph, &ProcessSet::new(), 3);
        // gst=200, delta=10, tick=20: full propagation needs a handful of
        // round trips; 6 * (20 + 2*10) per hop is a generous bound.
        let deadline = 200 + 6 * 60;
        sim.run_until(|s| s.now() > deadline);
        for (_id, actor) in sim.into_actors() {
            let discovery = as_discovery(actor.as_ref());
            assert_eq!(discovery.state().view().received_count(), 6);
        }
    }

    /// The verification stage settles whole-bundle verdicts in the shared
    /// pool: after one preflight every certificate aboard the message has
    /// a memoized verdict, and forged records are memoized as rejected.
    #[test]
    fn verify_stage_warms_the_shared_pool() {
        use cupft_detector::PdCertificate;

        let fig = fig1b();
        let setup = SystemSetup::new(fig.graph());
        let stage = VerifyStage::new(setup.pool().clone(), setup.registry().clone());

        let good: Vec<_> = [1, 2, 3]
            .map(p)
            .iter()
            .map(|&v| setup.shared_certificate_for(v).unwrap())
            .collect();
        let forged = std::sync::Arc::new(PdCertificate::forge(p(4), &setup.oracle().pd_of(p(4))));
        let mut certs = good.clone();
        certs.push(forged.clone());
        let msg = DiscoveryMsg::SetPds {
            certs: certs.into(),
            state: SyncState::default(),
        };

        for cert in &good {
            assert_eq!(setup.pool().verdict(cert.fingerprint()), None);
        }
        stage.preflight(p(1), p(2), &msg);
        for cert in &good {
            assert_eq!(setup.pool().verdict(cert.fingerprint()), Some(true));
        }
        assert_eq!(setup.pool().verdict(forged.fingerprint()), Some(false));
        assert_eq!(stage.pool().forged_records(), 1);
        // Idempotent: replaying the same bundle is all memo hits.
        stage.preflight(p(1), p(3), &msg);
        assert_eq!(stage.pool().forged_records(), 1);
    }

    /// Delta mode converges to byte-identical views at a fraction of the
    /// delivered SETPDS payload, and its traffic dries up after the
    /// fixpoint while the baseline keeps re-shipping whole S_PDs forever.
    #[test]
    fn delta_matches_full_views_with_less_payload() {
        let graph = fig1b().graph().clone();
        let horizon = 5_000;
        let run = |mode: GossipMode| {
            let (mut sim, _setup) = discovery_sim_with(&graph, &ProcessSet::new(), 9, mode);
            sim.run_until(|s| s.now() > horizon);
            let payload = sim.stats().label_payload("SETPDS");
            let views: Vec<_> = sim
                .into_actors()
                .into_iter()
                .map(|(id, a)| (id, as_discovery(a.as_ref()).state().view().clone()))
                .collect();
            (views, payload)
        };
        let (full_views, full_payload) = run(GossipMode::Full);
        let (delta_views, delta_payload) = run(GossipMode::Delta);
        assert_eq!(full_views, delta_views, "views must be byte-identical");
        assert!(
            delta_payload * 10 <= full_payload,
            "expected ≥10x payload reduction, got {full_payload} vs {delta_payload}"
        );
    }
}
