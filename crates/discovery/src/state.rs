//! Runtime-agnostic Discovery state machine.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_detector::{CertPool, PdCertificate};
use cupft_graph::{KnowledgeView, ProcessId, ProcessSet};
use cupft_wire::{put_len, Decode, Encode, Reader};

use crate::msgs::{DiscoveryMsg, SyncState};

/// Timer kind used by discovery actors for the periodic round.
pub const DISCOVERY_TICK: u64 = 0xD15C;

/// Magic bytes opening every [`DiscoveryState`] snapshot.
const SNAPSHOT_MAGIC: &[u8; 7] = b"CUPFTSS";

/// Snapshot layout version (the byte after the magic — historically the
/// `\x01` of the original `CUPFTSS\x01` header, now an explicit version
/// field). Bump when the layout changes; [`DiscoveryState::from_bytes`]
/// rejects versions it does not speak.
const SNAPSHOT_VERSION: u8 = 1;

/// How a [`DiscoveryState`] disseminates its certificate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GossipMode {
    /// Answer `GETPDS` with only the certificates the requester's have-set
    /// is missing, and skip `GETPDS` rounds toward peers whose last
    /// reported [`SyncState`] matches ours. Observationally equivalent to
    /// [`GossipMode::Full`] (see the [crate docs](crate) for the
    /// invariant argument) at a fraction of the delivered payload.
    #[default]
    Delta,
    /// The literal Algorithm 1: every `GETPDS` is answered with the whole
    /// `S_PD` and every round polls every known peer. Kept as the
    /// baseline the equivalence sweep and the payload benches compare
    /// against.
    Full,
}

/// The per-process state of Algorithm 1.
///
/// Holds the three sets of the paper — `S_PD` (as verified certificates),
/// `S_known`, `S_received` (both inside the [`KnowledgeView`]) — and
/// produces outgoing messages as plain values, so the same state machine
/// runs inside the simulator, the threaded runtime, and the full protocol
/// nodes.
///
/// Certificates are held as `Arc<PdCertificate>` and re-shipped by
/// reference; signature verification is memoized by certificate
/// fingerprint, so each distinct record pays for at most one HMAC check
/// per process no matter how often the network re-delivers it.
///
/// # Example
///
/// ```
/// use cupft_detector::SystemSetup;
/// use cupft_discovery::DiscoveryState;
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let setup = SystemSetup::new(&g);
/// let mut s = DiscoveryState::from_setup(&setup, ProcessId::new(1)).unwrap();
/// let round = s.tick();
/// assert_eq!(round.len(), 1); // GETPDS to process 2
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryState {
    id: ProcessId,
    registry: KeyRegistry,
    view: KnowledgeView,
    certs: BTreeMap<ProcessId, Arc<PdCertificate>>,
    /// Cached snapshot of the held certificate authors (== `S_received`),
    /// shipped inside `GETPDS` as a shared `Arc`.
    have: Arc<ProcessSet>,
    /// Summary of the held certificate set.
    sync: SyncState,
    /// Memoized verification verdicts by fingerprint — one map, one probe
    /// per unique fingerprint on the absorb path (`true` = signature
    /// verified, `false` = known forgery: replays of either are settled
    /// without another HMAC check and without re-counting).
    verdicts: HashMap<u128, bool>,
    /// Optional system-wide verdict memo (the [`CertPool`] of the run's
    /// `SystemSetup`): when attached, a certificate any process — or the
    /// verification stage's worker pool — has already checked is never
    /// re-verified here; this process only records the shared verdict in
    /// its local memo (so per-process forgery counters keep their exact
    /// serial semantics).
    shared: Option<Arc<CertPool>>,
    /// The last [`SyncState`] each peer reported (via either message
    /// kind). Delta mode skips `GETPDS` toward peers whose report matches
    /// our own state.
    peer_state: BTreeMap<ProcessId, SyncState>,
    mode: GossipMode,
    changed: bool,
    /// Certificates that failed signature verification (forgery attempts),
    /// counted once per distinct record.
    pub rejected_forgeries: u64,
    /// Verified certificates conflicting with an earlier one from the same
    /// author (only a Byzantine author can produce these; first record
    /// wins).
    pub conflicting_records: u64,
}

impl DiscoveryState {
    /// Initializes the state per Algorithm 1 line 1: the view starts from
    /// the process's own PD and `S_PD = {⟨i, PDᵢ⟩ᵢ}`. Dissemination
    /// defaults to [`GossipMode::Delta`].
    pub fn new(key: &SigningKey, registry: KeyRegistry, pd: ProcessSet) -> Self {
        let own_cert = Arc::new(PdCertificate::sign(key, &pd));
        DiscoveryState::with_own_cert(key, registry, pd, own_cert)
    }

    fn with_own_cert(
        key: &SigningKey,
        registry: KeyRegistry,
        pd: ProcessSet,
        own_cert: Arc<PdCertificate>,
    ) -> Self {
        let id = ProcessId::new(key.id());
        let mut sync = SyncState::default();
        sync.add(own_cert.fingerprint());
        let mut verdicts = HashMap::new();
        verdicts.insert(own_cert.fingerprint(), true);
        let mut certs = BTreeMap::new();
        certs.insert(id, own_cert);
        DiscoveryState {
            id,
            registry,
            view: KnowledgeView::new(id, pd),
            certs,
            have: Arc::new([id].into_iter().collect()),
            sync,
            verdicts,
            shared: None,
            peer_state: BTreeMap::new(),
            mode: GossipMode::default(),
            changed: true,
            rejected_forgeries: 0,
            conflicting_records: 0,
        }
    }

    /// Convenience constructor from a [`cupft_detector::SystemSetup`]; the
    /// process's own certificate is interned in the setup's shared
    /// [`cupft_detector::CertPool`], so every actor of a simulation holds
    /// the same allocation.
    ///
    /// Returns `None` if `id` is not part of the setup.
    pub fn from_setup(setup: &cupft_detector::SystemSetup, id: ProcessId) -> Option<Self> {
        let key = setup.key_of(id)?;
        let own_cert = setup.shared_certificate_for(id)?;
        Some(DiscoveryState::with_own_cert(
            key,
            setup.registry().clone(),
            setup.oracle().pd_of(id),
            own_cert,
        ))
    }

    /// Switches the dissemination mode (builder style; use before the
    /// first round).
    pub fn with_gossip(mut self, mode: GossipMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a system-wide verification memo (builder style). With a
    /// shared pool, a fingerprint verified by *any* process or stage
    /// worker is settled for all of them — verification is a pure function
    /// of the record bytes against the one shared registry, so whoever
    /// checks first checks for everyone. Decisions are unchanged: only
    /// *who pays* for the HMAC moves, never the verdict.
    pub fn with_shared_pool(mut self, pool: Arc<CertPool>) -> Self {
        self.shared = Some(pool);
        self
    }

    /// The dissemination mode in effect.
    pub fn gossip_mode(&self) -> GossipMode {
        self.mode
    }

    /// This process's ID.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The accumulated knowledge view (`S_known`, `S_received`, PDs).
    pub fn view(&self) -> &KnowledgeView {
        &self.view
    }

    /// The verified certificates held (`S_PD`).
    pub fn certificates(&self) -> impl Iterator<Item = &PdCertificate> + '_ {
        self.certs.values().map(|c| c.as_ref())
    }

    /// The held certificates as shared handles.
    pub fn shared_certificates(&self) -> impl Iterator<Item = &Arc<PdCertificate>> + '_ {
        self.certs.values()
    }

    /// The summary of the held certificate set (what peers receive in
    /// every message).
    pub fn sync_state(&self) -> SyncState {
        self.sync
    }

    /// Whether the view changed since the last [`Self::take_changed`].
    pub fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// Whether a round would currently skip `GETPDS` toward `peer`
    /// (delta mode only: the peer's last reported state matches ours).
    pub fn peer_in_sync(&self, peer: ProcessId) -> bool {
        self.mode == GossipMode::Delta && self.peer_state.get(&peer) == Some(&self.sync)
    }

    /// One periodic round (Algorithm 1 line 2): `GETPDS` to every known
    /// process except ourselves — minus, in delta mode, the peers whose
    /// certificate set provably matches ours already (they have nothing we
    /// lack, and the moment either side changes the states stop matching
    /// and polling resumes).
    pub fn tick(&self) -> Vec<(ProcessId, DiscoveryMsg)> {
        self.view
            .known()
            .iter()
            .copied()
            .filter(|&p| p != self.id && !self.peer_in_sync(p))
            .map(|p| {
                (
                    p,
                    DiscoveryMsg::GetPds {
                        have: self.have.clone(),
                        state: self.sync,
                    },
                )
            })
            .collect()
    }

    /// Handles an incoming message, returning the responses to send.
    pub fn handle(&mut self, from: ProcessId, msg: DiscoveryMsg) -> Vec<(ProcessId, DiscoveryMsg)> {
        match msg {
            DiscoveryMsg::GetPds { have, state } => {
                self.peer_state.insert(from, state);
                // Line 3: send S_PD to the requester — all of it, or (delta
                // mode) only the certificates the requester's have-set is
                // missing. The delta is computed statelessly from the
                // request itself, so a lost reply is simply recomputed on
                // the requester's next round: nothing is ever marked
                // "already sent" without the requester proving it.
                let certs: Vec<Arc<PdCertificate>> = match self.mode {
                    GossipMode::Full => self.certs.values().cloned().collect(),
                    GossipMode::Delta => self
                        .certs
                        .iter()
                        .filter(|(author, _)| !have.contains(author))
                        .map(|(_, c)| c.clone())
                        .collect(),
                };
                vec![(
                    from,
                    DiscoveryMsg::SetPds {
                        certs: certs.into(),
                        state: self.sync,
                    },
                )]
            }
            DiscoveryMsg::SetPds { certs, state } => {
                self.peer_state.insert(from, state);
                self.absorb_batch(&certs);
                Vec::new()
            }
        }
    }

    /// Absorbs one signed PD record (Algorithm 1 lines 4–6): discard
    /// duplicates by equality (fingerprint fast path) **before** paying
    /// for signature verification, verify at most once per distinct
    /// record — with a *single* memo probe per unique fingerprint (local
    /// verdict map first, then the shared pool, then the HMAC itself) —
    /// reject conflicts, update the view.
    pub fn absorb(&mut self, record: Arc<PdCertificate>) {
        let fp = record.fingerprint();
        let author = record.author();
        if let Some(existing) = self.certs.get(&author) {
            if **existing == *record {
                return; // exact duplicate: no verification, no counters
            }
        }
        if !self.settle_verdict(fp, &record) {
            return; // forgery (fresh or replayed): counted at most once
        }
        match self.certs.get(&author) {
            Some(_) => {
                // Equivocating author (necessarily Byzantine): first wins.
                self.conflicting_records += 1;
            }
            None => {
                let pd = record.pd();
                self.sync.add(fp);
                Arc::make_mut(&mut self.have).insert(author);
                self.certs.insert(author, record);
                if self.view.record_pd(author, pd) {
                    self.changed = true;
                }
            }
        }
    }

    /// Absorbs a whole `SETPDS` bundle. With a shared pool attached the
    /// bundle's locally-unseen fingerprints are settled through one
    /// [`CertPool::verify_batch`] call first — one memo lock acquisition
    /// and one registry batch session for the whole bundle instead of per
    /// record — then each record runs the ordinary stateful absorb
    /// against the now-warm local memo. Verdicts, counters, and view
    /// updates are byte-identical to absorbing the records one by one.
    pub fn absorb_batch(&mut self, certs: &[Arc<PdCertificate>]) {
        if certs.len() > 1 {
            if let Some(pool) = self.shared.clone() {
                let misses: Vec<Arc<PdCertificate>> = certs
                    .iter()
                    .filter(|c| !self.verdicts.contains_key(&c.fingerprint()))
                    .cloned()
                    .collect();
                if !misses.is_empty() {
                    let verdicts = pool.verify_batch(&misses, &self.registry);
                    for (cert, ok) in misses.iter().zip(verdicts) {
                        self.record_local_verdict(cert.fingerprint(), ok);
                    }
                }
            }
        }
        for record in certs {
            self.absorb(record.clone());
        }
    }

    /// Settles the verification verdict for `fp` with exactly one local
    /// memo probe; on a local miss, consults the shared pool (which
    /// verifies on *its* miss), or verifies directly when no pool is
    /// attached. The per-process forgery counter bumps only when the
    /// verdict enters the local memo — once per distinct fingerprint per
    /// process, exactly the serial semantics.
    fn settle_verdict(&mut self, fp: u128, record: &PdCertificate) -> bool {
        if let Some(&ok) = self.verdicts.get(&fp) {
            return ok;
        }
        let ok = match &self.shared {
            Some(pool) => pool.verify_cert(record, &self.registry),
            None => record.verify(&self.registry),
        };
        self.record_local_verdict(fp, ok);
        ok
    }

    /// First local sighting of a verdict: memoize it and count a forgery.
    fn record_local_verdict(&mut self, fp: u128, ok: bool) {
        if self.verdicts.insert(fp, ok).is_none() && !ok {
            self.rejected_forgeries += 1;
        }
    }

    /// The attached system-wide verification memo, if any — exposed so a
    /// crash-recovering node can re-attach the run's pool to a state
    /// rebuilt from a snapshot (the pool itself is process-shared and is
    /// never serialized).
    pub fn shared_pool(&self) -> Option<&Arc<CertPool>> {
        self.shared.as_ref()
    }

    /// Seeds `S_known` with extra identifiers without recording PDs: the
    /// bootstrap hint handed to a late joiner (its oracle PD may be empty,
    /// but it was told about a few live peers out of band). Subsequent
    /// rounds poll the seeds like any known process.
    pub fn seed_known(&mut self, peers: &ProcessSet) {
        for &p in peers {
            if p != self.id && self.view.learn(p) {
                self.changed = true;
            }
        }
    }

    /// Advances the membership incarnation after a crash-recovery.
    ///
    /// The bumped epoch makes this process's reported [`SyncState`] unequal
    /// to anything peers recorded about its previous incarnation (and vice
    /// versa), so the delta-gossip sync-skip re-arms on both sides — a
    /// rejoiner with a restored-but-stale `S_PD` can never be skipped
    /// forever. Stale per-peer reports from before the crash are dropped
    /// for the same reason.
    pub fn bump_epoch(&mut self) {
        self.sync.epoch = self.sync.epoch.wrapping_add(1);
        self.peer_state.clear();
        self.changed = true;
    }

    /// Serializes the durable core of the state — identity, gossip mode,
    /// membership epoch, `S_known`, and the verified certificate set — as a
    /// versioned, length-prefixed byte string built from the
    /// [`cupft_wire::Encode`] codecs (hand-rolled; no serde). The layout
    /// is byte-for-byte what this codec produced before the wire traits
    /// existed: the traits adopted the snapshot's conventions, not the
    /// other way around.
    ///
    /// Volatile fields (per-peer sync reports, verdict memos, forgery
    /// counters, the shared pool handle) are deliberately excluded: a
    /// rejoining node must re-learn the world's state, and memo/counter
    /// contents are observability, not protocol state. The encoding is
    /// canonical (sorted sets, certificates in author order), so
    /// `to_bytes ∘ from_bytes` is the identity on byte strings.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.certs.len() * 96);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        self.id.encode(&mut out);
        out.push(match self.mode {
            GossipMode::Delta => 0,
            GossipMode::Full => 1,
        });
        self.sync.epoch.encode(&mut out);
        self.view.known().encode(&mut out);
        put_len(&mut out, self.certs.len());
        for cert in self.certs.values() {
            cert.encode(&mut out);
        }
        out
    }

    /// Rebuilds a state from a [`Self::to_bytes`] snapshot.
    ///
    /// Every serialized certificate is re-absorbed through the ordinary
    /// verification path against `registry` (the snapshot carries raw
    /// signature bytes, not trust), so a tampered snapshot degrades to
    /// rejected records rather than poisoned state. Returns `None` on a
    /// malformed or truncated snapshot, or when the snapshot lacks the
    /// owner's own certificate.
    ///
    /// The rebuilt state has fresh volatile fields (empty peer reports, no
    /// shared pool); callers re-attach the pool via
    /// [`Self::with_shared_pool`] and bump the incarnation via
    /// [`Self::bump_epoch`] as the *recovery* — distinct from mere
    /// deserialization, which round-trips byte-identically.
    pub fn from_bytes(bytes: &[u8], registry: KeyRegistry) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.take(SNAPSHOT_MAGIC.len()).ok()? != SNAPSHOT_MAGIC {
            return None;
        }
        if r.u8().ok()? != SNAPSHOT_VERSION {
            return None;
        }
        let id = ProcessId::decode(&mut r).ok()?;
        let mode = match r.u8().ok()? {
            0 => GossipMode::Delta,
            1 => GossipMode::Full,
            _ => return None,
        };
        let epoch = r.u32().ok()?;
        let known = ProcessSet::decode(&mut r).ok()?;
        let cert_count = r.len_prefix().ok()?;
        let mut certs = Vec::with_capacity(cert_count);
        for _ in 0..cert_count {
            certs.push(Arc::new(PdCertificate::decode(&mut r).ok()?));
        }
        // Trailing garbage: not our snapshot.
        r.finish().ok()?;
        let own = certs.iter().find(|c| c.author() == id)?.clone();
        let mut state = DiscoveryState {
            id,
            registry,
            view: KnowledgeView::new(id, own.pd()),
            certs: BTreeMap::new(),
            have: Arc::new([id].into_iter().collect()),
            sync: SyncState::default(),
            verdicts: HashMap::new(),
            shared: None,
            peer_state: BTreeMap::new(),
            mode,
            changed: true,
            rejected_forgeries: 0,
            conflicting_records: 0,
        };
        state.sync.add(own.fingerprint());
        state.verdicts.insert(own.fingerprint(), true);
        state.certs.insert(id, own);
        for cert in certs {
            if cert.author() != id {
                state.absorb(cert);
            }
        }
        // Re-seed identifiers that were known without a received PD (seed
        // peers, members learned only transitively) so S_known — and hence
        // the polling horizon and the re-serialized bytes — match exactly.
        state.seed_known(&known);
        state.sync.epoch = epoch;
        state.changed = true;
        Some(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_detector::SystemSetup;
    use cupft_graph::{process_set, DiGraph};

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn line_setup() -> SystemSetup {
        // 1 -> 2 -> 3 (plus reverse edges so everything is reachable)
        SystemSetup::new(&DiGraph::from_edges([(1, 2), (2, 1), (2, 3), (3, 2)]))
    }

    fn set_pds(certs: Vec<PdCertificate>) -> DiscoveryMsg {
        DiscoveryMsg::SetPds {
            certs: certs.into_iter().map(Arc::new).collect(),
            state: SyncState::default(),
        }
    }

    fn get_pds_from(state: &DiscoveryState) -> DiscoveryMsg {
        DiscoveryMsg::GetPds {
            have: Arc::new(state.view().received()),
            state: state.sync_state(),
        }
    }

    #[test]
    fn initial_state_matches_line_1() {
        let setup = line_setup();
        let s = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        assert_eq!(*s.view().known(), process_set([1, 2]));
        assert_eq!(s.view().received(), process_set([1]));
        assert_eq!(s.certificates().count(), 1);
        assert_eq!(s.sync_state().count, 1);
        assert_eq!(s.gossip_mode(), GossipMode::Delta);
    }

    #[test]
    fn tick_targets_known_processes() {
        let setup = line_setup();
        let s = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        let out = s.tick();
        let targets: ProcessSet = out.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, process_set([1, 3]));
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, DiscoveryMsg::GetPds { .. })));
    }

    #[test]
    fn getpds_answered_with_certificates() {
        let setup = line_setup();
        let mut s = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let out = s.handle(
            p(2),
            DiscoveryMsg::GetPds {
                have: Arc::new(process_set([2])),
                state: SyncState::default(),
            },
        );
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(*to, p(2));
        match msg {
            DiscoveryMsg::SetPds { certs, state } => {
                assert_eq!(certs.len(), 1);
                assert_eq!(*state, s.sync_state());
            }
            _ => panic!("expected SetPds"),
        }
    }

    #[test]
    fn delta_reply_omits_certs_the_requester_has() {
        let setup = line_setup();
        let mut s2 = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        s2.absorb(setup.shared_certificate_for(p(1)).unwrap());
        s2.absorb(setup.shared_certificate_for(p(3)).unwrap());
        // Requester already has 1's and its own cert: only 2, 3 remain.
        let out = s2.handle(
            p(1),
            DiscoveryMsg::GetPds {
                have: Arc::new(process_set([1])),
                state: SyncState::default(),
            },
        );
        match &out[0].1 {
            DiscoveryMsg::SetPds { certs, .. } => {
                let authors: ProcessSet = certs.iter().map(|c| c.author()).collect();
                assert_eq!(authors, process_set([2, 3]));
            }
            _ => panic!("expected SetPds"),
        }
        // Full mode ships everything regardless.
        let mut full = DiscoveryState::from_setup(&setup, p(2))
            .unwrap()
            .with_gossip(GossipMode::Full);
        full.absorb(setup.shared_certificate_for(p(1)).unwrap());
        let out = full.handle(
            p(1),
            DiscoveryMsg::GetPds {
                have: Arc::new(process_set([1, 2])),
                state: SyncState::default(),
            },
        );
        match &out[0].1 {
            DiscoveryMsg::SetPds { certs, .. } => assert_eq!(certs.len(), 2),
            _ => panic!("expected SetPds"),
        }
    }

    #[test]
    fn tick_suppressed_only_while_peer_matches() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let mut s2 = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        // Exchange until both hold {1, 2}'s certs.
        s1.absorb(setup.shared_certificate_for(p(2)).unwrap());
        s2.absorb(setup.shared_certificate_for(p(1)).unwrap());
        // 1 learns 2's (matching) state from a GETPDS.
        s1.handle(p(2), get_pds_from(&s2));
        assert!(s1.peer_in_sync(p(2)));
        assert!(
            s1.tick().iter().all(|(to, _)| *to != p(2)),
            "matched peer must be skipped"
        );
        // 1's own set changes (3's cert arrives): suppression lifts.
        s1.absorb(setup.shared_certificate_for(p(3)).unwrap());
        assert!(!s1.peer_in_sync(p(2)));
        assert!(s1.tick().iter().any(|(to, _)| *to == p(2)));
        // Full mode never suppresses.
        let full = s2.clone().with_gossip(GossipMode::Full);
        assert!(!full.peer_in_sync(p(1)));
    }

    #[test]
    fn setpds_expands_knowledge_transitively() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let cert2 = setup.certificate_for(p(2)).unwrap();
        s1.handle(p(2), set_pds(vec![cert2]));
        // 2's PD = {1,3}: process 1 now knows 3.
        assert_eq!(*s1.view().known(), process_set([1, 2, 3]));
        assert_eq!(s1.view().received(), process_set([1, 2]));
        assert!(s1.take_changed());
        assert!(!s1.take_changed());
    }

    #[test]
    fn forged_records_rejected_and_counted_once() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let forged = PdCertificate::forge(p(2), &process_set([999]));
        s1.handle(p(2), set_pds(vec![forged.clone()]));
        assert_eq!(s1.rejected_forgeries, 1);
        assert!(!s1.view().knows(p(999)));
        assert!(!s1.view().has_pd_of(p(2)));
        // A replay of the same forged record is discarded without
        // re-verifying and without double-counting.
        s1.handle(p(2), set_pds(vec![forged]));
        assert_eq!(s1.rejected_forgeries, 1);
        // A *different* forgery is a new record and counts again.
        s1.absorb(Arc::new(PdCertificate::forge(p(2), &process_set([998]))));
        assert_eq!(s1.rejected_forgeries, 2);
    }

    #[test]
    fn equivocating_pd_keeps_first() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let key2 = setup.key_of(p(2)).unwrap();
        let a = PdCertificate::sign(key2, &process_set([1, 3]));
        let b = PdCertificate::sign(key2, &process_set([42]));
        s1.absorb(Arc::new(a));
        s1.absorb(Arc::new(b));
        assert_eq!(s1.conflicting_records, 1);
        assert_eq!(s1.view().pd_of(p(2)), Some(&process_set([1, 3])));
        assert!(!s1.view().knows(p(42)));
    }

    #[test]
    fn duplicate_record_is_noop() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let cert2 = setup.shared_certificate_for(p(2)).unwrap();
        s1.absorb(cert2.clone());
        let _ = s1.take_changed();
        let sync_before = s1.sync_state();
        s1.absorb(cert2);
        assert!(!s1.take_changed());
        assert_eq!(s1.conflicting_records, 0);
        assert_eq!(s1.sync_state(), sync_before);
    }

    #[test]
    fn sync_state_tracks_cert_set() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let mut s3 = DiscoveryState::from_setup(&setup, p(3)).unwrap();
        for id in [1, 2, 3] {
            s1.absorb(setup.shared_certificate_for(p(id)).unwrap());
            s3.absorb(setup.shared_certificate_for(p(id)).unwrap());
        }
        assert_eq!(s1.sync_state(), s3.sync_state());
        assert_eq!(s1.sync_state().count, 3);
    }

    #[test]
    fn missing_process_in_setup() {
        let setup = line_setup();
        assert!(DiscoveryState::from_setup(&setup, p(99)).is_none());
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let setup = line_setup();
        let mut s2 = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        s2.absorb(setup.shared_certificate_for(p(1)).unwrap());
        s2.absorb(setup.shared_certificate_for(p(3)).unwrap());
        s2.seed_known(&process_set([42]));
        let bytes = s2.to_bytes();
        let restored = DiscoveryState::from_bytes(&bytes, setup.registry().clone()).unwrap();
        assert_eq!(restored.id(), p(2));
        assert_eq!(restored.view(), s2.view());
        assert_eq!(restored.sync_state(), s2.sync_state());
        assert_eq!(restored.gossip_mode(), s2.gossip_mode());
        assert_eq!(
            restored.certificates().collect::<Vec<_>>(),
            s2.certificates().collect::<Vec<_>>()
        );
        // The criterion the churn layer relies on: a second serialization
        // reproduces the exact bytes.
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn snapshot_preserves_mode_and_epoch() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1))
            .unwrap()
            .with_gossip(GossipMode::Full);
        s1.bump_epoch();
        s1.bump_epoch();
        let bytes = s1.to_bytes();
        let restored = DiscoveryState::from_bytes(&bytes, setup.registry().clone()).unwrap();
        assert_eq!(restored.gossip_mode(), GossipMode::Full);
        assert_eq!(restored.sync_state().epoch, 2);
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        let setup = line_setup();
        let s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let bytes = s1.to_bytes();
        let reg = setup.registry().clone();
        // Truncations at every prefix length fail cleanly.
        for cut in 0..bytes.len() {
            assert!(DiscoveryState::from_bytes(&bytes[..cut], reg.clone()).is_none());
        }
        // Wrong magic, trailing garbage, empty input.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(DiscoveryState::from_bytes(&wrong, reg.clone()).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DiscoveryState::from_bytes(&trailing, reg.clone()).is_none());
        assert!(DiscoveryState::from_bytes(&[], reg).is_none());
    }

    #[test]
    fn tampered_snapshot_certificate_is_rejected_on_restore() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        s1.absorb(setup.shared_certificate_for(p(2)).unwrap());
        let mut bytes = s1.to_bytes();
        // Flip a byte in the last certificate's signature tag: the record
        // re-enters through the verification path and is dropped.
        let len = bytes.len();
        bytes[len - 1] ^= 0xff;
        let restored = DiscoveryState::from_bytes(&bytes, setup.registry().clone());
        match restored {
            // Own cert tampered: restore refuses outright (author ordering
            // decides which record sits last; either outcome is sound).
            None => {}
            Some(r) => {
                assert!(r.rejected_forgeries >= 1 || r.certificates().count() < 2);
            }
        }
    }

    #[test]
    fn bump_epoch_rearms_sync_skip() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let mut s2 = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        s1.absorb(setup.shared_certificate_for(p(2)).unwrap());
        s2.absorb(setup.shared_certificate_for(p(1)).unwrap());
        s1.handle(p(2), get_pds_from(&s2));
        assert!(s1.peer_in_sync(p(2)));
        // 1 crash-recovers with an identical certificate set: the epoch
        // bump alone must lift suppression on 1's side...
        s1.bump_epoch();
        assert!(!s1.peer_in_sync(p(2)));
        // ...and on 2's side once it hears the new incarnation's state.
        s2.handle(p(1), get_pds_from(&s1));
        assert!(!s2.peer_in_sync(p(1)));
    }

    #[test]
    fn shared_pool_settles_verdicts_across_processes() {
        let setup = line_setup();
        let pool = setup.pool().clone();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1))
            .unwrap()
            .with_shared_pool(pool.clone());
        let mut s3 = DiscoveryState::from_setup(&setup, p(3))
            .unwrap()
            .with_shared_pool(pool.clone());
        let forged = Arc::new(PdCertificate::forge(p(2), &process_set([999])));
        let good = setup.shared_certificate_for(p(2)).unwrap();
        s1.absorb(forged.clone());
        s1.absorb(good.clone());
        // The pool settled both fingerprints; s3 absorbs without paying
        // for another HMAC, with identical per-process outcomes.
        assert_eq!(pool.verdict(forged.fingerprint()), Some(false));
        assert_eq!(pool.verdict(good.fingerprint()), Some(true));
        s3.absorb(forged);
        s3.absorb(good);
        assert_eq!(s1.rejected_forgeries, 1);
        assert_eq!(s3.rejected_forgeries, 1);
        assert_eq!(pool.forged_records(), 1);
        assert!(s1.view().has_pd_of(p(2)));
        assert!(s3.view().has_pd_of(p(2)));
    }

    #[test]
    fn absorb_batch_matches_serial_absorb() {
        let setup = line_setup();
        let key2 = setup.key_of(p(2)).unwrap();
        let bundle: Vec<Arc<PdCertificate>> = vec![
            setup.shared_certificate_for(p(2)).unwrap(),
            Arc::new(PdCertificate::forge(p(3), &process_set([7]))),
            // Equivocation from 2: verified but conflicting, first wins.
            Arc::new(PdCertificate::sign(key2, &process_set([42]))),
            // Replay of the forgery inside the same bundle.
            Arc::new(PdCertificate::forge(p(3), &process_set([7]))),
        ];
        let mut serial = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        for record in &bundle {
            serial.absorb(record.clone());
        }
        let mut pooled = DiscoveryState::from_setup(&setup, p(1))
            .unwrap()
            .with_shared_pool(setup.pool().clone());
        pooled.absorb_batch(&bundle);
        assert_eq!(serial.rejected_forgeries, pooled.rejected_forgeries);
        assert_eq!(serial.conflicting_records, pooled.conflicting_records);
        assert_eq!(serial.sync_state(), pooled.sync_state());
        assert_eq!(serial.view(), pooled.view());
        assert_eq!(serial.rejected_forgeries, 1);
        assert_eq!(serial.conflicting_records, 1);
    }
}
