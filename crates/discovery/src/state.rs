//! Runtime-agnostic Discovery state machine.

use std::collections::BTreeMap;

use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_detector::PdCertificate;
use cupft_graph::{KnowledgeView, ProcessId, ProcessSet};

use crate::msgs::DiscoveryMsg;

/// Timer kind used by discovery actors for the periodic round.
pub const DISCOVERY_TICK: u64 = 0xD15C;

/// The per-process state of Algorithm 1.
///
/// Holds the three sets of the paper — `S_PD` (as verified certificates),
/// `S_known`, `S_received` (both inside the [`KnowledgeView`]) — and
/// produces outgoing messages as plain values, so the same state machine
/// runs inside the simulator, the threaded runtime, and the full protocol
/// nodes.
///
/// # Example
///
/// ```
/// use cupft_detector::SystemSetup;
/// use cupft_discovery::DiscoveryState;
/// use cupft_graph::{DiGraph, ProcessId};
///
/// let g = DiGraph::from_edges([(1, 2), (2, 1)]);
/// let setup = SystemSetup::new(&g);
/// let mut s = DiscoveryState::from_setup(&setup, ProcessId::new(1)).unwrap();
/// let round = s.tick();
/// assert_eq!(round.len(), 1); // GETPDS to process 2
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryState {
    id: ProcessId,
    registry: KeyRegistry,
    view: KnowledgeView,
    certs: BTreeMap<ProcessId, PdCertificate>,
    changed: bool,
    /// Certificates that failed signature verification (forgery attempts).
    pub rejected_forgeries: u64,
    /// Verified certificates conflicting with an earlier one from the same
    /// author (only a Byzantine author can produce these; first record
    /// wins).
    pub conflicting_records: u64,
}

impl DiscoveryState {
    /// Initializes the state per Algorithm 1 line 1: the view starts from
    /// the process's own PD and `S_PD = {⟨i, PDᵢ⟩ᵢ}`.
    pub fn new(key: &SigningKey, registry: KeyRegistry, pd: ProcessSet) -> Self {
        let id = ProcessId::new(key.id());
        let own_cert = PdCertificate::sign(key, &pd);
        let mut certs = BTreeMap::new();
        certs.insert(id, own_cert);
        DiscoveryState {
            id,
            registry,
            view: KnowledgeView::new(id, pd),
            certs,
            changed: true,
            rejected_forgeries: 0,
            conflicting_records: 0,
        }
    }

    /// Convenience constructor from a [`cupft_detector::SystemSetup`].
    ///
    /// Returns `None` if `id` is not part of the setup.
    pub fn from_setup(setup: &cupft_detector::SystemSetup, id: ProcessId) -> Option<Self> {
        let key = setup.key_of(id)?;
        Some(DiscoveryState::new(
            key,
            setup.registry().clone(),
            setup.oracle().pd_of(id),
        ))
    }

    /// This process's ID.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The accumulated knowledge view (`S_known`, `S_received`, PDs).
    pub fn view(&self) -> &KnowledgeView {
        &self.view
    }

    /// The verified certificates held (`S_PD`).
    pub fn certificates(&self) -> impl Iterator<Item = &PdCertificate> + '_ {
        self.certs.values()
    }

    /// Whether the view changed since the last [`Self::take_changed`].
    pub fn take_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }

    /// One periodic round (Algorithm 1 line 2): `GETPDS` to every known
    /// process except ourselves.
    pub fn tick(&self) -> Vec<(ProcessId, DiscoveryMsg)> {
        self.view
            .known()
            .iter()
            .copied()
            .filter(|&p| p != self.id)
            .map(|p| (p, DiscoveryMsg::GetPds))
            .collect()
    }

    /// Handles an incoming message, returning the responses to send.
    pub fn handle(&mut self, from: ProcessId, msg: DiscoveryMsg) -> Vec<(ProcessId, DiscoveryMsg)> {
        match msg {
            DiscoveryMsg::GetPds => {
                // line 3: send S_PD to the requester
                vec![(
                    from,
                    DiscoveryMsg::SetPds(self.certs.values().cloned().collect()),
                )]
            }
            DiscoveryMsg::SetPds(records) => {
                for record in records {
                    self.absorb(record);
                }
                Vec::new()
            }
        }
    }

    /// Absorbs one signed PD record (Algorithm 1 lines 4–6): verify the
    /// signature, reject conflicts, update the view.
    pub fn absorb(&mut self, record: PdCertificate) {
        if !record.verify(&self.registry) {
            self.rejected_forgeries += 1;
            return;
        }
        let author = record.author();
        match self.certs.get(&author) {
            Some(existing) if *existing == record => {}
            Some(_) => {
                // Equivocating author (necessarily Byzantine): first wins.
                self.conflicting_records += 1;
            }
            None => {
                let pd = record.pd();
                self.certs.insert(author, record);
                if self.view.record_pd(author, pd) {
                    self.changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_detector::SystemSetup;
    use cupft_graph::{process_set, DiGraph};

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn line_setup() -> SystemSetup {
        // 1 -> 2 -> 3 (plus reverse edges so everything is reachable)
        SystemSetup::new(&DiGraph::from_edges([(1, 2), (2, 1), (2, 3), (3, 2)]))
    }

    #[test]
    fn initial_state_matches_line_1() {
        let setup = line_setup();
        let s = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        assert_eq!(*s.view().known(), process_set([1, 2]));
        assert_eq!(s.view().received(), process_set([1]));
        assert_eq!(s.certificates().count(), 1);
    }

    #[test]
    fn tick_targets_known_processes() {
        let setup = line_setup();
        let s = DiscoveryState::from_setup(&setup, p(2)).unwrap();
        let out = s.tick();
        let targets: ProcessSet = out.iter().map(|(t, _)| *t).collect();
        assert_eq!(targets, process_set([1, 3]));
        assert!(out.iter().all(|(_, m)| matches!(m, DiscoveryMsg::GetPds)));
    }

    #[test]
    fn getpds_answered_with_certificates() {
        let setup = line_setup();
        let mut s = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let out = s.handle(p(2), DiscoveryMsg::GetPds);
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(*to, p(2));
        match msg {
            DiscoveryMsg::SetPds(certs) => assert_eq!(certs.len(), 1),
            _ => panic!("expected SetPds"),
        }
    }

    #[test]
    fn setpds_expands_knowledge_transitively() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let cert2 = setup.certificate_for(p(2)).unwrap();
        s1.handle(p(2), DiscoveryMsg::SetPds(vec![cert2]));
        // 2's PD = {1,3}: process 1 now knows 3.
        assert_eq!(*s1.view().known(), process_set([1, 2, 3]));
        assert_eq!(s1.view().received(), process_set([1, 2]));
        assert!(s1.take_changed());
        assert!(!s1.take_changed());
    }

    #[test]
    fn forged_records_rejected_and_counted() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let forged = PdCertificate::forge(p(2), &process_set([999]));
        s1.handle(p(2), DiscoveryMsg::SetPds(vec![forged]));
        assert_eq!(s1.rejected_forgeries, 1);
        assert!(!s1.view().knows(p(999)));
        assert!(!s1.view().has_pd_of(p(2)));
    }

    #[test]
    fn equivocating_pd_keeps_first() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let key2 = setup.key_of(p(2)).unwrap();
        let a = PdCertificate::sign(key2, &process_set([1, 3]));
        let b = PdCertificate::sign(key2, &process_set([42]));
        s1.absorb(a);
        s1.absorb(b);
        assert_eq!(s1.conflicting_records, 1);
        assert_eq!(s1.view().pd_of(p(2)), Some(&process_set([1, 3])));
        assert!(!s1.view().knows(p(42)));
    }

    #[test]
    fn duplicate_record_is_noop() {
        let setup = line_setup();
        let mut s1 = DiscoveryState::from_setup(&setup, p(1)).unwrap();
        let cert2 = setup.certificate_for(p(2)).unwrap();
        s1.absorb(cert2.clone());
        let _ = s1.take_changed();
        s1.absorb(cert2);
        assert!(!s1.take_changed());
        assert_eq!(s1.conflicting_records, 0);
    }

    #[test]
    fn missing_process_in_setup() {
        let setup = line_setup();
        assert!(DiscoveryState::from_setup(&setup, p(99)).is_none());
    }
}
