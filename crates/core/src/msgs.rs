//! The unified message type spoken by all protocol nodes.

use cupft_committee::{CommitteeMsg, Value};
use cupft_discovery::DiscoveryMsg;
use cupft_net::Labeled;
use cupft_wire::{Decode, Encode, Reader, WireError};

/// Every message a BFT-CUP / BFT-CUPFT node can send or receive.
///
/// One message universe per simulation keeps the actor roster
/// heterogeneous (honest nodes, Byzantine strategies, naive guessers) while
/// staying statically typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMsg {
    /// Algorithm 1 traffic.
    Discovery(DiscoveryMsg),
    /// Committee consensus traffic (Algorithm 3 line 4).
    Committee(CommitteeMsg),
    /// "Send me the decided value" (Algorithm 3 line 6).
    GetDecidedVal,
    /// The decided value (Algorithm 3 line 10).
    DecidedVal(Value),
}

impl Labeled for NodeMsg {
    fn label(&self) -> &'static str {
        match self {
            NodeMsg::Discovery(m) => m.label(),
            NodeMsg::Committee(m) => m.label(),
            NodeMsg::GetDecidedVal => "GETDECIDEDVAL",
            NodeMsg::DecidedVal(_) => "DECIDEDVAL",
        }
    }

    fn payload_units(&self) -> u64 {
        match self {
            NodeMsg::Discovery(m) => m.payload_units(),
            _ => 0,
        }
    }
}

/// Wire form: `tag:u8` (0 = Discovery, 1 = Committee, 2 = GetDecidedVal,
/// 3 = DecidedVal) followed by the inner message's own encoding. This is
/// the payload type of every socket-runtime frame.
impl Encode for NodeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NodeMsg::Discovery(m) => {
                out.push(0);
                m.encode(out);
            }
            NodeMsg::Committee(m) => {
                out.push(1);
                m.encode(out);
            }
            NodeMsg::GetDecidedVal => out.push(2),
            NodeMsg::DecidedVal(v) => {
                out.push(3);
                v.encode(out);
            }
        }
    }
}

impl Decode for NodeMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(NodeMsg::Discovery(DiscoveryMsg::decode(r)?)),
            1 => Ok(NodeMsg::Committee(CommitteeMsg::decode(r)?)),
            2 => Ok(NodeMsg::GetDecidedVal),
            3 => Ok(NodeMsg::DecidedVal(Value::decode(r)?)),
            tag => Err(WireError::BadTag { ty: "NodeMsg", tag }),
        }
    }
}

impl From<DiscoveryMsg> for NodeMsg {
    fn from(m: DiscoveryMsg) -> Self {
        NodeMsg::Discovery(m)
    }
}

impl From<CommitteeMsg> for NodeMsg {
    fn from(m: CommitteeMsg) -> Self {
        NodeMsg::Committee(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_delegate() {
        let get = DiscoveryMsg::GetPds {
            have: std::sync::Arc::new(cupft_graph::ProcessSet::new()),
            state: cupft_discovery::SyncState::default(),
        };
        assert_eq!(NodeMsg::from(get.clone()).label(), "GETPDS");
        assert_eq!(NodeMsg::from(get).payload_units(), 0);
        assert_eq!(NodeMsg::GetDecidedVal.label(), "GETDECIDEDVAL");
        assert_eq!(
            NodeMsg::DecidedVal(Value::from_static(b"v")).label(),
            "DECIDEDVAL"
        );
    }
}
