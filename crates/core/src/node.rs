//! The full protocol node: Algorithm 3 with a pluggable identification
//! algorithm (Sink, Core, or the naive guesser).

use std::collections::BTreeMap;
use std::sync::Arc;

use cupft_committee::{view_of_timer, Committee, CommitteeMsg, Replica, ReplicaConfig, Value};
use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryState, GossipMode, DISCOVERY_TICK};
use cupft_graph::{CandidateSearch, ProcessId, ProcessSet};
use cupft_net::threaded::Board;
use cupft_net::{Actor, Context, Time};
use cupft_obs::{PhaseMark, Recorder};

use crate::detect::{CoreDetector, Detection, NaiveSinkGuesser, SinkDetector};
use crate::msgs::NodeMsg;

/// Timer kind for a scheduled late join (see [`NodeConfig::join_at`]).
/// The churn timer kinds live below the committee view-timer base and
/// away from [`DISCOVERY_TICK`], so the three timer namespaces never
/// collide.
pub const CHURN_JOIN_TICK: u64 = 0xC4A1;
/// Timer kind for a scheduled silent departure
/// (see [`NodeConfig::leave_at`]).
pub const CHURN_LEAVE_TICK: u64 = 0xC4A2;
/// Timer kind for a scheduled crash of a crash-recovering node
/// (see [`NodeConfig::crash_recover`]).
pub const CHURN_CRASH_TICK: u64 = 0xC4A3;
/// Timer kind for the recovery of a crashed node, armed by the crash
/// handler with the configured down time.
pub const CHURN_RECOVER_TICK: u64 = 0xC4A4;

/// Which identification algorithm the node runs before consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMode {
    /// Authenticated BFT-CUP: the fault threshold is provided
    /// (Algorithm 2).
    KnownThreshold(usize),
    /// BFT-CUPFT: no process knows the fault threshold (Algorithm 4).
    UnknownThreshold,
    /// Observation 1's naive guesser: adopt the best `isSink*` candidate
    /// after it has been stable for `settle_ticks` discovery rounds.
    /// Exists to reproduce the Theorem 7 impossibility.
    NaiveGuess {
        /// Discovery rounds a candidate must survive unchanged.
        settle_ticks: u32,
    },
}

/// Node tuning knobs.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Identification mode.
    pub mode: ProtocolMode,
    /// Discovery/learning tick period.
    pub discovery_period: u64,
    /// Committee replica configuration.
    pub replica: ReplicaConfig,
    /// If set, the node crashes (goes permanently silent) at this time —
    /// used for the crash-fault executions of Theorem 7.
    pub crash_at: Option<Time>,
    /// Run discovery with the literal full-`S_PD` dissemination of
    /// Algorithm 1 ([`cupft_discovery::GossipMode::Full`]) instead of the
    /// default delta gossip — the baseline the equivalence sweep and the
    /// payload benches compare against.
    pub full_gossip: bool,
    /// Consult (and feed) the run's shared certificate-verdict pool
    /// ([`cupft_detector::CertPool`]) from discovery, so each distinct
    /// certificate pays for at most one HMAC check *system-wide* rather
    /// than one per process, and a verification stage can settle verdicts
    /// before delivery. On by default; the serial baseline cells of the
    /// verify-pipeline parity tests switch it off. Only effective for
    /// nodes built via [`Node::from_setup`] (the pool lives on the
    /// [`SystemSetup`]).
    pub shared_verify: bool,
    /// Candidate-search knobs for sink/core identification. The default
    /// skips min-cut splitting on SCCs above
    /// [`CandidateSearch::cut_split_cutoff`] (64) — raise it here for
    /// topologies whose qualified core is embedded in a larger strongly
    /// connected component.
    pub search: CandidateSearch,
    /// Observability recorder (see [`cupft_obs`]): when set, the node
    /// stamps its [`PhaseMark`] timeline (first gossip → `S_PD` fixpoint →
    /// sink identified → view installed → decided) and records discovery /
    /// detection instruments. `None` (the default) records nothing — the
    /// per-event cost of the disabled path is one `Option` check.
    pub recorder: Option<Arc<Recorder>>,
    /// If set, the node is a *late joiner*: it stays dormant (sending and
    /// receiving nothing) until this tick, then bootstraps discovery from
    /// [`NodeConfig::seed_peers`] and participates normally.
    pub join_at: Option<Time>,
    /// Out-of-band bootstrap hints for a late joiner: processes seeded
    /// into `S_known` (without a PD record) at join time, so the joiner
    /// has someone to poll even when its own PD is sparse.
    pub seed_peers: ProcessSet,
    /// If set, the node departs silently at this tick: it halts forever
    /// with no goodbye message — indistinguishable, to the rest of the
    /// system, from a crash.
    pub leave_at: Option<Time>,
    /// If set as `(crash_tick, down_for)`, the node crashes at
    /// `crash_tick`, snapshots its durable discovery state
    /// ([`DiscoveryState::to_bytes`]), stays down for `down_for` ticks,
    /// then restores from the snapshot with a bumped membership epoch and
    /// rejoins discovery.
    pub crash_recover: Option<(Time, Time)>,
    /// Test-only fault: a crash-recovering node restores from a *fresh*
    /// discovery state instead of its snapshot, deliberately violating
    /// recovery-consistency. Exists so the adversarial churn tests can
    /// demonstrate the inject → flag → shrink loop on a real defect.
    pub broken_recovery: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            mode: ProtocolMode::UnknownThreshold,
            discovery_period: 20,
            replica: ReplicaConfig::default(),
            crash_at: None,
            full_gossip: false,
            shared_verify: true,
            search: CandidateSearch::default(),
            recorder: None,
            join_at: None,
            seed_peers: ProcessSet::new(),
            leave_at: None,
            crash_recover: None,
            broken_recovery: false,
        }
    }
}

/// The protocol phase a node is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Running discovery, identification pending (Algorithm 3 line 2).
    Discovering,
    /// Identified as a member; running committee consensus (line 4).
    Member,
    /// Identified as a non-member; learning the decision (lines 6–7).
    Learning,
}

/// A correct BFT-CUP / BFT-CUPFT process.
///
/// # Example
///
/// ```
/// use cupft_core::{Node, NodeConfig, Phase, ProtocolMode};
/// use cupft_detector::SystemSetup;
/// use cupft_graph::{fig4b, ProcessId};
///
/// let fig = fig4b();
/// let setup = SystemSetup::new(fig.graph());
/// let node = Node::from_setup(
///     &setup,
///     ProcessId::new(5),
///     cupft_committee::Value::from_static(b"proposal"),
///     NodeConfig {
///         mode: ProtocolMode::UnknownThreshold,
///         ..NodeConfig::default()
///     },
/// )
/// .expect("process 5 is in the graph");
/// assert_eq!(node.phase(), Phase::Discovering);
/// assert!(node.decision().is_none());
/// ```
#[derive(Debug)]
pub struct Node {
    id: ProcessId,
    key: SigningKey,
    registry: KeyRegistry,
    config: NodeConfig,
    my_value: Value,

    discovery: DiscoveryState,
    phase: Phase,
    detection: Option<Detection>,
    committee: Option<Committee>,
    replica: Option<Replica>,
    committee_backlog: Vec<(ProcessId, CommitteeMsg)>,
    decided: Option<Value>,
    pending_requests: ProcessSet,
    answers: BTreeMap<Vec<u8>, ProcessSet>,
    naive_stable: Option<(Detection, u32)>,
    /// Whether the view changed since the last identification attempt.
    /// Sink/Core detection is a pure function of the view, so re-running
    /// it on an unchanged view is wasted work — and running it on *every*
    /// view change (instead of once per discovery tick) is what made the
    /// candidate search the end-to-end bottleneck at n ≥ a few hundred.
    detect_dirty: bool,

    /// Simulated time at which identification succeeded.
    pub detection_time: Option<Time>,
    /// Simulated time at which the node decided.
    pub decided_time: Option<Time>,
    board: Option<Board<Vec<u8>>>,

    // Churn lifecycle (see the CHURN_* timer kinds).
    awaiting_join: bool,
    departed: bool,
    down: bool,
    recovered: bool,
    crash_snapshot: Option<Vec<u8>>,
    /// `(tick, S_received)` at the moment of a churn crash — the
    /// recovery-consistency invariant's "before" sample.
    pub crash_view: Option<(Time, ProcessSet)>,
    /// `(tick, S_received)` right after restoring from the crash
    /// snapshot — the invariant's "after" sample.
    pub recovery_view: Option<(Time, ProcessSet)>,
}

impl Node {
    fn gossip_of(config: &NodeConfig) -> GossipMode {
        if config.full_gossip {
            GossipMode::Full
        } else {
            GossipMode::Delta
        }
    }

    /// Creates a node from its key, the shared registry, its PD, and its
    /// proposal value.
    pub fn new(
        key: SigningKey,
        registry: KeyRegistry,
        pd: ProcessSet,
        my_value: Value,
        config: NodeConfig,
    ) -> Self {
        let discovery =
            DiscoveryState::new(&key, registry.clone(), pd).with_gossip(Node::gossip_of(&config));
        Node::with_discovery(key, registry, my_value, config, discovery)
    }

    fn with_discovery(
        key: SigningKey,
        registry: KeyRegistry,
        my_value: Value,
        config: NodeConfig,
        discovery: DiscoveryState,
    ) -> Self {
        Node {
            id: ProcessId::new(key.id()),
            key,
            registry,
            config,
            my_value,
            discovery,
            phase: Phase::Discovering,
            detection: None,
            committee: None,
            replica: None,
            committee_backlog: Vec::new(),
            decided: None,
            pending_requests: ProcessSet::new(),
            answers: BTreeMap::new(),
            naive_stable: None,
            detect_dirty: false,
            detection_time: None,
            decided_time: None,
            board: None,
            awaiting_join: false,
            departed: false,
            down: false,
            recovered: false,
            crash_snapshot: None,
            crash_view: None,
            recovery_view: None,
        }
    }

    /// Convenience constructor from a [`SystemSetup`]; the node's own
    /// certificate is interned in the setup's shared certificate pool.
    pub fn from_setup(
        setup: &SystemSetup,
        id: ProcessId,
        my_value: Value,
        config: NodeConfig,
    ) -> Option<Self> {
        let key = setup.key_of(id)?.clone();
        let mut discovery =
            DiscoveryState::from_setup(setup, id)?.with_gossip(Node::gossip_of(&config));
        if config.shared_verify {
            discovery = discovery.with_shared_pool(setup.pool().clone());
        }
        Some(Node::with_discovery(
            key,
            setup.registry().clone(),
            my_value,
            config,
            discovery,
        ))
    }

    /// Attaches a decision board (threaded runtime observability).
    pub fn with_board(mut self, board: Board<Vec<u8>>) -> Self {
        self.board = Some(board);
        self
    }

    /// The node's decision, if reached.
    pub fn decision(&self) -> Option<&Value> {
        self.decided.as_ref()
    }

    /// The node's current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The identification result, if reached.
    pub fn detection(&self) -> Option<&Detection> {
        self.detection.as_ref()
    }

    /// The discovery state (for assertions on `S_known` / `S_received`).
    pub fn discovery(&self) -> &DiscoveryState {
        &self.discovery
    }

    /// The committee replica's current view, when this node is a member.
    pub fn replica_view(&self) -> Option<u64> {
        self.replica.as_ref().map(|r| r.view())
    }

    /// Whether the node departed via a scheduled churn leave.
    pub fn departed(&self) -> bool {
        self.departed
    }

    /// Whether the node has been through a churn crash-recovery.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    fn crashed(&self, now: Time) -> bool {
        self.config.crash_at.is_some_and(|t| now >= t)
    }

    /// Whether the node is currently outside the system: not yet joined,
    /// silently departed, or down between a churn crash and its recovery.
    /// A dormant node sends and receives nothing.
    fn dormant(&self) -> bool {
        self.awaiting_join || self.departed || self.down
    }

    /// Stamps one phase-timeline mark when a recorder is attached.
    fn mark(&self, mark: PhaseMark, at: Time) {
        if let Some(rec) = &self.config.recorder {
            rec.mark(self.id.raw(), mark, at);
        }
    }

    fn send_discovery_round(&mut self, ctx: &mut Context<NodeMsg>) {
        let mut sent = 0u64;
        for (to, msg) in self.discovery.tick() {
            ctx.send(to, NodeMsg::Discovery(msg));
            sent += 1;
        }
        if let Some(rec) = &self.config.recorder {
            rec.counter_add("discovery_ticks", 1);
            rec.hist_record("discovery_round_msgs", sent);
        }
    }

    /// Enters the system: stamps first gossip, sends the opening discovery
    /// round, and arms the discovery tick. Runs at start for ordinary
    /// nodes and at the join tick for late joiners.
    fn begin_participation(&mut self, ctx: &mut Context<NodeMsg>) {
        self.mark(PhaseMark::FirstGossip, ctx.now());
        self.send_discovery_round(ctx);
        self.try_detect(ctx, true);
        ctx.set_timer(DISCOVERY_TICK, self.config.discovery_period);
    }

    fn churn_event(&self, what: &'static str, counter: &'static str, at: Time) {
        if let Some(rec) = &self.config.recorder {
            rec.event_at(self.id.raw(), what, at);
            rec.counter_add(counter, 1);
        }
    }

    fn on_churn_join(&mut self, ctx: &mut Context<NodeMsg>) {
        if !self.awaiting_join {
            return;
        }
        self.awaiting_join = false;
        let seeds = self.config.seed_peers.clone();
        self.discovery.seed_known(&seeds);
        self.churn_event("churn_join", "churn_joins", ctx.now());
        self.begin_participation(ctx);
    }

    fn on_churn_leave(&mut self, ctx: &mut Context<NodeMsg>) {
        self.departed = true;
        self.churn_event("churn_leave", "churn_leaves", ctx.now());
        ctx.halt();
    }

    fn on_churn_crash(&mut self, ctx: &mut Context<NodeMsg>) {
        if self.dormant() {
            return; // a crash tick cannot hit a node that is not up
        }
        let Some((_, down_for)) = self.config.crash_recover else {
            return;
        };
        // Durable state: the discovery snapshot and the decision (a decided
        // value is write-once and survives the crash — the decide-once
        // guard makes contradicting it structurally impossible). Everything
        // else is volatile and lost.
        self.crash_snapshot = Some(self.discovery.to_bytes());
        self.crash_view = Some((ctx.now(), self.discovery.view().received()));
        self.detection = None;
        self.committee = None;
        self.replica = None;
        self.committee_backlog.clear();
        self.pending_requests = ProcessSet::new();
        self.answers.clear();
        self.naive_stable = None;
        self.detect_dirty = false;
        self.phase = Phase::Discovering;
        self.down = true;
        self.churn_event("churn_crash", "churn_crashes", ctx.now());
        ctx.set_timer(CHURN_RECOVER_TICK, down_for.max(1));
    }

    fn on_churn_recover(&mut self, ctx: &mut Context<NodeMsg>) {
        if !self.down {
            return;
        }
        self.down = false;
        self.recovered = true;
        let snapshot = self.crash_snapshot.take().unwrap_or_default();
        let pool = self.discovery.shared_pool().cloned();
        let mut restored = if self.config.broken_recovery {
            // Deliberate defect (test-only): forget everything learned
            // before the crash and restart discovery from the bare PD.
            let own_pd = self
                .discovery
                .view()
                .pd_of(self.id)
                .cloned()
                .unwrap_or_default();
            DiscoveryState::new(&self.key, self.registry.clone(), own_pd)
                .with_gossip(Node::gossip_of(&self.config))
        } else {
            DiscoveryState::from_bytes(&snapshot, self.registry.clone())
                .expect("crash snapshot was produced by to_bytes")
        };
        if let Some(pool) = pool {
            restored = restored.with_shared_pool(pool);
        }
        // New incarnation: peers' sync-skip memo must not suppress the
        // rejoined node, and its own peer memos are gone with the restore.
        restored.bump_epoch();
        self.recovery_view = Some((ctx.now(), restored.view().received()));
        self.discovery = restored;
        self.phase = Phase::Discovering;
        self.detect_dirty = true;
        self.churn_event("churn_recover", "churn_recoveries", ctx.now());
        self.send_discovery_round(ctx);
        self.try_detect(ctx, true);
        ctx.set_timer(DISCOVERY_TICK, self.config.discovery_period);
    }

    fn try_detect(&mut self, ctx: &mut Context<NodeMsg>, on_tick: bool) {
        if self.detection.is_some() {
            return;
        }
        if let Some(rec) = &self.config.recorder {
            rec.counter_add("detect_attempts", 1);
            rec.hist_record(
                "detect_view_known",
                self.discovery.view().known().len() as u64,
            );
        }
        let view = self.discovery.view();
        let found = match self.config.mode {
            ProtocolMode::KnownThreshold(f) => {
                SinkDetector::with_search(f, self.config.search).check(view)
            }
            ProtocolMode::UnknownThreshold => {
                CoreDetector::with_search(self.config.search).check(view)
            }
            ProtocolMode::NaiveGuess { settle_ticks } => {
                if !on_tick {
                    return; // stability is counted in discovery rounds
                }
                let best = NaiveSinkGuesser::default().check(view);
                let Some(best) = best else {
                    self.naive_stable = None;
                    return;
                };
                match &mut self.naive_stable {
                    Some((prev, count)) if *prev == best => {
                        *count += 1;
                        if *count >= settle_ticks {
                            Some(best)
                        } else {
                            None
                        }
                    }
                    _ => {
                        self.naive_stable = Some((best, 1));
                        None
                    }
                }
            }
        };
        if let Some(detection) = found {
            self.adopt_detection(detection, ctx);
        }
    }

    fn adopt_detection(&mut self, detection: Detection, ctx: &mut Context<NodeMsg>) {
        self.detection_time = Some(ctx.now());
        self.mark(PhaseMark::SinkIdentified, ctx.now());
        let committee = Committee::new(detection.members.clone(), detection.threshold);
        // A recovered node never resumes the replica role: per-view vote
        // state is volatile, so a member that crashed mid-consensus could
        // equivocate against its own pre-crash votes if it restarted the
        // replica. It rejoins passively and adopts the committee's
        // decision through the ⌈(|S|+1)/2⌉ learning backstop instead.
        let is_member = detection.members.contains(&self.id) && !self.recovered;
        self.detection = Some(detection);
        self.committee = Some(committee.clone());
        if is_member {
            self.phase = Phase::Member;
            let mut replica = Replica::new(
                self.key.clone(),
                self.registry.clone(),
                committee,
                self.my_value.clone(),
                self.config.replica,
            );
            let fx = replica.start();
            self.replica = Some(replica);
            // View 0 is installed the moment the replica starts; learners
            // install the committee (their "view") at adoption too.
            self.mark(PhaseMark::ViewInstalled, ctx.now());
            self.apply_replica_effects(fx, ctx);
            // Drain committee messages that arrived before identification.
            let backlog = std::mem::take(&mut self.committee_backlog);
            for (from, msg) in backlog {
                let fx = self
                    .replica
                    .as_mut()
                    .expect("replica just created")
                    .handle(from, msg);
                self.apply_replica_effects(fx, ctx);
            }
        } else {
            self.phase = Phase::Learning;
            self.mark(PhaseMark::ViewInstalled, ctx.now());
            self.send_learning_round(ctx);
        }
    }

    fn send_learning_round(&mut self, ctx: &mut Context<NodeMsg>) {
        let Some(detection) = &self.detection else {
            return;
        };
        for &member in &detection.members {
            if member != self.id {
                ctx.send(member, NodeMsg::GetDecidedVal);
            }
        }
    }

    fn apply_replica_effects(&mut self, fx: cupft_committee::Effects, ctx: &mut Context<NodeMsg>) {
        for (to, msg) in fx.msgs {
            ctx.send(to, NodeMsg::Committee(msg));
        }
        if let Some((kind, delay)) = fx.timer {
            ctx.set_timer(kind, delay);
        }
        if let Some(value) = fx.decided {
            self.set_decided(value, ctx);
        }
    }

    fn set_decided(&mut self, value: Value, ctx: &mut Context<NodeMsg>) {
        if self.decided.is_some() {
            return; // Integrity: decide at most once
        }
        self.decided_time = Some(ctx.now());
        self.mark(PhaseMark::Decided, ctx.now());
        if let Some(board) = &self.board {
            board.publish(self.id, value.to_vec());
        }
        self.decided = Some(value.clone());
        let pending = std::mem::take(&mut self.pending_requests);
        for requester in pending {
            ctx.send(requester, NodeMsg::DecidedVal(value.clone()));
        }
    }

    fn on_decided_val(&mut self, from: ProcessId, value: Value, ctx: &mut Context<NodeMsg>) {
        if self.decided.is_some() || self.phase == Phase::Discovering {
            return;
        }
        let Some(committee) = &self.committee else {
            return;
        };
        if !committee.contains(from) {
            return;
        }
        let tally = self.answers.entry(value.to_vec()).or_default();
        tally.insert(from);
        // Algorithm 3 line 7: ⌈(|S|+1)/2⌉ identical answers from distinct
        // members.
        if tally.len() >= committee.learning_threshold() {
            self.set_decided(value, ctx);
        }
    }
}

impl Actor<NodeMsg> for Node {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        if self.crashed(ctx.now()) {
            return;
        }
        if let Some(at) = self.config.leave_at {
            ctx.set_timer(CHURN_LEAVE_TICK, at.saturating_sub(ctx.now()));
        }
        if let Some((at, _)) = self.config.crash_recover {
            ctx.set_timer(CHURN_CRASH_TICK, at.saturating_sub(ctx.now()));
        }
        if let Some(at) = self.config.join_at {
            // Dormant until the join tick: no first-gossip mark, no
            // discovery round, and every delivery is swallowed.
            self.awaiting_join = true;
            ctx.set_timer(CHURN_JOIN_TICK, at.saturating_sub(ctx.now()));
            return;
        }
        self.begin_participation(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        if self.crashed(ctx.now()) || self.dormant() {
            return;
        }
        match msg {
            NodeMsg::Discovery(m) => {
                for (to, out) in self.discovery.handle(from, m) {
                    ctx.send(to, NodeMsg::Discovery(out));
                }
                // Identification is deferred to the next discovery tick:
                // at scale the view changes on nearly every delivery, and
                // the candidate search is far too expensive to re-run per
                // message. Detection stays a pure function of the view, so
                // batching attempts per tick changes *when* a node
                // identifies (by < one period), never *what*.
                if self.discovery.take_changed() {
                    // Last write wins in the timeline: the final view
                    // change this node ever absorbs *is* its local `S_PD`
                    // fixpoint time.
                    self.mark(PhaseMark::SpdFixpoint, ctx.now());
                    if self.phase == Phase::Discovering {
                        self.detect_dirty = true;
                    }
                }
            }
            NodeMsg::Committee(m) => match &mut self.replica {
                Some(replica) => {
                    let fx = replica.handle(from, m);
                    self.apply_replica_effects(fx, ctx);
                }
                None => {
                    const BACKLOG_CAP: usize = 8192;
                    if self.committee_backlog.len() < BACKLOG_CAP {
                        self.committee_backlog.push((from, m));
                    }
                }
            },
            NodeMsg::GetDecidedVal => match &self.decided {
                Some(value) => ctx.send(from, NodeMsg::DecidedVal(value.clone())),
                None => {
                    // Algorithm 3 line 9: wait until val ≠ ⊥, then answer.
                    self.pending_requests.insert(from);
                }
            },
            NodeMsg::DecidedVal(value) => self.on_decided_val(from, value, ctx),
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Context<NodeMsg>) {
        if self.crashed(ctx.now()) {
            return;
        }
        // Churn timers fire *through* dormancy: the join tick is what ends
        // the pre-join dormancy, and the recover tick is what ends the
        // down window.
        match timer {
            CHURN_JOIN_TICK => return self.on_churn_join(ctx),
            CHURN_LEAVE_TICK => return self.on_churn_leave(ctx),
            CHURN_CRASH_TICK => return self.on_churn_crash(ctx),
            CHURN_RECOVER_TICK => return self.on_churn_recover(ctx),
            _ => {}
        }
        if self.dormant() {
            // Pre-crash discovery/view timers landing in the down window
            // (or before a join) die here; recovery re-arms its own tick.
            return;
        }
        match timer {
            DISCOVERY_TICK => {
                match self.phase {
                    Phase::Discovering => {
                        self.send_discovery_round(ctx);
                        // The naive guesser counts candidate stability in
                        // discovery rounds, so it must evaluate every tick;
                        // the real detectors are pure in the view and only
                        // re-run when the view actually changed.
                        let naive = matches!(self.config.mode, ProtocolMode::NaiveGuess { .. });
                        if naive || std::mem::take(&mut self.detect_dirty) {
                            self.try_detect(ctx, true);
                        }
                    }
                    Phase::Learning => {
                        if self.decided.is_none() {
                            self.send_learning_round(ctx);
                        }
                    }
                    Phase::Member => {
                        // The committee drives itself via view timers; as a
                        // liveness backstop, an undecided member also polls
                        // its peers for the decided value (the state-
                        // transfer role of checkpoints in full PBFT —
                        // ⌈(|S|+1)/2⌉ matching answers are safe to adopt).
                        if self.decided.is_none() {
                            self.send_learning_round(ctx);
                        }
                    }
                }
                // Keep ticking until decided (members keep it armed too so
                // a node that decides keeps serving nothing new; learning
                // retries need it).
                if self.decided.is_none() {
                    ctx.set_timer(DISCOVERY_TICK, self.config.discovery_period);
                }
            }
            kind => {
                if let (Some(view), Some(replica)) = (view_of_timer(kind), &mut self.replica) {
                    let fx = replica.on_timeout(view);
                    self.apply_replica_effects(fx, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_initial_state() {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1);
        let node = Node::new(
            key,
            registry,
            [ProcessId::new(2)].into_iter().collect(),
            Value::from_static(b"v"),
            NodeConfig::default(),
        );
        assert_eq!(node.phase(), Phase::Discovering);
        assert!(node.decision().is_none());
        assert!(node.detection().is_none());
        assert_eq!(node.id(), ProcessId::new(1));
    }

    fn test_node(config: NodeConfig) -> Node {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1);
        Node::new(
            key,
            registry,
            [ProcessId::new(2)].into_iter().collect(),
            Value::from_static(b"v"),
            config,
        )
    }

    #[test]
    fn late_joiner_is_dormant_until_join_tick() {
        let mut node = test_node(NodeConfig {
            join_at: Some(100),
            seed_peers: [ProcessId::new(3)].into_iter().collect(),
            ..NodeConfig::default()
        });
        let mut ctx = Context::new(0, ProcessId::new(1));
        node.on_start(&mut ctx);
        assert!(ctx.queued_sends().is_empty(), "dormant joiner sent");
        assert_eq!(ctx.queued_timers(), &[(CHURN_JOIN_TICK, 100)]);
        // Deliveries before the join tick are swallowed.
        let mut ctx = Context::new(10, ProcessId::new(1));
        node.on_message(ProcessId::new(2), NodeMsg::GetDecidedVal, &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        // The join tick seeds knowledge and opens discovery.
        let mut ctx = Context::new(100, ProcessId::new(1));
        node.on_timer(CHURN_JOIN_TICK, &mut ctx);
        assert!(!ctx.queued_sends().is_empty(), "joiner did not gossip");
        assert!(node.discovery().view().known().contains(&ProcessId::new(3)));
    }

    #[test]
    fn leaver_halts_at_leave_tick() {
        let mut node = test_node(NodeConfig {
            leave_at: Some(50),
            ..NodeConfig::default()
        });
        let mut ctx = Context::new(0, ProcessId::new(1));
        node.on_start(&mut ctx);
        assert!(ctx.queued_timers().contains(&(CHURN_LEAVE_TICK, 50)));
        let mut ctx = Context::new(50, ProcessId::new(1));
        node.on_timer(CHURN_LEAVE_TICK, &mut ctx);
        assert!(ctx.is_halted());
        assert!(node.departed());
    }

    #[test]
    fn crash_recovery_restores_the_pre_crash_view() {
        let mut node = test_node(NodeConfig {
            crash_recover: Some((30, 50)),
            ..NodeConfig::default()
        });
        let mut ctx = Context::new(0, ProcessId::new(1));
        node.on_start(&mut ctx);
        let mut ctx = Context::new(30, ProcessId::new(1));
        node.on_timer(CHURN_CRASH_TICK, &mut ctx);
        assert_eq!(ctx.queued_timers(), &[(CHURN_RECOVER_TICK, 50)]);
        let (crash_at, crash_set) = node.crash_view.clone().expect("crash sampled");
        assert_eq!(crash_at, 30);
        // Down: deliveries are swallowed.
        let mut ctx = Context::new(40, ProcessId::new(1));
        node.on_message(ProcessId::new(2), NodeMsg::GetDecidedVal, &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        // Recovery restores the snapshot view exactly.
        let mut ctx = Context::new(80, ProcessId::new(1));
        node.on_timer(CHURN_RECOVER_TICK, &mut ctx);
        assert!(node.recovered());
        let (rec_at, rec_set) = node.recovery_view.clone().expect("recovery sampled");
        assert_eq!(rec_at, 80);
        assert_eq!(rec_set, crash_set);
        assert!(!ctx.queued_sends().is_empty(), "rejoiner did not gossip");
    }

    #[test]
    fn broken_recovery_loses_the_pre_crash_view() {
        let mut node = test_node(NodeConfig {
            crash_recover: Some((30, 50)),
            broken_recovery: true,
            ..NodeConfig::default()
        });
        let mut ctx = Context::new(0, ProcessId::new(1));
        node.on_start(&mut ctx);
        // Absorb a PD record so there is something to lose — simulate by
        // learning a peer directly through the crash/recover cycle check:
        // the restored state must start from the bare own PD again.
        let mut ctx = Context::new(30, ProcessId::new(1));
        node.on_timer(CHURN_CRASH_TICK, &mut ctx);
        let mut ctx = Context::new(80, ProcessId::new(1));
        node.on_timer(CHURN_RECOVER_TICK, &mut ctx);
        assert!(node.recovered());
        // Fresh state: only the node's own record is present.
        assert_eq!(node.discovery().view().received().len(), 1);
    }

    #[test]
    fn crashed_node_is_silent() {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1);
        let mut node = Node::new(
            key,
            registry,
            [ProcessId::new(2)].into_iter().collect(),
            Value::from_static(b"v"),
            NodeConfig {
                crash_at: Some(0),
                ..NodeConfig::default()
            },
        );
        let mut ctx = Context::new(5, ProcessId::new(1));
        node.on_start(&mut ctx);
        assert!(ctx.queued_sends().is_empty());
    }
}
