//! BFT-CUPFT: Byzantine consensus with unknown participants *and* unknown
//! fault threshold — the primary contribution of the reproduced paper.
//!
//! This crate assembles the substrates into the paper's three protocol
//! stacks:
//!
//! * the **authenticated BFT-CUP** node (Section III): Discovery
//!   (Algorithm 1) + Sink identification with a known `f` (Algorithm 2) +
//!   the Consensus wrapper (Algorithm 3) over committee consensus;
//! * the **BFT-CUPFT** node (Section VI): the same wrapper with the Core
//!   algorithm (Algorithm 4) replacing Sink — no process knows `f`;
//! * the **naive sink guesser** (Section IV / Observation 1): what a
//!   process *can only do* when the graph is merely in `G_di` and `f` is
//!   unknown — adopt the first stable `isSink*` candidate. This node
//!   exists to *fail*: it reproduces the Theorem 7 agreement violation.
//!
//! The [`scenario`] module runs whole systems (graph + Byzantine strategy
//! assignment + delay policy) through either runtime behind the
//! `cupft_net::Runtime` trait and checks the four consensus properties;
//! the [`suite`] module fans whole scenario families across worker
//! threads. Together they power every experiment binary and most
//! integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod detect;
pub mod msgs;
pub mod node;
pub mod scenario;
pub mod suite;

pub use byzantine::{build_strategy, ByzantineActor, ByzantineStrategy};
pub use cupft_adversary::{ChurnEvent, ChurnSpec, TamperSpec};
pub use detect::{CoreDetector, Detection, NaiveSinkGuesser, SinkDetector};
pub use msgs::NodeMsg;
pub use node::{
    Node, NodeConfig, Phase, ProtocolMode, CHURN_CRASH_TICK, CHURN_JOIN_TICK, CHURN_LEAVE_TICK,
    CHURN_RECOVER_TICK,
};
pub use scenario::{
    run_scenario, run_scenario_on, run_scenario_recorded, run_scenario_traced, ConsensusCheck,
    NodeStatus, RuntimeKind, Scenario, ScenarioConfig, ScenarioOutcome,
};
pub use suite::{
    ChurnCase, FaultCase, GraphCase, PolicyCase, ScenarioGrid, ScenarioSuite, StrategyCase,
    SuiteEntry, SuiteReport, SuiteVerdict,
};
