//! Sink and Core identification (Algorithms 2 and 4).
//!
//! Both detectors evaluate a process's current [`KnowledgeView`]; the
//! surrounding node re-invokes them whenever discovery changes the view,
//! which realizes the `wait until ∃S1, S2 …` loops of the paper.

use cupft_graph::{CandidateSearch, KnowledgeView, ProcessSet, SinkCandidate};

/// A successful identification: the member set plus the fault threshold
/// the committee must be parameterized with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The identified sink/core members (`S1 ∪ S2`).
    pub members: ProcessSet,
    /// The threshold: the given `f` (Sink) or `f_Gdi` (Core).
    pub threshold: usize,
    /// The `S1` part of the decomposition (connectivity-computable).
    pub s1: ProcessSet,
    /// The `S2` part (absorbed members, PDs possibly missing).
    pub s2: ProcessSet,
}

impl Detection {
    fn from_candidate(candidate: SinkCandidate) -> Self {
        Detection {
            members: candidate.members(),
            threshold: candidate.threshold(),
            s1: candidate.decomposition.s1.clone(),
            s2: candidate.decomposition.s2,
        }
    }
}

/// Algorithm 2: Sink identification with a *known* fault threshold.
///
/// # Example
///
/// ```
/// use cupft_core::SinkDetector;
/// use cupft_graph::{fig1b, process_set, KnowledgeView};
///
/// // Omniscient view of Fig. 1b: the sink is {1,2,3,4}.
/// let view = KnowledgeView::omniscient(fig1b().graph());
/// let detector = SinkDetector::new(1);
/// let detection = detector.check(&view).expect("sink identifiable");
/// assert_eq!(detection.members, process_set([1, 2, 3, 4]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SinkDetector {
    fault_threshold: usize,
    search: CandidateSearch,
}

impl SinkDetector {
    /// Creates a detector for the given system fault threshold.
    pub fn new(fault_threshold: usize) -> Self {
        SinkDetector::with_search(fault_threshold, CandidateSearch::default())
    }

    /// Creates a detector with explicit search knobs — e.g. a raised
    /// [`CandidateSearch::cut_split_cutoff`] for graphs whose qualified
    /// core hides inside an SCC larger than the default cutoff.
    pub fn with_search(fault_threshold: usize, search: CandidateSearch) -> Self {
        SinkDetector {
            fault_threshold,
            search,
        }
    }

    /// The fault threshold this detector was given.
    pub fn fault_threshold(&self) -> usize {
        self.fault_threshold
    }

    /// One evaluation of the `wait until` condition (Algorithm 2 line 3).
    pub fn check(&self, view: &KnowledgeView) -> Option<Detection> {
        self.search
            .sink_with_threshold(view, self.fault_threshold)
            .map(Detection::from_candidate)
    }
}

/// Algorithm 4: Core identification with an *unknown* fault threshold.
///
/// Returns the best-threshold candidate only when it is internally maximal
/// (Theorem 8(b)); in a graph satisfying the BFT-CUPFT requirements this
/// is exactly the core.
///
/// # Example
///
/// ```
/// use cupft_core::CoreDetector;
/// use cupft_graph::{fig4b, process_set, KnowledgeView};
///
/// let view = KnowledgeView::omniscient(fig4b().graph());
/// let detection = CoreDetector::default().check(&view).expect("core identifiable");
/// assert_eq!(detection.members, process_set([5, 6, 7, 8, 9]));
/// assert_eq!(detection.threshold, 2); // k_Gdi = 3
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreDetector {
    search: CandidateSearch,
}

impl CoreDetector {
    /// Creates a detector with explicit search knobs (see
    /// [`SinkDetector::with_search`]).
    pub fn with_search(search: CandidateSearch) -> Self {
        CoreDetector { search }
    }

    /// One evaluation of the `wait until` condition (Algorithm 4 line 2),
    /// with the *unexplained-remainder guard*.
    ///
    /// The guard: the candidate is finalized only when the known processes
    /// **outside** it whose PDs are still missing number at most the
    /// candidate's threshold. Rationale — a Byzantine process advertising
    /// an empty (or tiny, self-contained) PD forms a syntactically valid
    /// low-threshold "core" (e.g. a singleton at `g = 0`) that a process
    /// could adopt before discovering the real core; trusting such a
    /// committee surrenders Agreement to a single fault. Under the
    /// BFT-CUPFT graph requirements the guard is eventually satisfied by
    /// the true core: at most `f ≤ f_Gdi` silent Byzantine processes stay
    /// missing forever, and property C2 delivers every correct PD. The
    /// lying candidate, by contrast, stays blocked exactly while the view
    /// still owes more PDs than the candidate tolerates — by which time
    /// the real core is visible and outranks it (property C1).
    pub fn check(&self, view: &KnowledgeView) -> Option<Detection> {
        let candidate = self.search.best_core(view)?;
        let members = candidate.members();
        let unexplained = view
            .missing_pds()
            .iter()
            .filter(|p| !members.contains(p))
            .count();
        if unexplained > candidate.threshold() {
            return None;
        }
        Some(Detection::from_candidate(candidate))
    }
}

/// Observation 1: the *naive* guesser a process is reduced to when the
/// graph is only in `G_di` and `f` is unknown — the best `isSink*`
/// candidate in the current view, with **no** maximality guarantee across
/// the (undiscoverable) rest of the system.
#[derive(Debug, Clone, Default)]
pub struct NaiveSinkGuesser {
    search: CandidateSearch,
}

impl NaiveSinkGuesser {
    /// The best candidate visible in the view, if any with threshold ≥ 1
    /// (a threshold-0 "sink" is any singleton and would trivialize the
    /// guess; Observation 1's sets all have `g ≥ 1`).
    pub fn check(&self, view: &KnowledgeView) -> Option<Detection> {
        self.search
            .ranked_candidates(view)
            .into_iter()
            .find(|c| c.threshold() >= 1)
            .map(Detection::from_candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::{
        fig1b, fig2c, fig3a, fig4a, fig4b, process_set, GdiParams, Generator, KnowledgeView,
    };

    #[test]
    fn sink_detector_on_fig1b() {
        let view = KnowledgeView::omniscient(fig1b().graph());
        let d = SinkDetector::new(1).check(&view).unwrap();
        assert_eq!(d.members, process_set([1, 2, 3, 4]));
        assert_eq!(d.threshold, 1);
    }

    #[test]
    fn sink_detector_needs_enough_view() {
        // A process that has only its own PD cannot identify a sink.
        let view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
        assert!(SinkDetector::new(1).check(&view).is_none());
    }

    #[test]
    fn core_detector_on_fig4a() {
        let view = KnowledgeView::omniscient(fig4a().graph());
        let d = CoreDetector::default().check(&view).unwrap();
        assert_eq!(d.members, process_set([1, 2, 3, 4, 5]));
        assert_eq!(d.threshold, 2);
    }

    #[test]
    fn core_detector_on_fig4b() {
        let view = KnowledgeView::omniscient(fig4b().graph());
        let d = CoreDetector::default().check(&view).unwrap();
        assert_eq!(d.members, process_set([5, 6, 7, 8, 9]));
    }

    #[test]
    fn naive_guesser_adopts_false_sink_on_fig3a() {
        // The Section IV observation: {1,2,3,4,6} (+S2 {5,7}) qualifies.
        let view = KnowledgeView::omniscient(fig3a().graph());
        let d = NaiveSinkGuesser::default().check(&view).unwrap();
        // the guesser picks the highest-threshold candidate, which is the
        // false sink (threshold 2 beats the true sink's 1)
        assert_eq!(d.members, process_set([1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(d.threshold, 2);
    }

    #[test]
    fn naive_guesser_splits_on_fig2c_partition() {
        // Process 1's view before any cross-partition message arrives:
        // it knows A's PDs only.
        let g = fig2c();
        let sub = g.graph().induced(&process_set([1, 2, 3, 4]));
        let view = KnowledgeView::omniscient(&sub);
        let d = NaiveSinkGuesser::default().check(&view).unwrap();
        assert_eq!(d.members, process_set([1, 2, 3, 4]));
        // Process 6's view of the B side:
        let sub = g.graph().induced(&process_set([5, 6, 7, 8]));
        let view = KnowledgeView::omniscient(&sub);
        let d = NaiveSinkGuesser::default().check(&view).unwrap();
        assert_eq!(d.members, process_set([5, 6, 7, 8]));
    }

    #[test]
    fn core_detector_rejects_fig2c() {
        // fig2c violates C1 (two equal-connectivity sinks); with the whole
        // graph visible, best_core still returns a maximal candidate for
        // ONE of them — but on partial (partition) views both sides would
        // return different cores. The detector itself cannot see C1
        // globally; the *graph family* is what rules fig2c out. Here we
        // check both partition views yield different "cores" — the exact
        // failure BFT-CUPFT's graph requirements exist to prevent.
        let g = fig2c();
        let a = KnowledgeView::omniscient(&g.graph().induced(&process_set([1, 2, 3, 4])));
        let b = KnowledgeView::omniscient(&g.graph().induced(&process_set([5, 6, 7, 8])));
        let da = CoreDetector::default().check(&a).unwrap();
        let db = CoreDetector::default().check(&b).unwrap();
        assert_ne!(da.members, db.members);
    }

    #[test]
    fn detectors_agree_on_generated_graphs() {
        for seed in 0..5 {
            let sys = Generator::from_seed(seed)
                .generate(&GdiParams::new(1))
                .unwrap();
            let view = KnowledgeView::omniscient(&sys.graph);
            let d = SinkDetector::new(1).check(&view).expect("sink found");
            assert_eq!(d.members, sys.expected_detection(), "seed {seed}");
        }
    }

    #[test]
    fn core_detector_on_generated_extended_graphs() {
        for seed in 0..5 {
            let mut params = GdiParams::new(1);
            params.extended = true;
            params.byzantine_count = 0;
            params.non_sink_size = 3;
            let sys = Generator::from_seed(seed).generate(&params).unwrap();
            let view = KnowledgeView::omniscient(&sys.graph);
            let d = CoreDetector::default().check(&view).expect("core found");
            assert_eq!(d.members, sys.sink, "seed {seed}");
        }
    }
}
