//! Whole-system scenario runner: graph + fault assignment + delay policy
//! in, consensus-property verdicts out.
//!
//! Every experiment binary (Table I, Figures 1–4) and most integration
//! tests are expressed as [`Scenario`]s run through the deterministic
//! simulator.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use cupft_adversary::{
    ChurnContext, ChurnSpec, ExecutionTrace, KnowledgeMoment, RecordingTamper, SendLog, TamperSpec,
    TraceChecker, TraceEvent, TraceEventKind,
};
use cupft_committee::Value;
use cupft_detector::SystemSetup;
use cupft_discovery::VerifyStage;
use cupft_graph::{DiGraph, ProcessId, ProcessSet};
use cupft_net::sim::Simulation;
use cupft_net::socket::{SocketConfig, SocketRuntime};
use cupft_net::threaded::{Board, ThreadedConfig, ThreadedRuntime};
use cupft_net::{DelayPolicy, NetStats, Preflight, Runtime, SimConfig, Time};
use cupft_obs::{ObsReport, Recorder};

use crate::byzantine::{ByzantineActor, ByzantineStrategy};
use crate::msgs::NodeMsg;
use crate::node::{Node, NodeConfig, ProtocolMode};

/// A complete experiment description.
///
/// # Example
///
/// ```
/// use cupft_core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
/// use cupft_graph::fig1b;
///
/// let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
///     .with_byzantine(4, ByzantineStrategy::Silent)
///     .with_seed(7);
/// let outcome = run_scenario(&scenario);
/// assert!(outcome.check().consensus_solved());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The knowledge connectivity graph.
    pub graph: DiGraph,
    /// Identification mode every correct node runs.
    pub mode: ProtocolMode,
    /// Byzantine assignment (absent processes are correct).
    pub byzantine: BTreeMap<ProcessId, ByzantineStrategy>,
    /// Crash times for crash-faulty processes (correct-but-crashing:
    /// Theorem 7's weaker fault model).
    pub crashes: BTreeMap<ProcessId, Time>,
    /// Proposal per process (defaults to `v<id>`).
    pub values: BTreeMap<ProcessId, Value>,
    /// Optional network-level adversary (installed on either substrate via
    /// the [`cupft_net::Tamper`] hook).
    pub tamper: Option<TamperSpec>,
    /// Optional dynamic-membership schedule ([`ChurnSpec`]): late joins,
    /// silent departures, crash-recoveries, executed at the actor level so
    /// both substrates honor the same schedule identically. Events naming
    /// Byzantine processes are ignored — churn is a correct-process model.
    pub churn: Option<ChurnSpec>,
    /// Test-only fault switch: crash-recovering nodes restore a *fresh*
    /// discovery state instead of their snapshot (see
    /// [`NodeConfig::broken_recovery`]) — the planted defect the
    /// adversarial churn tests catch and shrink.
    pub broken_recovery: bool,
    /// Simulator configuration (seed, horizon, delay policy).
    pub sim: SimConfig,
    /// Discovery tick period.
    pub discovery_period: u64,
    /// Committee view-timeout base.
    pub view_timeout_base: u64,
    /// Run correct nodes with the full-`S_PD` baseline dissemination
    /// instead of delta gossip (see [`NodeConfig::full_gossip`]).
    pub full_gossip: bool,
    /// Wall-clock budget when run on the threaded substrate (default
    /// 60 s). Generous budgets are a scale knob, not a correctness one —
    /// the run still stops the moment every correct node has decided.
    pub threaded_wall_timeout: Option<Duration>,
    /// Router shard count when run on the threaded substrate: `None`
    /// defers to the runtime's auto default (`min(cores, 4)`),
    /// `Some(1)` pins the classic single-router loop, larger values
    /// spread delivery scheduling across that many shards (see
    /// [`ThreadedConfig::router_shards`]). Ignored by the simulator.
    pub router_shards: Option<usize>,
    /// Certificate-verification pipeline knob. `None` (the default) runs
    /// the pipeline with auto sizing: a [`VerifyStage`] preflight settles
    /// verdicts in the run's shared [`cupft_detector::CertPool`] before
    /// delivery, on a worker pool sized off the router-shard
    /// auto-detection (threaded) or as a synchronous virtual stage (sim).
    /// `Some(0)` pins the **serial baseline**: no preflight, no shared
    /// pool — every process verifies every certificate itself, exactly
    /// the pre-pipeline code paths. `Some(k)` pins a `k`-worker pool.
    pub verify_pool: Option<usize>,
    /// The substrate [`Scenario::run`] executes on (default
    /// [`RuntimeKind::Sim`]); set via [`ScenarioConfig::runtime`].
    /// [`Scenario::run_on`] overrides it per call.
    pub runtime: RuntimeKind,
    /// Attach an observability [`Recorder`] to the run (off by default).
    /// On the simulator the recorder runs in the **virtual** clock domain
    /// — two runs of the same scenario produce byte-identical
    /// [`ObsReport`]s — and on the threaded runtime in the wall domain (a
    /// profile, not a trace). Observation never changes protocol
    /// behavior: decisions, detections, and [`NetStats`] are identical
    /// with the flag on or off.
    pub observe: bool,
}

impl Scenario {
    /// A scenario over `graph` with the given mode and defaults everywhere
    /// else.
    pub fn new(graph: DiGraph, mode: ProtocolMode) -> Self {
        Scenario {
            graph,
            mode,
            byzantine: BTreeMap::new(),
            crashes: BTreeMap::new(),
            values: BTreeMap::new(),
            tamper: None,
            churn: None,
            broken_recovery: false,
            sim: SimConfig {
                seed: 0,
                max_time: 200_000,
                policy: DelayPolicy::PartialSynchrony {
                    gst: 200,
                    delta: 10,
                    pre_gst_max: 120,
                },
            },
            discovery_period: 20,
            view_timeout_base: 400,
            full_gossip: false,
            threaded_wall_timeout: None,
            router_shards: None,
            verify_pool: None,
            runtime: RuntimeKind::Sim,
            observe: false,
        }
    }

    /// Assigns a Byzantine strategy.
    pub fn with_byzantine(mut self, id: u64, strategy: ByzantineStrategy) -> Self {
        self.byzantine.insert(ProcessId::new(id), strategy);
        self
    }

    /// Assigns a crash time.
    pub fn with_crash(mut self, id: u64, at: Time) -> Self {
        self.crashes.insert(ProcessId::new(id), at);
        self
    }

    /// Sets a proposal value.
    pub fn with_value(mut self, id: u64, value: &'static [u8]) -> Self {
        self.values
            .insert(ProcessId::new(id), Value::from_static(value));
        self
    }

    /// Sets the delay policy.
    ///
    /// Thin forward to [`ScenarioConfig::policy`]; prefer the typed
    /// builder for new code.
    pub fn with_policy(self, policy: DelayPolicy) -> Self {
        self.configured(&ScenarioConfig::new().policy(policy))
    }

    /// Installs a network-level adversary (see [`TamperSpec`] for the
    /// within-model discipline).
    ///
    /// Thin forward to [`ScenarioConfig::tamper`]; prefer the typed
    /// builder for new code.
    pub fn with_tamper(self, tamper: TamperSpec) -> Self {
        self.configured(&ScenarioConfig::new().tamper(tamper))
    }

    /// Installs a dynamic-membership schedule (see [`Scenario::churn`]).
    ///
    /// Thin forward to [`ScenarioConfig::churn`]; prefer the typed
    /// builder for new code.
    pub fn with_churn(self, churn: ChurnSpec) -> Self {
        self.configured(&ScenarioConfig::new().churn(churn))
    }

    /// Switches the planted recovery defect on (see
    /// [`Scenario::broken_recovery`]); test-only.
    ///
    /// Thin forward to [`ScenarioConfig::broken_recovery`]; prefer the
    /// typed builder for new code.
    pub fn with_broken_recovery(self, broken: bool) -> Self {
        self.configured(&ScenarioConfig::new().broken_recovery(broken))
    }

    /// Overrides the threaded/socket-substrate wall-clock budget.
    ///
    /// Thin forward to [`ScenarioConfig::wall_timeout`]; prefer the typed
    /// builder for new code.
    pub fn with_threaded_wall_timeout(self, timeout: Duration) -> Self {
        self.configured(&ScenarioConfig::new().wall_timeout(timeout))
    }

    /// Pins the threaded-substrate router shard count (`1` = the classic
    /// single-router loop; leaving the knob unset — or passing `0`,
    /// which [`ThreadedConfig::router_shards`] defines as auto — defers
    /// to the runtime's `min(cores, 4)` resolution, which is
    /// machine-dependent, not pinned). No effect on the simulator.
    ///
    /// Thin forward to [`ScenarioConfig::router_shards`]; prefer the
    /// typed builder for new code.
    pub fn with_router_shards(self, shards: usize) -> Self {
        self.configured(&ScenarioConfig::new().router_shards(shards))
    }

    /// Pins the certificate-verification pipeline (see
    /// [`Scenario::verify_pool`]): `0` selects the serial baseline,
    /// `k > 0` a `k`-worker stage pool.
    ///
    /// Thin forward to [`ScenarioConfig::verify_pool`]; prefer the typed
    /// builder for new code.
    pub fn with_verify_pool(self, workers: usize) -> Self {
        self.configured(&ScenarioConfig::new().verify_pool(workers))
    }

    /// Whether this scenario runs the verification pipeline (anything but
    /// the pinned `Some(0)` serial baseline).
    pub fn pipelined_verify(&self) -> bool {
        self.verify_pool != Some(0)
    }

    /// Switches structured-event observation on or off (see
    /// [`Scenario::observe`]).
    ///
    /// Thin forward to [`ScenarioConfig::observe`]; prefer the typed
    /// builder for new code.
    pub fn with_observe(self, observe: bool) -> Self {
        self.configured(&ScenarioConfig::new().observe(observe))
    }

    /// Selects the full-`S_PD` baseline dissemination for correct nodes
    /// (delta gossip is the default) — what the equivalence sweep and the
    /// payload benches compare against.
    ///
    /// Thin forward to [`ScenarioConfig::full_gossip`]; prefer the typed
    /// builder for new code.
    pub fn with_full_gossip(self, full: bool) -> Self {
        self.configured(&ScenarioConfig::new().full_gossip(full))
    }

    /// Sets the RNG seed.
    ///
    /// Thin forward to [`ScenarioConfig::seed`]; prefer the typed builder
    /// for new code.
    pub fn with_seed(self, seed: u64) -> Self {
        self.configured(&ScenarioConfig::new().seed(seed))
    }

    /// Sets the simulation horizon.
    ///
    /// Thin forward to [`ScenarioConfig::horizon`]; prefer the typed
    /// builder for new code.
    pub fn with_horizon(self, max_time: Time) -> Self {
        self.configured(&ScenarioConfig::new().horizon(max_time))
    }

    /// The correct processes of this scenario (crash-faulty processes are
    /// *not* correct — they are counted as faulty for the verdicts).
    pub fn correct(&self) -> ProcessSet {
        self.graph
            .vertices()
            .filter(|v| !self.byzantine.contains_key(v) && !self.crashes.contains_key(v))
            .collect()
    }

    fn value_of(&self, id: ProcessId) -> Value {
        self.values
            .get(&id)
            .cloned()
            .unwrap_or_else(|| Value::from(format!("v{}", id.raw()).into_bytes()))
    }

    /// Values that could legitimately be decided: every process's proposal
    /// plus any value a Byzantine equivocator may inject.
    fn allowed_values(&self) -> BTreeSet<Vec<u8>> {
        let mut allowed: BTreeSet<Vec<u8>> = self
            .graph
            .vertices()
            .map(|v| self.value_of(v).to_vec())
            .collect();
        for strategy in self.byzantine.values() {
            for value in strategy.injected_values() {
                allowed.insert(value.to_vec());
            }
        }
        allowed
    }

    /// A [`TraceChecker`] judging this scenario's correct set and allowed
    /// values (no termination bound; add one with
    /// [`TraceChecker::with_termination_bound`] — `sim.max_time` is the
    /// natural choice for simulator runs).
    pub fn trace_checker(&self) -> TraceChecker {
        TraceChecker::new(self.correct(), self.allowed_values())
    }

    /// The correct processes scheduled to depart under this scenario's
    /// churn (empty without churn). A departed process is still *correct*
    /// — it just may leave before deciding, so the stop condition and the
    /// termination verdict excuse it.
    pub fn leavers(&self) -> ProcessSet {
        self.churn
            .as_ref()
            .map(ChurnSpec::leavers)
            .unwrap_or_default()
    }

    /// A [`TraceChecker`] armed with the weakened churn invariants
    /// (churn-agreement, join-convergence, recovery-consistency) for this
    /// scenario's churn schedule, judged against `outcome`.
    ///
    /// The join-convergence reference knowledge is the intersection of the
    /// final `S_received` views of the *stable* correct processes (no
    /// scheduled join, departure, or crash) — what every joiner alive past
    /// the fixpoint must also have pulled through gossip. With no stable
    /// process the reference is empty and the invariant is vacuous.
    pub fn churn_trace_checker(&self, outcome: &ScenarioOutcome) -> TraceChecker {
        let spec = self.churn.clone().unwrap_or_default();
        let joiners = spec.joiners();
        let leavers = spec.leavers();
        let recoverers = spec.recoverers();
        let mut reference: Option<ProcessSet> = None;
        for (id, view) in &outcome.final_views {
            if joiners.contains(id) || leavers.contains(id) || recoverers.contains(id) {
                continue;
            }
            reference = Some(match reference {
                None => view.clone(),
                Some(acc) => acc.iter().filter(|p| view.contains(p)).copied().collect(),
            });
        }
        self.trace_checker().with_churn(ChurnContext {
            joiners,
            leavers,
            recoverers,
            reference_knowledge: reference.unwrap_or_default(),
        })
    }
}

/// A correct process's terminal status in one run — distinguishes "never
/// decided" from "departed before deciding", which a bare `Option<Vec<u8>>`
/// decision cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The process decided (possibly before a later departure).
    Decided,
    /// The process departed via scheduled churn without deciding.
    Departed,
    /// The process neither decided nor departed within the horizon.
    Undecided,
}

/// Per-process observations of one run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Decisions of the correct processes (`None` = undecided at horizon).
    pub decisions: BTreeMap<ProcessId, Option<Vec<u8>>>,
    /// Terminal status per correct process (see [`NodeStatus`]).
    pub statuses: BTreeMap<ProcessId, NodeStatus>,
    /// `(tick, S_received)` sampled at each churn crash.
    pub crash_views: BTreeMap<ProcessId, (Time, ProcessSet)>,
    /// `(tick, S_received)` sampled right after each churn recovery.
    pub recovery_views: BTreeMap<ProcessId, (Time, ProcessSet)>,
    /// Final `S_received` view per correct process.
    pub final_views: BTreeMap<ProcessId, ProcessSet>,
    /// Sink/core sets identified by the correct processes.
    pub detections: BTreeMap<ProcessId, Option<ProcessSet>>,
    /// Identification times.
    pub detection_times: BTreeMap<ProcessId, Option<Time>>,
    /// Decision times.
    pub decided_times: BTreeMap<ProcessId, Option<Time>>,
    /// Simulated end time.
    pub end_time: Time,
    /// Network statistics.
    pub stats: NetStats,
    /// Observability snapshot, present iff [`Scenario::observe`] was on.
    /// Taken *after* the run's certificate-pool gauges are dumped, so it
    /// is a superset of the [`cupft_net::RuntimeReport`]'s own snapshot.
    pub obs: Option<ObsReport>,
    allowed_values: BTreeSet<Vec<u8>>,
}

/// Verdicts on the four consensus properties (Section II-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusCheck {
    /// No two correct processes decided differently.
    pub agreement: bool,
    /// Every correct process decided within the horizon.
    pub termination: bool,
    /// Every decided value was proposed by some process.
    pub validity: bool,
    /// The distinct values decided by correct processes.
    pub decided_values: BTreeSet<Vec<u8>>,
}

impl ConsensusCheck {
    /// All properties hold (Integrity holds by construction: nodes set
    /// their decision at most once).
    pub fn consensus_solved(&self) -> bool {
        self.agreement && self.termination && self.validity
    }
}

impl ScenarioOutcome {
    /// Evaluates the consensus properties over the recorded decisions.
    pub fn check(&self) -> ConsensusCheck {
        let decided_values: BTreeSet<Vec<u8>> =
            self.decisions.values().flatten().cloned().collect();
        ConsensusCheck {
            agreement: decided_values.len() <= 1,
            // Under churn, a process that departed before deciding is
            // excused from termination (it is not "every correct process
            // *eventually* decides" material once it has left the system);
            // without churn every status is Decided/Undecided and this is
            // the classic all-decided check.
            termination: self.statuses.values().all(|s| *s != NodeStatus::Undecided),
            validity: decided_values
                .iter()
                .all(|v| self.allowed_values.contains(v)),
            decided_values,
        }
    }

    /// The unique sink/core sets identified across correct processes.
    pub fn distinct_detections(&self) -> BTreeSet<ProcessSet> {
        self.detections.values().flatten().cloned().collect()
    }

    /// Latest decision time among deciders (simulated ticks).
    pub fn last_decision_time(&self) -> Option<Time> {
        self.decided_times.values().flatten().copied().max()
    }
}

/// Which execution substrate a scenario (or suite) runs on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RuntimeKind {
    /// The deterministic discrete-event simulator ([`Simulation`]).
    #[default]
    Sim,
    /// The OS-thread runtime ([`ThreadedRuntime`]) — nondeterministic
    /// real-time interleavings, for wall-clock validation.
    Threaded,
    /// The real-socket runtime ([`SocketRuntime`]) — every send encoded
    /// in the versioned [`cupft_wire`] frame format and carried over
    /// loopback TCP, so a run validates the whole codec path on top of
    /// the protocols.
    Socket,
}

impl RuntimeKind {
    /// A short display label (`"sim"` / `"threaded"` / `"socket"`).
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Sim => "sim",
            RuntimeKind::Threaded => "threaded",
            RuntimeKind::Socket => "socket",
        }
    }
}

impl Scenario {
    /// The [`ThreadedConfig`] equivalent of this scenario's simulator
    /// configuration: the seed carries over, the delay spread maps the
    /// policy's post-GST bound `δ` onto milliseconds (capped so sim-scale
    /// tick values stay in wall-clock-test range), and the horizon becomes
    /// a generous wall timeout — the scenario runner stops the run as soon
    /// as every correct node has decided, so the timeout only bounds
    /// failing runs.
    ///
    /// The mapping is *lossy*: the threaded router only applies a uniform
    /// random delay, so the pre-GST adversarial phase of
    /// [`DelayPolicy::PartialSynchrony`] is dropped (the threaded network
    /// behaves as if GST were 0). That weakens the adversary but cannot
    /// invert a possibility verdict.
    ///
    /// # Panics
    ///
    /// Panics for [`DelayPolicy::Asynchronous`] and
    /// [`DelayPolicy::Partitioned`]: those are scripted simulator
    /// adversaries (impossibility horizons, the Theorem 7 construction)
    /// with no threaded equivalent — running them under a benign uniform
    /// delay would silently invert impossibility results. Run such
    /// scenarios on [`RuntimeKind::Sim`].
    pub fn threaded_config(&self) -> ThreadedConfig {
        match self.sim.policy {
            DelayPolicy::Synchronous { .. } | DelayPolicy::PartialSynchrony { .. } => {}
            DelayPolicy::Asynchronous { .. } | DelayPolicy::Partitioned { .. } => panic!(
                "delay policy {:?} is a scripted simulator adversary with no \
                 threaded-runtime equivalent; run this scenario on RuntimeKind::Sim",
                self.sim.policy
            ),
        }
        ThreadedConfig {
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(self.sim.policy.delta().clamp(1, 20)),
            wall_timeout: self
                .threaded_wall_timeout
                .unwrap_or(Duration::from_secs(60)),
            seed: self.sim.seed,
            stop: None,
            router_shards: self.router_shards.unwrap_or(0),
            verify_workers: match self.verify_pool {
                Some(n) if n > 0 => n,
                // Auto (None) defers to the runtime's router-shard-sized
                // pool; the Some(0) serial baseline never installs a
                // preflight, so no pool spawns either way.
                _ => 0,
            },
        }
    }

    /// The [`SocketConfig`] equivalent of this scenario's configuration:
    /// loopback bind on an ephemeral port, the threaded wall-timeout knob
    /// carried over. The socket substrate applies no artificial delay —
    /// real TCP latency is the network — so, like the threaded mapping,
    /// scripted simulator adversaries are rejected rather than silently
    /// weakened.
    ///
    /// # Panics
    ///
    /// Panics for [`DelayPolicy::Asynchronous`] and
    /// [`DelayPolicy::Partitioned`], same contract as
    /// [`Self::threaded_config`].
    pub fn socket_config(&self) -> SocketConfig {
        match self.sim.policy {
            DelayPolicy::Synchronous { .. } | DelayPolicy::PartialSynchrony { .. } => {}
            DelayPolicy::Asynchronous { .. } | DelayPolicy::Partitioned { .. } => panic!(
                "delay policy {:?} is a scripted simulator adversary with no \
                 socket-runtime equivalent; run this scenario on RuntimeKind::Sim",
                self.sim.policy
            ),
        }
        SocketConfig {
            wall_timeout: self
                .threaded_wall_timeout
                .unwrap_or(Duration::from_secs(60)),
            ..SocketConfig::default()
        }
    }

    /// Runs this scenario on a fresh runtime of the given kind.
    ///
    /// # Panics
    ///
    /// For [`RuntimeKind::Threaded`] and [`RuntimeKind::Socket`], panics
    /// if the scenario's delay policy has no wall-clock equivalent — see
    /// [`Self::threaded_config`] — or, for `Socket`, if the loopback
    /// listener cannot bind.
    pub fn run_on(&self, kind: RuntimeKind) -> ScenarioOutcome {
        match kind {
            RuntimeKind::Sim => {
                let mut sim: Simulation<NodeMsg> = Simulation::new(self.sim.clone());
                run_scenario_on(self, &mut sim)
            }
            RuntimeKind::Threaded => {
                let mut runtime: ThreadedRuntime<NodeMsg> =
                    ThreadedRuntime::new(self.threaded_config());
                run_scenario_on(self, &mut runtime)
            }
            RuntimeKind::Socket => {
                let mut runtime: SocketRuntime<NodeMsg> =
                    SocketRuntime::new(self.socket_config()).expect("bind socket runtime");
                run_scenario_on(self, &mut runtime)
            }
        }
    }

    /// Applies every knob `config` carries (leaving the rest of the
    /// scenario untouched) — the typed-builder path the `with_*` setters
    /// forward to.
    pub fn configured(mut self, config: &ScenarioConfig) -> Self {
        if let Some(kind) = config.runtime {
            self.runtime = kind;
        }
        if let Some(seed) = config.seed {
            self.sim.seed = seed;
        }
        if let Some(horizon) = config.horizon {
            self.sim.max_time = horizon;
        }
        if let Some(policy) = &config.policy {
            self.sim.policy = policy.clone();
        }
        if let Some(tamper) = &config.tamper {
            self.tamper = Some(tamper.clone());
        }
        if let Some(churn) = &config.churn {
            self.churn = Some(churn.clone());
        }
        if let Some(broken) = config.broken_recovery {
            self.broken_recovery = broken;
        }
        if let Some(full) = config.full_gossip {
            self.full_gossip = full;
        }
        if let Some(timeout) = config.wall_timeout {
            self.threaded_wall_timeout = Some(timeout);
        }
        if let Some(shards) = config.router_shards {
            self.router_shards = Some(shards);
        }
        if let Some(workers) = config.verify_pool {
            self.verify_pool = Some(workers);
        }
        if let Some(observe) = config.observe {
            self.observe = observe;
        }
        self
    }

    /// Runs this scenario on its configured substrate
    /// ([`Scenario::runtime`], set via [`ScenarioConfig::runtime`];
    /// defaults to the simulator).
    pub fn run(&self) -> ScenarioOutcome {
        self.run_on(self.runtime)
    }
}

/// Typed builder for a [`Scenario`]'s execution knobs: which substrate
/// runs it ([`RuntimeKind`]), how the substrate is shaped (router shards,
/// verify pool, wall timeout), what the adversary does (tamper, churn,
/// planted defects), and what gets observed.
///
/// Every knob is optional; [`Scenario::configured`] applies only the ones
/// that were set, so configs compose — a sweep can overlay a per-cell
/// config on a shared base scenario without disturbing unrelated knobs.
/// The legacy `Scenario::with_*` setters are thin forwards onto this
/// builder and remain for compatibility; new code should build a
/// `ScenarioConfig` once and apply it.
///
/// # Example
///
/// ```
/// use cupft_core::{ProtocolMode, RuntimeKind, Scenario, ScenarioConfig};
/// use cupft_graph::fig1b;
///
/// let config = ScenarioConfig::new()
///     .runtime(RuntimeKind::Sim)
///     .seed(7)
///     .observe(true);
/// let outcome = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
///     .configured(&config)
///     .run();
/// assert!(outcome.check().consensus_solved());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioConfig {
    runtime: Option<RuntimeKind>,
    seed: Option<u64>,
    horizon: Option<Time>,
    policy: Option<DelayPolicy>,
    tamper: Option<TamperSpec>,
    churn: Option<ChurnSpec>,
    broken_recovery: Option<bool>,
    full_gossip: Option<bool>,
    wall_timeout: Option<Duration>,
    router_shards: Option<usize>,
    verify_pool: Option<usize>,
    observe: Option<bool>,
}

impl ScenarioConfig {
    /// A config with every knob unset (applying it changes nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the execution substrate ([`Scenario::run`] uses it).
    pub fn runtime(mut self, kind: RuntimeKind) -> Self {
        self.runtime = Some(kind);
        self
    }

    /// Sets the RNG seed (simulator events; threaded delay sampler).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the simulation horizon (ticks).
    pub fn horizon(mut self, max_time: Time) -> Self {
        self.horizon = Some(max_time);
        self
    }

    /// Sets the delay policy (see [`DelayPolicy`]).
    pub fn policy(mut self, policy: DelayPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Installs a network-level adversary (see [`TamperSpec`]).
    pub fn tamper(mut self, tamper: TamperSpec) -> Self {
        self.tamper = Some(tamper);
        self
    }

    /// Installs a dynamic-membership schedule (see [`ChurnSpec`]).
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Switches the planted recovery defect (test-only; see
    /// [`Scenario::broken_recovery`]).
    pub fn broken_recovery(mut self, broken: bool) -> Self {
        self.broken_recovery = Some(broken);
        self
    }

    /// Selects full-`S_PD` baseline dissemination over delta gossip.
    pub fn full_gossip(mut self, full: bool) -> Self {
        self.full_gossip = Some(full);
        self
    }

    /// Overrides the wall-clock budget of the threaded and socket
    /// substrates.
    pub fn wall_timeout(mut self, timeout: Duration) -> Self {
        self.wall_timeout = Some(timeout);
        self
    }

    /// Pins the threaded-substrate router shard count (see
    /// [`ThreadedConfig::router_shards`]).
    pub fn router_shards(mut self, shards: usize) -> Self {
        self.router_shards = Some(shards);
        self
    }

    /// Pins the certificate-verification pipeline (see
    /// [`Scenario::verify_pool`]): `0` is the serial baseline.
    pub fn verify_pool(mut self, workers: usize) -> Self {
        self.verify_pool = Some(workers);
        self
    }

    /// Switches structured-event observation (see [`Scenario::observe`]).
    pub fn observe(mut self, observe: bool) -> Self {
        self.observe = Some(observe);
        self
    }
}

/// Registers the scenario's actors on `runtime`: correct (and
/// crash-faulty) processes as [`Node`]s wired to `board`, Byzantine
/// processes as [`ByzantineActor`]s. Returns the correct process set.
fn populate<R: Runtime<NodeMsg>>(
    scenario: &Scenario,
    setup: &SystemSetup,
    board: &Board<Vec<u8>>,
    recorder: Option<&Arc<Recorder>>,
    runtime: &mut R,
) -> ProcessSet {
    for v in scenario.graph.vertices() {
        if let Some(strategy) = scenario.byzantine.get(&v) {
            let key = setup.key_of(v).expect("registered").clone();
            runtime.add_actor(Box::new(ByzantineActor::new(
                key,
                setup.registry().clone(),
                setup.oracle().pd_of(v),
                strategy.clone(),
                scenario.discovery_period,
            )));
        } else {
            let churn = scenario.churn.as_ref();
            let join = churn.and_then(|c| c.join_of(v));
            let config = NodeConfig {
                mode: scenario.mode,
                discovery_period: scenario.discovery_period,
                replica: cupft_committee::ReplicaConfig {
                    timeout_base: scenario.view_timeout_base,
                },
                crash_at: scenario.crashes.get(&v).copied(),
                full_gossip: scenario.full_gossip,
                shared_verify: scenario.pipelined_verify(),
                recorder: recorder.cloned(),
                join_at: join.map(|(tick, _)| tick),
                seed_peers: join.map(|(_, seeds)| seeds.clone()).unwrap_or_default(),
                leave_at: churn.and_then(|c| c.leave_of(v)),
                crash_recover: churn.and_then(|c| c.crash_recover_of(v)),
                broken_recovery: scenario.broken_recovery,
                ..NodeConfig::default()
            };
            let mut node = Node::from_setup(setup, v, scenario.value_of(v), config)
                .expect("vertex registered");
            let is_leaver = churn.is_some_and(|c| c.leave_of(v).is_some());
            if !scenario.crashes.contains_key(&v) && !is_leaver {
                // Only *correct* nodes report to the board: the stop
                // condition counts board entries against the correct set,
                // and a crash-faulty node may decide before its crash tick.
                // A scheduled leaver is excused the same way — it may
                // decide before departing, but the run must not stop (or
                // keep waiting) on its account.
                node = node.with_board(board.clone());
            }
            runtime.add_actor(Box::new(node));
        }
    }
    scenario.correct()
}

/// Adapts the discovery-level [`VerifyStage`] to the node message
/// universe: only Algorithm 1 traffic carries certificates, so committee
/// and learning messages pass the stage untouched.
struct NodeVerifyStage(VerifyStage);

impl Preflight<NodeMsg> for NodeVerifyStage {
    fn preflight(&self, from: ProcessId, to: ProcessId, msg: &NodeMsg) {
        if let NodeMsg::Discovery(inner) = msg {
            self.0.preflight(from, to, inner);
        }
    }

    /// Consensus and identification traffic has no stage work; only the
    /// discovery messages the inner stage wants ride the worker pool.
    fn wants(&self, msg: &NodeMsg) -> bool {
        match msg {
            NodeMsg::Discovery(inner) => self.0.wants(inner),
            _ => false,
        }
    }
}

/// Reads the per-node observations back out of a finished runtime.
fn collect<R: Runtime<NodeMsg>>(
    scenario: &Scenario,
    correct: &ProcessSet,
    end_time: Time,
    runtime: &R,
) -> ScenarioOutcome {
    let mut decisions = BTreeMap::new();
    let mut statuses = BTreeMap::new();
    let mut crash_views = BTreeMap::new();
    let mut recovery_views = BTreeMap::new();
    let mut final_views = BTreeMap::new();
    let mut detections = BTreeMap::new();
    let mut detection_times = BTreeMap::new();
    let mut decided_times = BTreeMap::new();
    for &id in correct {
        let node: &Node = runtime.actor_as(id).expect("correct actors are Nodes");
        decisions.insert(id, node.decision().map(|v| v.to_vec()));
        let status = if node.decision().is_some() {
            NodeStatus::Decided
        } else if node.departed() {
            NodeStatus::Departed
        } else {
            NodeStatus::Undecided
        };
        statuses.insert(id, status);
        if let Some(sample) = &node.crash_view {
            crash_views.insert(id, sample.clone());
        }
        if let Some(sample) = &node.recovery_view {
            recovery_views.insert(id, sample.clone());
        }
        final_views.insert(id, node.discovery().view().received());
        detections.insert(id, node.detection().map(|d| d.members.clone()));
        detection_times.insert(id, node.detection_time);
        decided_times.insert(id, node.decided_time);
    }
    ScenarioOutcome {
        decisions,
        statuses,
        crash_views,
        recovery_views,
        final_views,
        detections,
        detection_times,
        decided_times,
        end_time,
        stats: runtime.stats().clone(),
        obs: None,
        allowed_values: scenario.allowed_values(),
    }
}

/// Runs `scenario` on any [`Runtime`] until every correct process has
/// decided (observed through a shared decision [`Board`]) or the runtime's
/// bound — simulated horizon or wall timeout — is reached.
///
/// This is the runtime-agnostic core: [`run_scenario`] instantiates it
/// with the deterministic simulator, [`Scenario::run_on`] with either
/// substrate, and the [`crate::suite::ScenarioSuite`] batch engine fans it
/// across worker threads.
pub fn run_scenario_on<R: Runtime<NodeMsg>>(
    scenario: &Scenario,
    runtime: &mut R,
) -> ScenarioOutcome {
    let setup = SystemSetup::new(&scenario.graph);
    let board: Board<Vec<u8>> = Board::new();
    let recorder = scenario.observe.then(|| Arc::new(Recorder::new()));
    let correct = populate(scenario, &setup, &board, recorder.as_ref(), runtime);
    if let Some(spec) = &scenario.tamper {
        runtime.set_tamper(spec.build());
    }
    if scenario.pipelined_verify() {
        let mut stage = VerifyStage::new(setup.pool().clone(), setup.registry().clone());
        if let Some(rec) = &recorder {
            stage = stage.with_recorder(rec.clone());
        }
        runtime.set_preflight(Arc::new(NodeVerifyStage(stage)));
    }
    if let Some(rec) = &recorder {
        runtime.set_recorder(rec.clone());
    }
    // Scheduled leavers are not wired to the board (they may depart before
    // deciding), so the stop condition counts only the staying correct set.
    let leavers = scenario.leavers();
    let expected = correct.iter().filter(|v| !leavers.contains(v)).count();
    let report = runtime.run_until_stopped(&mut || board.len() >= expected);
    let obs = recorder.map(|rec| {
        // Dump the shared certificate pool's end-of-run state as gauges,
        // then snapshot — this snapshot supersedes the RuntimeReport's.
        let pool = setup.pool();
        rec.gauge_set("cert_pool_len", pool.len() as u64);
        rec.gauge_set("cert_forged_records", pool.forged_records());
        rec.gauge_set("cert_memo_hits", pool.memo_hits());
        rec.gauge_set("cert_memo_misses", pool.memo_misses());
        rec.snapshot()
    });
    let mut outcome = collect(scenario, &correct, report.end_time, runtime);
    outcome.obs = obs;
    outcome
}

/// Runs a scenario to completion (all correct decided) or to the horizon
/// on the deterministic simulator.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    scenario.run_on(RuntimeKind::Sim)
}

/// Like [`run_scenario`], additionally returning the full delivery trace —
/// used by the indistinguishability tests that compare whole executions
/// event-for-event (Theorem 7). Simulator-only: tracing is a determinism
/// feature.
pub fn run_scenario_traced(scenario: &Scenario) -> (ScenarioOutcome, Vec<cupft_net::TraceEntry>) {
    let mut sim: Simulation<NodeMsg> = Simulation::new(scenario.sim.clone());
    sim.enable_trace();
    let outcome = run_scenario_on(scenario, &mut sim);
    let trace = sim.trace().to_vec();
    (outcome, trace)
}

/// Runs a scenario on the deterministic simulator with full execution
/// recording: every send (captured through a [`RecordingTamper`] chained
/// in front of the scenario's own tamper, if any), every delivery (the
/// simulator's delivery trace), and every decision of a correct process,
/// merged into one [`ExecutionTrace`].
///
/// The trace is a pure function of the scenario (including its seed):
/// recording the same scenario twice yields byte-identical traces — the
/// replay guarantee the invariant checker and the shrinker build on.
/// Simulator-only; fault *injection* itself runs on either substrate.
pub fn run_scenario_recorded(scenario: &Scenario) -> (ScenarioOutcome, ExecutionTrace) {
    let mut sim: Simulation<NodeMsg> = Simulation::new(scenario.sim.clone());
    sim.enable_trace();
    let log = SendLog::new();
    let inner = scenario.tamper.as_ref().map(|t| t.build());
    sim.set_tamper(Box::new(RecordingTamper::new(log.clone(), inner)));
    // The recorder *wraps* the scenario tamper, so strip it from the copy
    // the runner sees — run_scenario_on would otherwise re-install it over
    // the recorder.
    let mut stripped = scenario.clone();
    stripped.tamper = None;
    let outcome = run_scenario_on(&stripped, &mut sim);

    let deliveries: Vec<TraceEvent> = sim
        .trace()
        .iter()
        .map(|e| TraceEvent {
            time: e.time,
            kind: TraceEventKind::Delivered {
                from: e.from,
                to: e.to,
                label: e.label,
            },
        })
        .collect();
    let mut decisions: Vec<(Time, ProcessId, Vec<u8>)> = outcome
        .decisions
        .iter()
        .filter_map(|(&id, decision)| {
            let value = decision.clone()?;
            let time = outcome.decided_times.get(&id).copied().flatten()?;
            Some((time, id, value))
        })
        .collect();
    decisions.sort();
    let decisions = decisions
        .into_iter()
        .map(|(time, process, value)| TraceEvent {
            time,
            kind: TraceEventKind::Decided { process, value },
        })
        .collect();
    let mut trace = ExecutionTrace::assemble(log.take(), deliveries, decisions);
    if scenario.churn.is_some() {
        // Knowledge samples feed the weakened churn invariants; they are
        // only merged for churn scenarios so churn-free trace fingerprints
        // stay exactly what they were before the churn axis existed.
        let mut samples = Vec::new();
        for (&id, (time, view)) in &outcome.crash_views {
            samples.push(TraceEvent {
                time: *time,
                kind: TraceEventKind::Knowledge {
                    process: id,
                    received: view.clone(),
                    moment: KnowledgeMoment::AtCrash,
                },
            });
        }
        for (&id, (time, view)) in &outcome.recovery_views {
            samples.push(TraceEvent {
                time: *time,
                kind: TraceEventKind::Knowledge {
                    process: id,
                    received: view.clone(),
                    moment: KnowledgeMoment::AtRecovery,
                },
            });
        }
        for (&id, view) in &outcome.final_views {
            samples.push(TraceEvent {
                time: outcome.end_time,
                kind: TraceEventKind::Knowledge {
                    process: id,
                    received: view.clone(),
                    moment: KnowledgeMoment::Final,
                },
            });
        }
        trace = trace.with_knowledge(samples);
    }
    (outcome, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::{fig1b, fig4a, fig4b, process_set};

    #[test]
    fn bft_cup_on_fig1b_with_silent_byzantine() {
        let fig = fig1b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{outcome:?}");
        // every correct process identified the paper's sink {1,2,3,4}
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([1, 2, 3, 4])].into_iter().collect()
        );
    }

    #[test]
    fn bft_cupft_on_fig4a_all_correct() {
        let fig = fig4a();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{:?}", outcome.decisions);
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([1, 2, 3, 4, 5])].into_iter().collect()
        );
    }

    #[test]
    fn bft_cupft_on_fig4b_with_silent_byzantine_outside_core() {
        let fig = fig4b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(4, ByzantineStrategy::Silent);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{:?}", outcome.decisions);
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([5, 6, 7, 8, 9])].into_iter().collect()
        );
    }

    #[test]
    #[should_panic(expected = "no threaded-runtime equivalent")]
    fn scripted_adversary_rejected_on_threaded_runtime() {
        let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_policy(DelayPolicy::Asynchronous {
                delta: 10,
                unbounded_max: 1_000_000,
            });
        let _ = scenario.threaded_config();
    }

    #[test]
    fn crash_faulty_decider_does_not_end_run_early() {
        // Process 4 decides long before its (late) crash tick and would
        // inflate a naive decided-count; the run must still continue until
        // every *correct* process has decided (regression test: the board
        // stop condition only counts correct nodes).
        let fig = fig1b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_crash(4, 50_000);
        let outcome = run_scenario(&scenario);
        assert!(!outcome
            .decisions
            .contains_key(&cupft_graph::ProcessId::new(4)));
        let check = outcome.check();
        assert!(check.consensus_solved(), "{outcome:?}");
    }

    #[test]
    fn recorded_run_traces_and_passes_invariants() {
        let fig = fig1b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(7);
        let (outcome, trace) = run_scenario_recorded(&scenario);
        assert!(outcome.check().consensus_solved());
        // every correct decision shows up as a trace event
        assert_eq!(trace.decisions().count(), scenario.correct().len());
        // sends and deliveries were captured
        use cupft_adversary::TraceEventKind;
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Sent { .. })));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Delivered { .. })));
        // the checker agrees with the outcome-level verdicts
        let violations = scenario
            .trace_checker()
            .with_termination_bound(scenario.sim.max_time)
            .check(&trace);
        assert!(violations.is_empty(), "{violations:?}");
        // record → replay is byte-identical
        let (_, replay) = run_scenario_recorded(&scenario);
        assert_eq!(trace.fingerprint(), replay.fingerprint());
        assert_eq!(trace, replay);
    }

    #[test]
    fn tamper_runs_on_scenario_and_is_recorded() {
        use cupft_adversary::{TamperSpec, TraceEventKind};
        let fig = fig1b();
        // Dropping everything the (already Byzantine) process 4 sends is
        // within-model: equivalent to process 4 staying silent.
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(
                4,
                ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                },
            )
            .with_tamper(TamperSpec::DropFrom {
                senders: process_set([4]),
            });
        let (outcome, trace) = run_scenario_recorded(&scenario);
        assert!(outcome.check().consensus_solved(), "{outcome:?}");
        assert!(outcome.stats.messages_dropped > 0);
        let dropped = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Sent { dropped: true, .. }))
            .count() as u64;
        assert_eq!(dropped, outcome.stats.messages_dropped);
    }

    #[test]
    fn leaver_is_excused_from_termination() {
        use cupft_adversary::ChurnEvent;
        let fig = fig1b();
        // Learner 7 departs before it can decide; the run must still stop
        // (the board never waits on it) and termination must excuse it.
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_churn(ChurnSpec::new(vec![ChurnEvent::LeaveAt {
                tick: 5,
                node: ProcessId::new(7),
            }]));
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{outcome:?}");
        assert_eq!(
            outcome.statuses[&ProcessId::new(7)],
            crate::scenario::NodeStatus::Departed
        );
        assert!(outcome.decisions[&ProcessId::new(7)].is_none());
    }

    #[test]
    fn churn_run_passes_weakened_invariants() {
        use cupft_adversary::ChurnEvent;
        let fig = fig1b();
        // Learner 8 joins late; learner 5 crash-recovers mid-run.
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(3)
            .with_churn(ChurnSpec::new(vec![
                ChurnEvent::JoinAt {
                    tick: 400,
                    node: ProcessId::new(8),
                    seed_peers: cupft_graph::process_set([5]),
                },
                ChurnEvent::CrashRecoverAt {
                    tick: 300,
                    node: ProcessId::new(5),
                    down_for: 200,
                },
            ]));
        let (outcome, trace) = run_scenario_recorded(&scenario);
        assert!(outcome.check().consensus_solved(), "{outcome:?}");
        // Knowledge samples rode into the trace (crash + recovery + finals).
        assert!(trace.knowledge().count() >= outcome.final_views.len());
        let violations = scenario.churn_trace_checker(&outcome).check(&trace);
        assert!(violations.is_empty(), "{violations:?}");
        // Same seed, same schedule → byte-identical trace.
        let (_, replay) = run_scenario_recorded(&scenario);
        assert_eq!(trace.fingerprint(), replay.fingerprint());
    }

    #[test]
    fn scenario_config_overlays_only_set_knobs() {
        let base = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_seed(5)
            .with_router_shards(2);
        let config = ScenarioConfig::new()
            .runtime(RuntimeKind::Threaded)
            .observe(true)
            .verify_pool(3);
        let configured = base.clone().configured(&config);
        // Set knobs land…
        assert_eq!(configured.runtime, RuntimeKind::Threaded);
        assert!(configured.observe);
        assert_eq!(configured.verify_pool, Some(3));
        // …unset knobs stay exactly what the base had.
        assert_eq!(configured.sim.seed, 5);
        assert_eq!(configured.router_shards, Some(2));
        assert!(!configured.full_gossip);
        // The legacy setters are forwards onto the same path.
        let via_setter = base.with_observe(true).with_verify_pool(3);
        assert!(via_setter.observe);
        assert_eq!(via_setter.verify_pool, Some(3));
    }

    #[test]
    fn socket_runtime_matches_sim_decisions_on_fig1b() {
        let fig = fig1b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .configured(
                &ScenarioConfig::new()
                    .runtime(RuntimeKind::Socket)
                    .wall_timeout(Duration::from_secs(30)),
            );
        let socket = scenario.run();
        assert!(socket.check().consensus_solved(), "{socket:?}");
        let sim = scenario.run_on(RuntimeKind::Sim);
        assert_eq!(
            socket.decisions, sim.decisions,
            "socket and sim must decide identically"
        );
    }

    #[test]
    fn deterministic_outcomes_by_seed() {
        let fig = fig1b();
        let s1 = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(7);
        let s2 = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(7);
        let o1 = run_scenario(&s1);
        let o2 = run_scenario(&s2);
        assert_eq!(o1.decisions, o2.decisions);
        assert_eq!(o1.end_time, o2.end_time);
        assert_eq!(o1.stats, o2.stats);
    }
}
