//! Whole-system scenario runner: graph + fault assignment + delay policy
//! in, consensus-property verdicts out.
//!
//! Every experiment binary (Table I, Figures 1–4) and most integration
//! tests are expressed as [`Scenario`]s run through the deterministic
//! simulator.

use std::collections::{BTreeMap, BTreeSet};

use cupft_committee::Value;
use cupft_detector::SystemSetup;
use cupft_graph::{DiGraph, ProcessId, ProcessSet};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, NetStats, SimConfig, Time};

use crate::byzantine::{ByzantineActor, ByzantineStrategy};
use crate::msgs::NodeMsg;
use crate::node::{Node, NodeConfig, ProtocolMode};

/// A complete experiment description.
///
/// # Example
///
/// ```
/// use cupft_core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
/// use cupft_graph::fig1b;
///
/// let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
///     .with_byzantine(4, ByzantineStrategy::Silent)
///     .with_seed(7);
/// let outcome = run_scenario(&scenario);
/// assert!(outcome.check().consensus_solved());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The knowledge connectivity graph.
    pub graph: DiGraph,
    /// Identification mode every correct node runs.
    pub mode: ProtocolMode,
    /// Byzantine assignment (absent processes are correct).
    pub byzantine: BTreeMap<ProcessId, ByzantineStrategy>,
    /// Crash times for crash-faulty processes (correct-but-crashing:
    /// Theorem 7's weaker fault model).
    pub crashes: BTreeMap<ProcessId, Time>,
    /// Proposal per process (defaults to `v<id>`).
    pub values: BTreeMap<ProcessId, Value>,
    /// Simulator configuration (seed, horizon, delay policy).
    pub sim: SimConfig,
    /// Discovery tick period.
    pub discovery_period: u64,
    /// Committee view-timeout base.
    pub view_timeout_base: u64,
}

impl Scenario {
    /// A scenario over `graph` with the given mode and defaults everywhere
    /// else.
    pub fn new(graph: DiGraph, mode: ProtocolMode) -> Self {
        Scenario {
            graph,
            mode,
            byzantine: BTreeMap::new(),
            crashes: BTreeMap::new(),
            values: BTreeMap::new(),
            sim: SimConfig {
                seed: 0,
                max_time: 200_000,
                policy: DelayPolicy::PartialSynchrony {
                    gst: 200,
                    delta: 10,
                    pre_gst_max: 120,
                },
            },
            discovery_period: 20,
            view_timeout_base: 400,
        }
    }

    /// Assigns a Byzantine strategy.
    pub fn with_byzantine(mut self, id: u64, strategy: ByzantineStrategy) -> Self {
        self.byzantine.insert(ProcessId::new(id), strategy);
        self
    }

    /// Assigns a crash time.
    pub fn with_crash(mut self, id: u64, at: Time) -> Self {
        self.crashes.insert(ProcessId::new(id), at);
        self
    }

    /// Sets a proposal value.
    pub fn with_value(mut self, id: u64, value: &'static [u8]) -> Self {
        self.values
            .insert(ProcessId::new(id), Value::from_static(value));
        self
    }

    /// Sets the delay policy.
    pub fn with_policy(mut self, policy: DelayPolicy) -> Self {
        self.sim.policy = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Sets the simulation horizon.
    pub fn with_horizon(mut self, max_time: Time) -> Self {
        self.sim.max_time = max_time;
        self
    }

    /// The correct processes of this scenario (crash-faulty processes are
    /// *not* correct — they are counted as faulty for the verdicts).
    pub fn correct(&self) -> ProcessSet {
        self.graph
            .vertices()
            .filter(|v| !self.byzantine.contains_key(v) && !self.crashes.contains_key(v))
            .collect()
    }

    fn value_of(&self, id: ProcessId) -> Value {
        self.values
            .get(&id)
            .cloned()
            .unwrap_or_else(|| Value::from(format!("v{}", id.raw()).into_bytes()))
    }

    /// Values that could legitimately be decided: every process's proposal
    /// plus any value a Byzantine equivocator may inject.
    fn allowed_values(&self) -> BTreeSet<Vec<u8>> {
        let mut allowed: BTreeSet<Vec<u8>> = self
            .graph
            .vertices()
            .map(|v| self.value_of(v).to_vec())
            .collect();
        for strategy in self.byzantine.values() {
            if let ByzantineStrategy::EquivocateValue {
                value_a, value_b, ..
            } = strategy
            {
                allowed.insert(value_a.to_vec());
                allowed.insert(value_b.to_vec());
            }
        }
        allowed
    }
}

/// Per-process observations of one run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Decisions of the correct processes (`None` = undecided at horizon).
    pub decisions: BTreeMap<ProcessId, Option<Vec<u8>>>,
    /// Sink/core sets identified by the correct processes.
    pub detections: BTreeMap<ProcessId, Option<ProcessSet>>,
    /// Identification times.
    pub detection_times: BTreeMap<ProcessId, Option<Time>>,
    /// Decision times.
    pub decided_times: BTreeMap<ProcessId, Option<Time>>,
    /// Simulated end time.
    pub end_time: Time,
    /// Network statistics.
    pub stats: NetStats,
    allowed_values: BTreeSet<Vec<u8>>,
}

/// Verdicts on the four consensus properties (Section II-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusCheck {
    /// No two correct processes decided differently.
    pub agreement: bool,
    /// Every correct process decided within the horizon.
    pub termination: bool,
    /// Every decided value was proposed by some process.
    pub validity: bool,
    /// The distinct values decided by correct processes.
    pub decided_values: BTreeSet<Vec<u8>>,
}

impl ConsensusCheck {
    /// All properties hold (Integrity holds by construction: nodes set
    /// their decision at most once).
    pub fn consensus_solved(&self) -> bool {
        self.agreement && self.termination && self.validity
    }
}

impl ScenarioOutcome {
    /// Evaluates the consensus properties over the recorded decisions.
    pub fn check(&self) -> ConsensusCheck {
        let decided_values: BTreeSet<Vec<u8>> = self
            .decisions
            .values()
            .flatten()
            .cloned()
            .collect();
        ConsensusCheck {
            agreement: decided_values.len() <= 1,
            termination: self.decisions.values().all(|d| d.is_some()),
            validity: decided_values
                .iter()
                .all(|v| self.allowed_values.contains(v)),
            decided_values,
        }
    }

    /// The unique sink/core sets identified across correct processes.
    pub fn distinct_detections(&self) -> BTreeSet<ProcessSet> {
        self.detections.values().flatten().cloned().collect()
    }

    /// Latest decision time among deciders (simulated ticks).
    pub fn last_decision_time(&self) -> Option<Time> {
        self.decided_times.values().flatten().copied().max()
    }
}

/// Runs a scenario to completion (all correct decided) or to the horizon.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario_traced(scenario).0
}

/// Like [`run_scenario`], additionally returning the full delivery trace —
/// used by the indistinguishability tests that compare whole executions
/// event-for-event (Theorem 7).
pub fn run_scenario_traced(
    scenario: &Scenario,
) -> (ScenarioOutcome, Vec<cupft_net::TraceEntry>) {
    let setup = SystemSetup::new(&scenario.graph);
    let mut sim: Simulation<NodeMsg> = Simulation::new(scenario.sim.clone());
    sim.enable_trace();
    let correct = scenario.correct();

    for v in scenario.graph.vertices() {
        if let Some(strategy) = scenario.byzantine.get(&v) {
            let key = setup.key_of(v).expect("registered").clone();
            sim.add_actor(Box::new(ByzantineActor::new(
                key,
                setup.registry().clone(),
                setup.oracle().pd_of(v),
                strategy.clone(),
                scenario.discovery_period,
            )));
        } else {
            let config = NodeConfig {
                mode: scenario.mode,
                discovery_period: scenario.discovery_period,
                replica: cupft_committee::ReplicaConfig {
                    timeout_base: scenario.view_timeout_base,
                },
                crash_at: scenario.crashes.get(&v).copied(),
            };
            let node = Node::from_setup(&setup, v, scenario.value_of(v), config)
                .expect("vertex registered");
            sim.add_actor(Box::new(node));
        }
    }

    let correct_list: Vec<ProcessId> = correct.iter().copied().collect();
    sim.run_until(|s| {
        correct_list
            .iter()
            .all(|&id| s.actor_as::<Node>(id).is_some_and(|n| n.decision().is_some()))
    });

    let end_time = sim.now();
    let stats = sim.stats().clone();
    let trace = sim.trace().to_vec();
    let mut decisions = BTreeMap::new();
    let mut detections = BTreeMap::new();
    let mut detection_times = BTreeMap::new();
    let mut decided_times = BTreeMap::new();
    for (id, actor) in sim.into_actors() {
        if !correct.contains(&id) {
            continue;
        }
        let node = actor
            .as_any()
            .downcast_ref::<Node>()
            .expect("correct actors are Nodes");
        decisions.insert(id, node.decision().map(|v| v.to_vec()));
        detections.insert(id, node.detection().map(|d| d.members.clone()));
        detection_times.insert(id, node.detection_time);
        decided_times.insert(id, node.decided_time);
    }

    (
        ScenarioOutcome {
            decisions,
            detections,
            detection_times,
            decided_times,
            end_time,
            stats,
            allowed_values: scenario.allowed_values(),
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::{fig1b, fig4a, fig4b, process_set};

    #[test]
    fn bft_cup_on_fig1b_with_silent_byzantine() {
        let fig = fig1b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{outcome:?}");
        // every correct process identified the paper's sink {1,2,3,4}
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([1, 2, 3, 4])].into_iter().collect()
        );
    }

    #[test]
    fn bft_cupft_on_fig4a_all_correct() {
        let fig = fig4a();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{:?}", outcome.decisions);
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([1, 2, 3, 4, 5])].into_iter().collect()
        );
    }

    #[test]
    fn bft_cupft_on_fig4b_with_silent_byzantine_outside_core() {
        let fig = fig4b();
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(4, ByzantineStrategy::Silent);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "{:?}", outcome.decisions);
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([5, 6, 7, 8, 9])].into_iter().collect()
        );
    }

    #[test]
    fn deterministic_outcomes_by_seed() {
        let fig = fig1b();
        let s1 = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(7);
        let s2 = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(7);
        let o1 = run_scenario(&s1);
        let o2 = run_scenario(&s2);
        assert_eq!(o1.decisions, o2.decisions);
        assert_eq!(o1.end_time, o2.end_time);
        assert_eq!(o1.stats, o2.stats);
    }
}
