//! The batch engine: run whole families of [`Scenario`]s in parallel.
//!
//! A [`ScenarioSuite`] is an ordered list of labeled scenarios; `run`
//! fans them across OS threads with [`std::thread::scope`] and returns a
//! [`SuiteReport`] of per-scenario verdicts plus aggregates. Scenarios are
//! independent by construction (each builds its own registry, actors, and
//! runtime), so the fan-out is embarrassingly parallel; report order is
//! always the insertion order regardless of which worker finished first,
//! and — on the deterministic simulator — every verdict is identical to a
//! sequential run.
//!
//! [`ScenarioGrid`] builds the standard cross product the experiment
//! binaries sweep: graph family × fault assignment × Byzantine strategy ×
//! delay policy × seed (the strategy axis — [`StrategyCase`] — carries
//! [`ByzantineStrategy`] spec trees from the fault-injection engine and is
//! skipped in labels when unset). The graph axis accepts hand-picked
//! graphs ([`ScenarioGrid::graph`]) or a whole *family × size* sweep
//! generated from a [`cupft_graph::GraphFamily`]
//! ([`ScenarioGrid::family`]), so suites can scale topology families
//! alongside faults, strategies, and seeds.
//!
//! # Example
//!
//! ```
//! use cupft_core::{ProtocolMode, RuntimeKind, Scenario, ScenarioSuite};
//! use cupft_graph::fig4a;
//!
//! let mut suite = ScenarioSuite::new();
//! for seed in 0..4 {
//!     suite.push(
//!         format!("fig4a/s{seed}"),
//!         Scenario::new(fig4a().graph().clone(), ProtocolMode::UnknownThreshold)
//!             .with_seed(seed),
//!     );
//! }
//! let report = suite.run(RuntimeKind::Sim);
//! assert_eq!(report.verdicts.len(), 4);
//! assert!(report.all_solved());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cupft_adversary::ChurnSpec;
use cupft_graph::{DiGraph, GraphFamily};
use cupft_net::{DelayPolicy, Time};

use crate::byzantine::ByzantineStrategy;
use crate::node::ProtocolMode;
use crate::scenario::{ConsensusCheck, RuntimeKind, Scenario, ScenarioOutcome};

/// One labeled scenario of a suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Display label (grid entries use `graph/fault/policy/seed`).
    pub label: String,
    /// The experiment.
    pub scenario: Scenario,
}

/// An ordered batch of scenarios executable in parallel.
#[derive(Debug, Clone, Default)]
pub struct ScenarioSuite {
    entries: Vec<SuiteEntry>,
    workers: Option<usize>,
}

impl ScenarioSuite {
    /// An empty suite.
    pub fn new() -> Self {
        ScenarioSuite::default()
    }

    /// Appends a labeled scenario.
    pub fn push(&mut self, label: impl Into<String>, scenario: Scenario) {
        self.entries.push(SuiteEntry {
            label: label.into(),
            scenario,
        });
    }

    /// Appends every entry of `other` (used to join per-graph
    /// [`ScenarioGrid`]s whose fault axes differ — e.g. each graph has its
    /// own Byzantine process ID).
    pub fn extend(&mut self, other: ScenarioSuite) {
        self.entries.extend(other.entries);
    }

    /// Caps the worker thread count (default: available parallelism,
    /// bounded by the suite size).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The scenarios in insertion order.
    pub fn entries(&self) -> &[SuiteEntry] {
        &self.entries
    }

    /// Mutable access to the scenarios — e.g. to retune tick-denominated
    /// knobs (discovery period, view timeout) before a wall-clock run on
    /// the threaded substrate, where they are read as milliseconds.
    pub fn entries_mut(&mut self) -> &mut [SuiteEntry] {
        &mut self.entries
    }

    /// Pins the threaded-substrate router shard count on every entry
    /// (see [`Scenario::with_router_shards`]) — the suite-level knob for
    /// sim-vs-threaded parity sweeps across shard counts. No effect on
    /// simulator runs.
    pub fn set_router_shards(&mut self, shards: usize) {
        for entry in &mut self.entries {
            entry.scenario.router_shards = Some(shards);
        }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn worker_count(&self, kind: RuntimeKind) -> usize {
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        // Threaded-runtime scenarios spawn one thread per actor on top of
        // the worker, so cap the fan-out to keep total thread count sane.
        let cap = match kind {
            RuntimeKind::Sim => hw,
            RuntimeKind::Threaded => hw.min(4),
            // Socket scenarios additionally hold TCP listeners, writer,
            // and reader threads, so fan out even more conservatively.
            RuntimeKind::Socket => hw.min(2),
        };
        self.workers.unwrap_or(cap).min(self.entries.len()).max(1)
    }

    /// Runs every scenario on the given substrate, fanning across worker
    /// threads. Verdict order matches insertion order.
    pub fn run(&self, kind: RuntimeKind) -> SuiteReport {
        let started = Instant::now();
        let workers = self.worker_count(kind);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<SuiteVerdict>>> =
            Mutex::new((0..self.entries.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(entry) = self.entries.get(idx) else {
                        break;
                    };
                    let run_started = Instant::now();
                    let outcome = entry.scenario.run_on(kind);
                    let verdict = SuiteVerdict {
                        label: entry.label.clone(),
                        check: outcome.check(),
                        wall: run_started.elapsed(),
                        outcome,
                    };
                    results.lock().expect("worker panicked holding results")[idx] = Some(verdict);
                });
            }
        });

        let verdicts = results
            .into_inner()
            .expect("worker panicked holding results")
            .into_iter()
            .map(|v| v.expect("every index visited"))
            .collect();
        SuiteReport {
            kind,
            workers,
            verdicts,
            wall: started.elapsed(),
        }
    }
}

/// One scenario's result inside a [`SuiteReport`].
#[derive(Debug, Clone)]
pub struct SuiteVerdict {
    /// The entry's label.
    pub label: String,
    /// Consensus-property verdicts.
    pub check: ConsensusCheck,
    /// Wall-clock time this scenario took on its worker.
    pub wall: Duration,
    /// The full per-process observations.
    pub outcome: ScenarioOutcome,
}

impl SuiteVerdict {
    /// Whether consensus was solved (agreement ∧ termination ∧ validity).
    pub fn solved(&self) -> bool {
        self.check.consensus_solved()
    }
}

/// Aggregated outcome of a [`ScenarioSuite`] run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The substrate the suite ran on.
    pub kind: RuntimeKind,
    /// Worker threads used.
    pub workers: usize,
    /// Per-scenario verdicts, in suite insertion order.
    pub verdicts: Vec<SuiteVerdict>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl SuiteReport {
    /// Number of scenarios that solved consensus.
    pub fn solved_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.solved()).count()
    }

    /// Whether every scenario solved consensus.
    pub fn all_solved(&self) -> bool {
        self.solved_count() == self.verdicts.len()
    }

    /// The labels of scenarios that failed a consensus property.
    pub fn failures(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| !v.solved())
            .map(|v| v.label.as_str())
            .collect()
    }

    /// Total messages sent across all scenarios.
    pub fn total_messages(&self) -> u64 {
        self.verdicts
            .iter()
            .map(|v| v.outcome.stats.messages_sent)
            .sum()
    }

    /// Total payload units (e.g. certificates carried by SETPDS traffic)
    /// sent across all scenarios.
    pub fn total_payload_units(&self) -> u64 {
        self.verdicts
            .iter()
            .map(|v| v.outcome.stats.payload_units)
            .sum()
    }

    /// One-line summary for experiment binaries.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} solved on {} ({} workers, {} msgs, {:.2?} wall)",
            self.solved_count(),
            self.verdicts.len(),
            self.kind.label(),
            self.workers,
            self.total_messages(),
            self.wall,
        )
    }
}

/// A graph-family axis entry of a [`ScenarioGrid`].
#[derive(Debug, Clone)]
pub struct GraphCase {
    /// Display label (e.g. `"fig1b"`).
    pub label: String,
    /// The knowledge connectivity graph.
    pub graph: DiGraph,
    /// The identification mode correct nodes run on it.
    pub mode: ProtocolMode,
}

/// A fault-assignment axis entry of a [`ScenarioGrid`].
#[derive(Debug, Clone, Default)]
pub struct FaultCase {
    /// Display label (e.g. `"silent4"`).
    pub label: String,
    /// Byzantine assignments (raw process ID → strategy).
    pub byzantine: Vec<(u64, ByzantineStrategy)>,
    /// Crash times (raw process ID → crash tick).
    pub crashes: Vec<(u64, Time)>,
}

impl FaultCase {
    /// The fault-free assignment.
    pub fn none() -> Self {
        FaultCase {
            label: "correct".into(),
            ..FaultCase::default()
        }
    }

    /// A single silent Byzantine process.
    pub fn silent(id: u64) -> Self {
        FaultCase {
            label: format!("silent{id}"),
            byzantine: vec![(id, ByzantineStrategy::Silent)],
            crashes: Vec::new(),
        }
    }
}

/// A strategy-assignment axis entry of a [`ScenarioGrid`] — the
/// fault-injection engine's own axis, orthogonal to [`FaultCase`]
/// (which keeps carrying crashes and legacy per-graph Byzantine IDs).
/// When the axis is set, grid labels gain a strategy segment:
/// `graph/fault/strategy/policy/seed`.
#[derive(Debug, Clone, Default)]
pub struct StrategyCase {
    /// Display label (defaults to the specs' own compact labels).
    pub label: String,
    /// Strategy assignments (raw process ID → spec).
    pub assign: Vec<(u64, ByzantineStrategy)>,
}

impl StrategyCase {
    /// The no-extra-faults entry (useful as a baseline row on an
    /// otherwise adversarial axis).
    pub fn none() -> Self {
        StrategyCase {
            label: "honest".into(),
            assign: Vec::new(),
        }
    }

    /// A single process running `spec`, labeled `<spec-label><id>`.
    pub fn single(id: u64, spec: ByzantineStrategy) -> Self {
        StrategyCase {
            label: format!("{}@{id}", spec.label()),
            assign: vec![(id, spec)],
        }
    }

    /// Overrides the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A churn-schedule axis entry of a [`ScenarioGrid`] — dynamic membership
/// as a grid dimension, orthogonal to faults and strategies. When the axis
/// is set, grid labels gain a churn segment (after the strategy segment):
/// `graph/fault[/strategy][/churn]/policy/seed`.
#[derive(Debug, Clone, Default)]
pub struct ChurnCase {
    /// Display label (defaults to the spec's own compact label).
    pub label: String,
    /// The membership schedule.
    pub spec: ChurnSpec,
}

impl ChurnCase {
    /// The stable-membership entry (useful as a baseline row on an
    /// otherwise churning axis).
    pub fn none() -> Self {
        ChurnCase {
            label: "stable".into(),
            spec: ChurnSpec::default(),
        }
    }

    /// A case labeled with the spec's own compact label
    /// (`churn[join@100<9>,...]`).
    pub fn of(spec: ChurnSpec) -> Self {
        ChurnCase {
            label: spec.label(),
            spec,
        }
    }

    /// Overrides the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A delay-policy axis entry of a [`ScenarioGrid`].
#[derive(Debug, Clone)]
pub struct PolicyCase {
    /// Display label (e.g. `"psync"`).
    pub label: String,
    /// The scheduling adversary.
    pub policy: DelayPolicy,
    /// Simulation horizon for cells under this policy.
    pub horizon: Time,
}

/// The cross product the experiment binaries sweep: graph family × fault
/// assignment × delay policy × seed, expanded into a [`ScenarioSuite`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    graphs: Vec<GraphCase>,
    faults: Vec<FaultCase>,
    strategies: Vec<StrategyCase>,
    churns: Vec<ChurnCase>,
    policies: Vec<PolicyCase>,
    seeds: Vec<u64>,
}

impl ScenarioGrid {
    /// An empty grid.
    pub fn new() -> Self {
        ScenarioGrid::default()
    }

    /// Adds a graph-family axis entry.
    pub fn graph(mut self, label: impl Into<String>, graph: DiGraph, mode: ProtocolMode) -> Self {
        self.graphs.push(GraphCase {
            label: label.into(),
            graph,
            mode,
        });
        self
    }

    /// Adds a *family × size* axis: one graph entry per requested size,
    /// generated from `family` re-parameterized by
    /// [`GraphFamily::scaled`] and labeled `"<family>@n<size>"`. All
    /// entries share `seed` (vary the scenario seed axis, not the
    /// topology, within one grid) and run in `mode`.
    ///
    /// Family samples embed no Byzantine processes; cross them with
    /// [`FaultCase`] / [`StrategyCase`] axes by vertex ID (IDs are
    /// contiguous from 1 with the sink first — see the
    /// [`cupft_graph::GraphFamily`] docs for the layout).
    ///
    /// # Panics
    ///
    /// Panics if a scaled parameterization is invalid or fails to
    /// generate — a grid construction bug, not a runtime condition.
    pub fn family(
        mut self,
        family: &GraphFamily,
        sizes: impl IntoIterator<Item = usize>,
        seed: u64,
        mode: ProtocolMode,
    ) -> Self {
        for size in sizes {
            let scaled = family.scaled(size);
            let sample = scaled
                .generate(seed)
                .unwrap_or_else(|e| panic!("family axis {}: {e}", scaled.label()));
            self.graphs.push(GraphCase {
                label: format!("{}@n{size}", family.name()),
                graph: sample.system.graph,
                mode,
            });
        }
        self
    }

    /// Adds a fault-assignment axis entry.
    pub fn fault(mut self, case: FaultCase) -> Self {
        self.faults.push(case);
        self
    }

    /// Adds a strategy-assignment axis entry. Leaving the axis unset
    /// keeps the classic `graph/fault/policy/seed` labels; setting it
    /// crosses every [`StrategyCase`] into the product and inserts its
    /// label segment.
    pub fn strategy(mut self, case: StrategyCase) -> Self {
        self.strategies.push(case);
        self
    }

    /// Adds a churn-schedule axis entry. Leaving the axis unset keeps the
    /// classic labels; setting it crosses every [`ChurnCase`] into the
    /// product and inserts its label segment.
    pub fn churn(mut self, case: ChurnCase) -> Self {
        self.churns.push(case);
        self
    }

    /// Adds a delay-policy axis entry.
    pub fn policy(mut self, label: impl Into<String>, policy: DelayPolicy, horizon: Time) -> Self {
        self.policies.push(PolicyCase {
            label: label.into(),
            policy,
            horizon,
        });
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Expands the cross product. Unset fault/policy/seed axes fall back
    /// to a single default entry (fault-free / the [`Scenario::new`]
    /// defaults / seed 0), so a grid is runnable as soon as it has one
    /// graph.
    pub fn build(&self) -> ScenarioSuite {
        let default_faults = [FaultCase::none()];
        let faults: &[FaultCase] = if self.faults.is_empty() {
            &default_faults
        } else {
            &self.faults
        };
        let seeds: &[u64] = if self.seeds.is_empty() {
            &[0]
        } else {
            &self.seeds
        };
        let strategy_axis: Vec<Option<&StrategyCase>> = if self.strategies.is_empty() {
            vec![None]
        } else {
            self.strategies.iter().map(Some).collect()
        };
        let churn_axis: Vec<Option<&ChurnCase>> = if self.churns.is_empty() {
            vec![None]
        } else {
            self.churns.iter().map(Some).collect()
        };
        let policy_axis: Vec<Option<&PolicyCase>> = if self.policies.is_empty() {
            vec![None]
        } else {
            self.policies.iter().map(Some).collect()
        };
        let mut suite = ScenarioSuite::new();
        for g in &self.graphs {
            for f in faults {
                for s in &strategy_axis {
                    for c in &churn_axis {
                        for p in &policy_axis {
                            for &seed in seeds {
                                let mut scenario =
                                    Scenario::new(g.graph.clone(), g.mode).with_seed(seed);
                                for (id, strategy) in &f.byzantine {
                                    scenario = scenario.with_byzantine(*id, strategy.clone());
                                }
                                for &(id, at) in &f.crashes {
                                    scenario = scenario.with_crash(id, at);
                                }
                                let strategy_segment = match s {
                                    Some(case) => {
                                        for (id, spec) in &case.assign {
                                            // A cell whose label promises both a
                                            // FaultCase assignment and a strategy
                                            // for the same process would silently
                                            // run only the latter (map insert =
                                            // last-wins) — reject the ambiguity.
                                            assert!(
                                                !f.byzantine.iter().any(|(fid, _)| fid == id),
                                                "process {id} is assigned by both fault case \
                                                 {:?} and strategy case {:?}; give each axis \
                                                 disjoint process IDs",
                                                f.label,
                                                case.label,
                                            );
                                            scenario = scenario.with_byzantine(*id, spec.clone());
                                        }
                                        format!("/{}", case.label)
                                    }
                                    None => String::new(),
                                };
                                let churn_segment = match c {
                                    Some(case) => {
                                        if !case.spec.is_empty() {
                                            scenario = scenario.with_churn(case.spec.clone());
                                        }
                                        format!("/{}", case.label)
                                    }
                                    None => String::new(),
                                };
                                let policy_label = match *p {
                                    Some(case) => {
                                        scenario = scenario
                                            .with_policy(case.policy.clone())
                                            .with_horizon(case.horizon);
                                        case.label.as_str()
                                    }
                                    None => "default",
                                };
                                suite.push(
                                    format!(
                                        "{}/{}{}{}/{}/s{}",
                                        g.label,
                                        f.label,
                                        strategy_segment,
                                        churn_segment,
                                        policy_label,
                                        seed
                                    ),
                                    scenario,
                                );
                            }
                        }
                    }
                }
            }
        }
        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::{fig1b, fig4a};

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .graph(
                "fig4a",
                fig4a().graph().clone(),
                ProtocolMode::UnknownThreshold,
            )
            .fault(FaultCase::none())
            .policy(
                "psync",
                DelayPolicy::PartialSynchrony {
                    gst: 200,
                    delta: 10,
                    pre_gst_max: 120,
                },
                200_000,
            )
            .seeds(0..2)
    }

    #[test]
    fn grid_expands_cross_product() {
        let suite = small_grid().build();
        assert_eq!(suite.len(), 4); // 2 graphs x 1 fault x 1 policy x 2 seeds
        assert_eq!(suite.entries()[0].label, "fig1b/correct/psync/s0");
        assert_eq!(suite.entries()[3].label, "fig4a/correct/psync/s1");
    }

    #[test]
    fn grid_defaults_fill_missing_axes() {
        let suite = ScenarioGrid::new()
            .graph(
                "fig4a",
                fig4a().graph().clone(),
                ProtocolMode::UnknownThreshold,
            )
            .build();
        assert_eq!(suite.len(), 1);
        assert_eq!(suite.entries()[0].label, "fig4a/correct/default/s0");
    }

    #[test]
    fn suite_runs_in_parallel_and_preserves_order() {
        let suite = small_grid().build();
        let report = suite.run(RuntimeKind::Sim);
        assert_eq!(report.verdicts.len(), 4);
        assert!(report.all_solved(), "failures: {:?}", report.failures());
        let labels: Vec<&str> = report.verdicts.iter().map(|v| v.label.as_str()).collect();
        let expected: Vec<&str> = suite.entries().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, expected);
        assert!(report.total_messages() > 0);
        assert!(report.summary().contains("4/4 solved on sim"));
    }

    #[test]
    fn parallel_suite_matches_sequential_outcomes() {
        let suite = small_grid().build();
        let parallel = suite.clone().run(RuntimeKind::Sim);
        let sequential = suite.clone().with_workers(1).run(RuntimeKind::Sim);
        for (p, s) in parallel.verdicts.iter().zip(&sequential.verdicts) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.check, s.check);
            assert_eq!(p.outcome.decisions, s.outcome.decisions);
            assert_eq!(p.outcome.end_time, s.outcome.end_time);
        }
    }

    #[test]
    fn strategy_axis_crosses_and_labels() {
        let suite = ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .strategy(StrategyCase::single(4, ByzantineStrategy::Silent))
            .strategy(StrategyCase::single(
                4,
                ByzantineStrategy::TargetSubset {
                    targets: cupft_graph::process_set([1, 2]),
                    inner: Box::new(ByzantineStrategy::Silent),
                },
            ))
            .seeds(0..2)
            .build();
        assert_eq!(suite.len(), 4); // 1 graph x 2 strategies x 2 seeds
        assert_eq!(
            suite.entries()[0].label,
            "fig1b/correct/silent@4/default/s0"
        );
        assert_eq!(
            suite.entries()[2].label,
            "fig1b/correct/target{1,2}(silent)@4/default/s0"
        );
        let byz = &suite.entries()[2].scenario.byzantine;
        assert!(byz.contains_key(&cupft_graph::ProcessId::new(4)));
    }

    #[test]
    fn churn_axis_crosses_and_labels() {
        use cupft_adversary::ChurnEvent;
        use cupft_graph::ProcessId;
        let suite = ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .churn(ChurnCase::none())
            .churn(ChurnCase::of(ChurnSpec::new(vec![ChurnEvent::LeaveAt {
                tick: 50,
                node: ProcessId::new(7),
            }])))
            .seeds(0..2)
            .build();
        assert_eq!(suite.len(), 4); // 1 graph x 2 churn cases x 2 seeds
        assert_eq!(suite.entries()[0].label, "fig1b/correct/stable/default/s0");
        assert_eq!(
            suite.entries()[2].label,
            "fig1b/correct/churn[leave@50<7>]/default/s0"
        );
        // The stable baseline carries no churn at all.
        assert!(suite.entries()[0].scenario.churn.is_none());
        assert!(suite.entries()[2].scenario.churn.is_some());
    }

    #[test]
    #[should_panic(expected = "disjoint process IDs")]
    fn colliding_fault_and_strategy_axes_are_rejected() {
        ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .fault(FaultCase::silent(4))
            .strategy(StrategyCase::single(4, ByzantineStrategy::Silent))
            .build();
    }

    #[test]
    fn family_axis_expands_sizes_into_graph_entries() {
        let family = GraphFamily::erdos_renyi(16, 1);
        let suite = ScenarioGrid::new()
            .family(&family, [10, 16, 22], 3, ProtocolMode::KnownThreshold(1))
            .seeds(0..2)
            .build();
        assert_eq!(suite.len(), 6); // 3 sizes x 2 seeds
        assert_eq!(
            suite.entries()[0].label,
            "erdos-renyi@n10/correct/default/s0"
        );
        assert_eq!(
            suite.entries()[4].label,
            "erdos-renyi@n22/correct/default/s0"
        );
        let sizes: Vec<usize> = suite
            .entries()
            .iter()
            .step_by(2)
            .map(|e| e.scenario.graph.vertex_count())
            .collect();
        assert_eq!(sizes, vec![10, 16, 22]);
    }

    #[test]
    fn family_axis_runs_consensus() {
        let family = GraphFamily::erdos_renyi(12, 1);
        let report = ScenarioGrid::new()
            .family(&family, [9, 12], 1, ProtocolMode::KnownThreshold(1))
            .build()
            .run(RuntimeKind::Sim);
        assert!(report.all_solved(), "failures: {:?}", report.failures());
    }

    #[test]
    fn failures_are_reported_by_label() {
        // An asynchronous cell cannot terminate within the horizon.
        let suite = ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .policy(
                "async",
                DelayPolicy::Asynchronous {
                    delta: 10,
                    unbounded_max: 1_000_000,
                },
                20_000,
            )
            .build();
        let report = suite.run(RuntimeKind::Sim);
        assert_eq!(report.solved_count(), 0);
        assert_eq!(report.failures(), vec!["fig1b/correct/async/s0"]);
        // Safety must hold even where liveness cannot.
        assert!(report.verdicts[0].check.agreement);
    }
}
