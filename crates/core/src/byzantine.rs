//! Byzantine process strategies over [`NodeMsg`], built on the
//! [`cupft_adversary`] strategy engine.
//!
//! The adversary is *static* (Section II-A): the strategy of each faulty
//! process is fixed before the run. Signatures bound what a Byzantine
//! process can do in the discovery plane — it may fabricate *its own* PD
//! freely (even equivocate between several self-signed PDs), but cannot
//! alter or invent records for correct processes (a forgery attempt is
//! [`ByzantineStrategy::ForgeUnsignedPd`], and receivers reject it). In
//! the committee plane a Byzantine leader may equivocate proposals, and
//! any Byzantine member may stay silent.
//!
//! Strategies are *described* by [`ByzantineStrategy`] (=
//! [`cupft_adversary::StrategySpec`], re-exported for compatibility — a
//! cloneable, shrinkable expression tree) and *executed* by per-strategy
//! [`Strategy`] implementations compiled via [`build_strategy`]. The old
//! enum-dispatch actor is gone; [`ByzantineActor`] is now a thin adapter
//! binding a compiled strategy to a process identity, so combinator specs
//! (delay-release, target-subset, flip-after) compose with every protocol
//! strategy for free.

use std::sync::Arc;

use cupft_adversary::{DelayRelease, FlipAfter, Mute, Strategy, TargetSubset};
use cupft_committee::{CommitteeMsg, Value};
use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_detector::PdCertificate;
use cupft_discovery::{DiscoveryMsg, DiscoveryState, SyncState, DISCOVERY_TICK};
use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::{Actor, Context};

use crate::msgs::NodeMsg;

/// What a faulty process does (compatibility re-export of
/// [`cupft_adversary::StrategySpec`]; see that type for the variants).
pub use cupft_adversary::StrategySpec as ByzantineStrategy;

/// Shared behavior of strategies that participate in the discovery plane:
/// run Algorithm 1 ticks on the configured period and answer discovery
/// traffic from a [`DiscoveryState`].
#[derive(Debug)]
struct DiscoveryLoop {
    discovery: DiscoveryState,
    period: u64,
}

impl DiscoveryLoop {
    fn new(key: &SigningKey, registry: KeyRegistry, pd: ProcessSet, period: u64) -> Self {
        DiscoveryLoop {
            discovery: DiscoveryState::new(key, registry, pd),
            period,
        }
    }

    fn start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.tick(ctx);
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }

    fn tick(&mut self, ctx: &mut Context<NodeMsg>) {
        for (to, msg) in self.discovery.tick() {
            ctx.send(to, NodeMsg::Discovery(msg));
        }
    }

    fn handle(&mut self, from: ProcessId, msg: DiscoveryMsg, ctx: &mut Context<NodeMsg>) {
        for (to, out) in self.discovery.handle(from, msg) {
            ctx.send(to, NodeMsg::Discovery(out));
        }
    }

    /// Returns whether the timer was the discovery tick (and re-arms it).
    fn on_timer(&mut self, kind: u64, ctx: &mut Context<NodeMsg>) -> bool {
        if kind != DISCOVERY_TICK {
            return false;
        }
        self.tick(ctx);
        ctx.set_timer(DISCOVERY_TICK, self.period);
        true
    }
}

/// Participates in discovery but advertises a fabricated own PD — the
/// Section III worked example (process 4 claiming `PD = {1,2,3}`). Silent
/// in the committee plane.
#[derive(Debug)]
struct FakePdStrategy {
    disc: DiscoveryLoop,
    claimed: ProcessSet,
}

impl Strategy<NodeMsg> for FakePdStrategy {
    fn name(&self) -> String {
        format!("fakepd{}", cupft_adversary::fmt_process_set(&self.claimed))
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.disc.start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        if let NodeMsg::Discovery(m) = msg {
            self.disc.handle(from, m, ctx);
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<NodeMsg>) {
        self.disc.on_timer(kind, ctx);
    }
}

/// Advertises different self-signed PDs to different requesters
/// (split-brain attempt in the discovery plane). Does not run discovery
/// rounds of its own.
#[derive(Debug)]
struct EquivocatePdStrategy {
    key: SigningKey,
    even: ProcessSet,
    odd: ProcessSet,
}

impl Strategy<NodeMsg> for EquivocatePdStrategy {
    fn name(&self) -> String {
        "equivpd".into()
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        if let NodeMsg::Discovery(DiscoveryMsg::GetPds { .. }) = msg {
            let pd = if from.raw().is_multiple_of(2) {
                &self.even
            } else {
                &self.odd
            };
            let cert = PdCertificate::sign(&self.key, pd);
            // A fabricated zero sync state never matches a correct
            // requester's own state, so requesters keep polling — exactly
            // the baseline behavior toward a Byzantine peer.
            ctx.send(
                from,
                NodeMsg::Discovery(DiscoveryMsg::SetPds {
                    certs: vec![Arc::new(cert)].into(),
                    state: SyncState::default(),
                }),
            );
        }
    }
}

/// Runs discovery honestly and *additionally* pushes a forged (unsigned)
/// PD record claiming to be `victim`'s — the attack Algorithm 1's
/// signatures exist to reject: correct receivers verify and discard it,
/// so consensus on a sufficient graph is unaffected.
#[derive(Debug)]
struct ForgeUnsignedPdStrategy {
    disc: DiscoveryLoop,
    victim: ProcessId,
    claimed: ProcessSet,
}

impl Strategy<NodeMsg> for ForgeUnsignedPdStrategy {
    fn name(&self) -> String {
        format!("forge<{}>", self.victim.raw())
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.disc.start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        if let NodeMsg::Discovery(m) = msg {
            let requested = matches!(m, DiscoveryMsg::GetPds { .. });
            self.disc.handle(from, m, ctx);
            if requested {
                let forged = PdCertificate::forge(self.victim, &self.claimed);
                ctx.send(
                    from,
                    NodeMsg::Discovery(DiscoveryMsg::SetPds {
                        certs: vec![Arc::new(forged)].into(),
                        state: SyncState::default(),
                    }),
                );
            }
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<NodeMsg>) {
        self.disc.on_timer(kind, ctx);
    }
}

/// Runs discovery honestly and answers every `GETDECIDEDVAL` with a
/// fabricated value — the direct attack on Algorithm 3's learning path
/// (line 7's `⌈(|S|+1)/2⌉` matching-answers threshold is what defeats it:
/// at most `f` members lie, and `⌈(|S|+1)/2⌉ ≥ f+1`).
#[derive(Debug)]
struct LieDecidedValStrategy {
    disc: DiscoveryLoop,
    value: Value,
}

impl Strategy<NodeMsg> for LieDecidedValStrategy {
    fn name(&self) -> String {
        "lieval".into()
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.disc.start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        match msg {
            NodeMsg::GetDecidedVal => {
                ctx.send(from, NodeMsg::DecidedVal(self.value.clone()));
            }
            NodeMsg::Discovery(m) => self.disc.handle(from, m, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<NodeMsg>) {
        self.disc.on_timer(kind, ctx);
    }
}

/// Runs discovery honestly, then — as the view-0 leader of the given
/// committee — sends conflicting proposals to the two halves of the
/// committee and goes silent (the classic safety attack the prepare
/// quorum must absorb).
#[derive(Debug)]
struct EquivocateValueStrategy {
    key: SigningKey,
    disc: DiscoveryLoop,
    committee: ProcessSet,
    value_a: Value,
    value_b: Value,
    equivocation_sent: bool,
}

impl EquivocateValueStrategy {
    fn maybe_equivocate(&mut self, ctx: &mut Context<NodeMsg>) {
        if self.equivocation_sent {
            return;
        }
        let id = ProcessId::new(self.key.id());
        // Only meaningful while it would be the view-0 leader (lowest ID).
        if self.committee.iter().next() != Some(&id) {
            return;
        }
        let members: Vec<ProcessId> = self.committee.iter().copied().collect();
        let half = members.len() / 2;
        let a = CommitteeMsg::pre_prepare(&self.key, 0, self.value_a.clone(), vec![]);
        let b = CommitteeMsg::pre_prepare(&self.key, 0, self.value_b.clone(), vec![]);
        for (i, &m) in members.iter().enumerate() {
            if m == id {
                continue;
            }
            let msg = if i < half { a.clone() } else { b.clone() };
            ctx.send(m, NodeMsg::Committee(msg));
        }
        self.equivocation_sent = true;
    }
}

impl Strategy<NodeMsg> for EquivocateValueStrategy {
    fn name(&self) -> String {
        "equivval".into()
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.disc.start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        if let NodeMsg::Discovery(m) = msg {
            self.disc.handle(from, m, ctx);
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<NodeMsg>) {
        if self.disc.on_timer(kind, ctx) {
            self.maybe_equivocate(ctx);
        }
    }
}

/// Compiles a [`ByzantineStrategy`] spec into an executable strategy for
/// the faulty process holding `key`.
///
/// `true_pd` is what the participant detector actually returned; some
/// strategies ignore it and substitute their own claim. Combinator specs
/// recurse — the generic wrappers from [`cupft_adversary`] compose with
/// every protocol strategy.
pub fn build_strategy(
    spec: &ByzantineStrategy,
    key: &SigningKey,
    registry: &KeyRegistry,
    true_pd: &ProcessSet,
    period: u64,
) -> Box<dyn Strategy<NodeMsg>> {
    match spec {
        ByzantineStrategy::Silent => Box::new(Mute),
        ByzantineStrategy::FakePd { claimed } => Box::new(FakePdStrategy {
            disc: DiscoveryLoop::new(key, registry.clone(), claimed.clone(), period),
            claimed: claimed.clone(),
        }),
        ByzantineStrategy::EquivocatePd { even, odd } => Box::new(EquivocatePdStrategy {
            key: key.clone(),
            even: even.clone(),
            odd: odd.clone(),
        }),
        ByzantineStrategy::ForgeUnsignedPd { victim, claimed } => {
            Box::new(ForgeUnsignedPdStrategy {
                disc: DiscoveryLoop::new(key, registry.clone(), true_pd.clone(), period),
                victim: *victim,
                claimed: claimed.clone(),
            })
        }
        ByzantineStrategy::LieDecidedVal { value } => Box::new(LieDecidedValStrategy {
            disc: DiscoveryLoop::new(key, registry.clone(), true_pd.clone(), period),
            value: value.clone(),
        }),
        ByzantineStrategy::EquivocateValue {
            committee,
            value_a,
            value_b,
        } => Box::new(EquivocateValueStrategy {
            key: key.clone(),
            disc: DiscoveryLoop::new(key, registry.clone(), true_pd.clone(), period),
            committee: committee.clone(),
            value_a: value_a.clone(),
            value_b: value_b.clone(),
            equivocation_sent: false,
        }),
        ByzantineStrategy::DelayRelease { until, inner } => Box::new(DelayRelease::new(
            *until,
            build_strategy(inner, key, registry, true_pd, period),
        )),
        ByzantineStrategy::TargetSubset { targets, inner } => Box::new(TargetSubset::new(
            targets.clone(),
            build_strategy(inner, key, registry, true_pd, period),
        )),
        ByzantineStrategy::FlipAfter { at, before, after } => Box::new(FlipAfter::new(
            *at,
            build_strategy(before, key, registry, true_pd, period),
            build_strategy(after, key, registry, true_pd, period),
        )),
    }
}

/// A faulty process executing a compiled [`ByzantineStrategy`].
#[derive(Debug)]
pub struct ByzantineActor {
    id: ProcessId,
    spec: ByzantineStrategy,
    strategy: Box<dyn Strategy<NodeMsg>>,
}

impl ByzantineActor {
    /// Creates the faulty process.
    ///
    /// `true_pd` is what the participant detector actually returned; some
    /// strategies ignore it and substitute their own claim.
    pub fn new(
        key: SigningKey,
        registry: KeyRegistry,
        true_pd: ProcessSet,
        strategy: ByzantineStrategy,
        period: u64,
    ) -> Self {
        let id = ProcessId::new(key.id());
        let compiled = build_strategy(&strategy, &key, &registry, &true_pd, period);
        ByzantineActor {
            id,
            spec: strategy,
            strategy: compiled,
        }
    }

    /// The strategy spec in play.
    pub fn strategy(&self) -> &ByzantineStrategy {
        &self.spec
    }
}

impl Actor<NodeMsg> for ByzantineActor {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        self.strategy.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        self.strategy.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Context<NodeMsg>) {
        self.strategy.on_timer(timer, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn make(strategy: ByzantineStrategy) -> (ByzantineActor, KeyRegistry) {
        let mut registry = KeyRegistry::new();
        let key = registry.register(4);
        let actor =
            ByzantineActor::new(key, registry.clone(), process_set([1, 2, 3]), strategy, 20);
        (actor, registry)
    }

    /// A minimal incoming request (empty have-set: "send me everything").
    fn get_pds() -> NodeMsg {
        NodeMsg::Discovery(DiscoveryMsg::GetPds {
            have: Arc::new(ProcessSet::new()),
            state: SyncState::default(),
        })
    }

    #[test]
    fn silent_never_sends() {
        let (mut actor, _) = make(ByzantineStrategy::Silent);
        let mut ctx = Context::new(0, actor.id());
        actor.on_start(&mut ctx);
        actor.on_message(ProcessId::new(1), get_pds(), &mut ctx);
        actor.on_message(ProcessId::new(1), NodeMsg::GetDecidedVal, &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        assert!(ctx.queued_timers().is_empty());
    }

    #[test]
    fn fake_pd_serves_fabricated_claim() {
        let claimed = process_set([1, 2, 3]);
        let (mut actor, registry) = make(ByzantineStrategy::FakePd {
            claimed: claimed.clone(),
        });
        let mut ctx = Context::new(0, actor.id());
        actor.on_message(ProcessId::new(1), get_pds(), &mut ctx);
        let sends = ctx.queued_sends();
        assert_eq!(sends.len(), 1);
        match &sends[0].1 {
            NodeMsg::Discovery(DiscoveryMsg::SetPds { certs, .. }) => {
                let own = certs.iter().find(|c| c.author() == actor.id()).unwrap();
                assert_eq!(own.pd(), claimed);
                // the lie is self-signed, hence verifiable
                assert!(own.verify(&registry));
            }
            other => panic!("expected SetPds, got {other:?}"),
        }
    }

    #[test]
    fn equivocate_pd_splits_by_requester() {
        let (mut actor, registry) = make(ByzantineStrategy::EquivocatePd {
            even: process_set([1]),
            odd: process_set([2]),
        });
        let pd_served = |actor: &mut ByzantineActor, from: u64| {
            let mut ctx = Context::new(0, actor.id());
            actor.on_message(ProcessId::new(from), get_pds(), &mut ctx);
            match &ctx.queued_sends()[0].1 {
                NodeMsg::Discovery(DiscoveryMsg::SetPds { certs, .. }) => {
                    assert!(certs[0].verify(&registry));
                    certs[0].pd()
                }
                _ => panic!("expected SetPds"),
            }
        };
        assert_eq!(pd_served(&mut actor, 2), process_set([1]));
        assert_eq!(pd_served(&mut actor, 3), process_set([2]));
    }

    #[test]
    fn forged_pd_fails_verification() {
        let (mut actor, registry) = make(ByzantineStrategy::ForgeUnsignedPd {
            victim: ProcessId::new(1),
            claimed: process_set([4]),
        });
        let mut ctx = Context::new(0, actor.id());
        actor.on_message(ProcessId::new(2), get_pds(), &mut ctx);
        let forged: Vec<&PdCertificate> = ctx
            .queued_sends()
            .iter()
            .filter_map(|(_, m)| match m {
                NodeMsg::Discovery(DiscoveryMsg::SetPds { certs, .. }) => certs
                    .iter()
                    .map(|c| c.as_ref())
                    .find(|c| c.author() == ProcessId::new(1)),
                _ => None,
            })
            .collect();
        assert_eq!(forged.len(), 1, "the forged record is pushed");
        assert!(!forged[0].verify(&registry), "and fails verification");
    }

    #[test]
    fn equivocate_value_sends_conflicting_proposals() {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1); // lowest ID => view-0 leader
        let mut actor = ByzantineActor::new(
            key,
            registry,
            process_set([2, 3, 4]),
            ByzantineStrategy::EquivocateValue {
                committee: process_set([1, 2, 3, 4]),
                value_a: Value::from_static(b"A"),
                value_b: Value::from_static(b"B"),
            },
            20,
        );
        let mut ctx = Context::new(100, actor.id());
        actor.on_timer(DISCOVERY_TICK, &mut ctx);
        let proposals: Vec<&NodeMsg> = ctx
            .queued_sends()
            .iter()
            .filter(|(_, m)| matches!(m, NodeMsg::Committee(_)))
            .map(|(_, m)| m)
            .collect();
        assert_eq!(proposals.len(), 3);
        // second tick must not re-send
        let mut ctx2 = Context::new(120, actor.id());
        actor.on_timer(DISCOVERY_TICK, &mut ctx2);
        assert!(ctx2
            .queued_sends()
            .iter()
            .all(|(_, m)| !matches!(m, NodeMsg::Committee(_))));
    }

    #[test]
    fn combinator_specs_compile_and_compose() {
        // delay-release around fake-PD: nothing escapes before the release
        let (mut actor, _) = make(ByzantineStrategy::DelayRelease {
            until: 500,
            inner: Box::new(ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            }),
        });
        let mut ctx = Context::new(0, actor.id());
        actor.on_start(&mut ctx);
        assert!(ctx.queued_sends().is_empty(), "sends are held back");
        // ... but the discovery tick and the release timer are both armed
        assert_eq!(ctx.queued_timers().len(), 2);

        // target-subset around equivocate-PD: replies to 9 are swallowed
        let (mut actor, _) = make(ByzantineStrategy::TargetSubset {
            targets: process_set([1]),
            inner: Box::new(ByzantineStrategy::EquivocatePd {
                even: process_set([1]),
                odd: process_set([2]),
            }),
        });
        let mut ctx = Context::new(0, actor.id());
        actor.on_message(ProcessId::new(9), get_pds(), &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        let mut ctx = Context::new(0, actor.id());
        actor.on_message(ProcessId::new(1), get_pds(), &mut ctx);
        assert_eq!(ctx.queued_sends().len(), 1);
    }

    #[test]
    fn spec_is_retained_for_inspection() {
        let (actor, _) = make(ByzantineStrategy::Silent);
        assert!(actor.strategy().is_silent());
    }

    /// Compiled `Strategy::name()`s must match their spec's `label()` for
    /// every variant, or suite labels and shrink reports silently drift
    /// apart (the two are maintained in different crates).
    #[test]
    fn compiled_names_match_spec_labels() {
        let specs = vec![
            ByzantineStrategy::Silent,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
            ByzantineStrategy::EquivocatePd {
                even: process_set([1]),
                odd: process_set([2]),
            },
            ByzantineStrategy::ForgeUnsignedPd {
                victim: ProcessId::new(1),
                claimed: process_set([4]),
            },
            ByzantineStrategy::LieDecidedVal {
                value: Value::from_static(b"evil"),
            },
            ByzantineStrategy::EquivocateValue {
                committee: process_set([1, 2, 3]),
                value_a: Value::from_static(b"A"),
                value_b: Value::from_static(b"B"),
            },
            ByzantineStrategy::DelayRelease {
                until: 100,
                inner: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2]),
                }),
            },
            ByzantineStrategy::TargetSubset {
                targets: process_set([1, 2]),
                inner: Box::new(ByzantineStrategy::Silent),
            },
            ByzantineStrategy::FlipAfter {
                at: 400,
                before: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1]),
                }),
                after: Box::new(ByzantineStrategy::Silent),
            },
        ];
        let mut registry = KeyRegistry::new();
        let key = registry.register(4);
        for spec in specs {
            let compiled = build_strategy(&spec, &key, &registry, &process_set([1, 2, 3]), 20);
            assert_eq!(compiled.name(), spec.label(), "{spec:?}");
        }
    }
}
