//! Byzantine process strategies.
//!
//! The adversary is *static* (Section II-A): the strategy of each faulty
//! process is fixed before the run. Signatures bound what a Byzantine
//! process can do in the discovery plane — it may fabricate *its own* PD
//! freely (even equivocate between several self-signed PDs), but cannot
//! alter or invent records for correct processes. In the committee plane a
//! Byzantine leader may equivocate proposals, and any Byzantine member may
//! stay silent.

use cupft_committee::{CommitteeMsg, Value};
use cupft_crypto::{KeyRegistry, SigningKey};
use cupft_detector::PdCertificate;
use cupft_discovery::{DiscoveryMsg, DiscoveryState, DISCOVERY_TICK};
use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::{Actor, Context};

use crate::msgs::NodeMsg;

/// What a faulty process does.
#[derive(Debug, Clone)]
pub enum ByzantineStrategy {
    /// Sends nothing, ever. (The adversary's strongest play against
    /// knowledge connectivity: Figs. 1a, 2a, 2b.)
    Silent,
    /// Participates in discovery but advertises a fabricated own PD —
    /// the Section III worked example (process 4 claiming `PD = {1,2,3}`).
    /// Stays silent in the committee plane.
    FakePd {
        /// The claimed PD.
        claimed: ProcessSet,
    },
    /// Advertises different self-signed PDs to different requesters
    /// (split-brain attempt in the discovery plane).
    EquivocatePd {
        /// PD served to requesters with even raw ID.
        even: ProcessSet,
        /// PD served to requesters with odd raw ID.
        odd: ProcessSet,
    },
    /// Runs discovery honestly and answers every `GETDECIDEDVAL` with a
    /// fabricated value — the direct attack on Algorithm 3's learning path
    /// (line 7's `⌈(|S|+1)/2⌉` matching-answers threshold is what defeats
    /// it: at most `f` members lie, and `⌈(|S|+1)/2⌉ ≥ f+1`).
    LieDecidedVal {
        /// The fabricated decision served to learners.
        value: Value,
    },
    /// Runs discovery honestly, then — as the view-0 leader of the given
    /// committee — sends conflicting proposals to the two halves of the
    /// committee and goes silent (the classic safety attack the prepare
    /// quorum must absorb).
    EquivocateValue {
        /// The committee it expects to lead (test scaffolding: the
        /// adversary knows the graph, per Section II-A).
        committee: ProcessSet,
        /// Proposal sent to the lower-ID half.
        value_a: Value,
        /// Proposal sent to the upper-ID half.
        value_b: Value,
    },
}

/// A faulty process executing a [`ByzantineStrategy`].
#[derive(Debug)]
pub struct ByzantineActor {
    id: ProcessId,
    key: SigningKey,
    strategy: ByzantineStrategy,
    /// Discovery state for strategies that participate in discovery.
    discovery: Option<DiscoveryState>,
    period: u64,
    equivocation_sent: bool,
}

impl ByzantineActor {
    /// Creates the faulty process.
    ///
    /// `true_pd` is what the participant detector actually returned; some
    /// strategies ignore it and substitute their own claim.
    pub fn new(
        key: SigningKey,
        registry: KeyRegistry,
        true_pd: ProcessSet,
        strategy: ByzantineStrategy,
        period: u64,
    ) -> Self {
        let id = ProcessId::new(key.id());
        let discovery = match &strategy {
            ByzantineStrategy::Silent | ByzantineStrategy::EquivocatePd { .. } => None,
            ByzantineStrategy::FakePd { claimed } => {
                Some(DiscoveryState::new(&key, registry.clone(), claimed.clone()))
            }
            ByzantineStrategy::EquivocateValue { .. } | ByzantineStrategy::LieDecidedVal { .. } => {
                Some(DiscoveryState::new(&key, registry.clone(), true_pd.clone()))
            }
        };
        ByzantineActor {
            id,
            key,
            strategy,
            discovery,
            period,
            equivocation_sent: false,
        }
    }

    /// The strategy in play.
    pub fn strategy(&self) -> &ByzantineStrategy {
        &self.strategy
    }

    fn maybe_equivocate(&mut self, ctx: &mut Context<NodeMsg>) {
        if self.equivocation_sent {
            return;
        }
        let ByzantineStrategy::EquivocateValue {
            committee,
            value_a,
            value_b,
        } = &self.strategy
        else {
            return;
        };
        // Only meaningful while it would be the view-0 leader (lowest ID).
        if committee.iter().next() != Some(&self.id) {
            return;
        }
        let members: Vec<ProcessId> = committee.iter().copied().collect();
        let half = members.len() / 2;
        let a = CommitteeMsg::pre_prepare(&self.key, 0, value_a.clone(), vec![]);
        let b = CommitteeMsg::pre_prepare(&self.key, 0, value_b.clone(), vec![]);
        for (i, &m) in members.iter().enumerate() {
            if m == self.id {
                continue;
            }
            let msg = if i < half { a.clone() } else { b.clone() };
            ctx.send(m, NodeMsg::Committee(msg));
        }
        self.equivocation_sent = true;
    }
}

impl Actor<NodeMsg> for ByzantineActor {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<NodeMsg>) {
        match &self.strategy {
            ByzantineStrategy::Silent | ByzantineStrategy::EquivocatePd { .. } => {}
            ByzantineStrategy::FakePd { .. }
            | ByzantineStrategy::EquivocateValue { .. }
            | ByzantineStrategy::LieDecidedVal { .. } => {
                if let Some(d) = &self.discovery {
                    for (to, msg) in d.tick() {
                        ctx.send(to, NodeMsg::Discovery(msg));
                    }
                }
                ctx.set_timer(DISCOVERY_TICK, self.period);
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: NodeMsg, ctx: &mut Context<NodeMsg>) {
        match (&self.strategy, msg) {
            (ByzantineStrategy::Silent, _) => {}
            (
                ByzantineStrategy::EquivocatePd { even, odd },
                NodeMsg::Discovery(DiscoveryMsg::GetPds),
            ) => {
                let pd = if from.raw().is_multiple_of(2) {
                    even
                } else {
                    odd
                };
                let cert = PdCertificate::sign(&self.key, pd);
                ctx.send(from, NodeMsg::Discovery(DiscoveryMsg::SetPds(vec![cert])));
            }
            (ByzantineStrategy::EquivocatePd { .. }, _) => {}
            (ByzantineStrategy::LieDecidedVal { value }, NodeMsg::GetDecidedVal) => {
                ctx.send(from, NodeMsg::DecidedVal(value.clone()));
            }
            (_, NodeMsg::Discovery(m)) => {
                if let Some(d) = &mut self.discovery {
                    for (to, out) in d.handle(from, m) {
                        ctx.send(to, NodeMsg::Discovery(out));
                    }
                }
            }
            // FakePd / EquivocateValue stay silent on committee traffic and
            // never answer GETDECIDEDVAL.
            (_, _) => {}
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Context<NodeMsg>) {
        if timer != DISCOVERY_TICK {
            return;
        }
        if let Some(d) = &self.discovery {
            for (to, msg) in d.tick() {
                ctx.send(to, NodeMsg::Discovery(msg));
            }
        }
        self.maybe_equivocate(ctx);
        ctx.set_timer(DISCOVERY_TICK, self.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn make(strategy: ByzantineStrategy) -> (ByzantineActor, KeyRegistry) {
        let mut registry = KeyRegistry::new();
        let key = registry.register(4);
        let actor =
            ByzantineActor::new(key, registry.clone(), process_set([1, 2, 3]), strategy, 20);
        (actor, registry)
    }

    #[test]
    fn silent_never_sends() {
        let (mut actor, _) = make(ByzantineStrategy::Silent);
        let mut ctx = Context::new(0, actor.id());
        actor.on_start(&mut ctx);
        actor.on_message(
            ProcessId::new(1),
            NodeMsg::Discovery(DiscoveryMsg::GetPds),
            &mut ctx,
        );
        actor.on_message(ProcessId::new(1), NodeMsg::GetDecidedVal, &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        assert!(ctx.queued_timers().is_empty());
    }

    #[test]
    fn fake_pd_serves_fabricated_claim() {
        let claimed = process_set([1, 2, 3]);
        let (mut actor, registry) = make(ByzantineStrategy::FakePd {
            claimed: claimed.clone(),
        });
        let mut ctx = Context::new(0, actor.id());
        actor.on_message(
            ProcessId::new(1),
            NodeMsg::Discovery(DiscoveryMsg::GetPds),
            &mut ctx,
        );
        let sends = ctx.queued_sends();
        assert_eq!(sends.len(), 1);
        match &sends[0].1 {
            NodeMsg::Discovery(DiscoveryMsg::SetPds(certs)) => {
                let own = certs.iter().find(|c| c.author() == actor.id()).unwrap();
                assert_eq!(own.pd(), claimed);
                // the lie is self-signed, hence verifiable
                assert!(own.verify(&registry));
            }
            other => panic!("expected SetPds, got {other:?}"),
        }
    }

    #[test]
    fn equivocate_pd_splits_by_requester() {
        let (mut actor, registry) = make(ByzantineStrategy::EquivocatePd {
            even: process_set([1]),
            odd: process_set([2]),
        });
        let pd_served = |actor: &mut ByzantineActor, from: u64| {
            let mut ctx = Context::new(0, actor.id());
            actor.on_message(
                ProcessId::new(from),
                NodeMsg::Discovery(DiscoveryMsg::GetPds),
                &mut ctx,
            );
            match &ctx.queued_sends()[0].1 {
                NodeMsg::Discovery(DiscoveryMsg::SetPds(certs)) => {
                    assert!(certs[0].verify(&registry));
                    certs[0].pd()
                }
                _ => panic!("expected SetPds"),
            }
        };
        assert_eq!(pd_served(&mut actor, 2), process_set([1]));
        assert_eq!(pd_served(&mut actor, 3), process_set([2]));
    }

    #[test]
    fn equivocate_value_sends_conflicting_proposals() {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1); // lowest ID => view-0 leader
        let mut actor = ByzantineActor::new(
            key,
            registry,
            process_set([2, 3, 4]),
            ByzantineStrategy::EquivocateValue {
                committee: process_set([1, 2, 3, 4]),
                value_a: Value::from_static(b"A"),
                value_b: Value::from_static(b"B"),
            },
            20,
        );
        let mut ctx = Context::new(100, actor.id());
        actor.on_timer(DISCOVERY_TICK, &mut ctx);
        let proposals: Vec<&NodeMsg> = ctx
            .queued_sends()
            .iter()
            .filter(|(_, m)| matches!(m, NodeMsg::Committee(_)))
            .map(|(_, m)| m)
            .collect();
        assert_eq!(proposals.len(), 3);
        // second tick must not re-send
        let mut ctx2 = Context::new(120, actor.id());
        actor.on_timer(DISCOVERY_TICK, &mut ctx2);
        assert!(ctx2
            .queued_sends()
            .iter()
            .all(|(_, m)| !matches!(m, NodeMsg::Committee(_))));
    }
}
