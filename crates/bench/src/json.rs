//! Minimal JSON emission for the experiment binaries.
//!
//! The container has no network (and the workspace no serde), so this is
//! a tiny hand-rolled value tree + serializer: exactly what the `--json
//! <path>` flag of the table/figure binaries needs to leave a
//! machine-readable artifact beside their text output, so successive PRs
//! can track a bench trajectory (see `scripts/bench.sh`).

use std::fmt;
use std::io::Write as _;
use std::path::Path;

use crate::Row;
use cupft_core::{SuiteReport, SuiteVerdict};
use cupft_obs::{Histogram, ObsReport, PhaseMark};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (all our counters).
    U64(u64),
    /// A float (wall-clock seconds).
    F64(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.map(|(k, v)| (k.to_string(), v)).to_vec())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The binary sibling of the JSON text form: `tag:u8` (0 = Bool, 1 =
/// U64, 2 = F64 as raw IEEE-754 bits, 3 = Str, 4 = Arr, 5 = Obj)
/// followed by the value, on the workspace wire conventions. Artifacts
/// that used to exist only as display text can now ride the same framed
/// byte streams as protocol messages (and round-trip losslessly — the
/// text form collapses non-finite floats to `null`, the binary form
/// preserves their exact bits).
impl cupft_wire::Encode for Json {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Json::Bool(b) => {
                out.push(0);
                b.encode(out);
            }
            Json::U64(n) => {
                out.push(1);
                n.encode(out);
            }
            Json::F64(x) => {
                out.push(2);
                x.to_bits().encode(out);
            }
            Json::Str(s) => {
                out.push(3);
                s.encode(out);
            }
            Json::Arr(items) => {
                out.push(4);
                items.encode(out);
            }
            Json::Obj(pairs) => {
                out.push(5);
                pairs.encode(out);
            }
        }
    }
}

impl cupft_wire::Decode for Json {
    fn decode(r: &mut cupft_wire::Reader<'_>) -> Result<Self, cupft_wire::WireError> {
        match r.u8()? {
            0 => Ok(Json::Bool(bool::decode(r)?)),
            1 => Ok(Json::U64(r.u64()?)),
            2 => Ok(Json::F64(f64::from_bits(r.u64()?))),
            3 => Ok(Json::Str(String::decode(r)?)),
            4 => Ok(Json::Arr(Vec::decode(r)?)),
            5 => Ok(Json::Obj(Vec::decode(r)?)),
            tag => Err(cupft_wire::WireError::BadTag { ty: "Json", tag }),
        }
    }
}

/// One experiment row as JSON (the machine-readable twin of
/// [`Row::print`]).
pub fn row_json(row: &Row) -> Json {
    let decided: Vec<Json> = row
        .check
        .decided_values
        .iter()
        .map(|v| Json::Str(String::from_utf8_lossy(v).into_owned()))
        .collect();
    let detections: Vec<Json> = row
        .detections
        .iter()
        .map(|s| Json::str(crate::fmt_set(s)))
        .collect();
    Json::obj([
        ("label", Json::str(row.label.clone())),
        ("solved", Json::Bool(row.solved)),
        ("agreement", Json::Bool(row.check.agreement)),
        ("termination", Json::Bool(row.check.termination)),
        ("validity", Json::Bool(row.check.validity)),
        ("end_time", Json::U64(row.end_time)),
        ("messages", Json::U64(row.messages)),
        ("payload_units", Json::U64(row.payload_units)),
        ("decided", Json::Arr(decided)),
        ("detections", Json::Arr(detections)),
    ])
}

/// One suite verdict as a JSON row; observed runs carry their
/// [`ObsReport`] under an `"obs"` key.
pub fn verdict_json(verdict: &SuiteVerdict) -> Json {
    let mut row = row_json(&Row::from_outcome(&verdict.label, &verdict.outcome));
    if let (Json::Obj(pairs), Some(obs)) = (&mut row, &verdict.outcome.obs) {
        pairs.push(("obs".to_string(), obs_json(obs)));
    }
    row
}

/// One histogram as a summary object (count/sum/extremes/quantiles). The
/// raw bucket array is omitted: quantiles are already bucket-derived, and
/// the summary keeps artifacts diffable by eye.
fn hist_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::U64(h.count())),
        ("sum", Json::U64(h.sum())),
        ("min", Json::U64(h.min().unwrap_or(0))),
        ("max", Json::U64(h.max().unwrap_or(0))),
        ("p50", Json::U64(h.p50())),
        ("p99", Json::U64(h.p99())),
        ("p999", Json::U64(h.p999())),
    ])
}

/// A whole [`ObsReport`] as JSON. Deterministic given a deterministic
/// report: every map is a `BTreeMap` (sorted keys) and numbers are
/// integers, so a byte-equal report serializes to byte-equal JSON — the
/// property the `--quick`-gated determinism test asserts.
pub fn obs_json(report: &ObsReport) -> Json {
    let scalar_map = |m: &std::collections::BTreeMap<String, u64>| {
        Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect())
    };
    let timelines = Json::Obj(
        report
            .timelines
            .iter()
            .map(|(node, t)| {
                let marks = PhaseMark::all()
                    .iter()
                    .filter_map(|&m| t.get(m).map(|at| (m.name().to_string(), Json::U64(at))))
                    .collect();
                (node.to_string(), Json::Obj(marks))
            })
            .collect(),
    );
    let events = Json::Arr(
        report
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("at", Json::U64(e.at)),
                    ("node", Json::U64(e.node)),
                    ("what", Json::str(e.what.clone())),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("clock_domain", Json::str(report.clock_domain.name())),
        ("counters", scalar_map(&report.counters)),
        ("gauges", scalar_map(&report.gauges)),
        (
            "histograms",
            Json::Obj(
                report
                    .histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), hist_json(h)))
                    .collect(),
            ),
        ),
        ("timelines", timelines),
        (
            "complete_timelines",
            Json::U64(report.complete_timelines() as u64),
        ),
        ("events", events),
        ("events_dropped", Json::U64(report.events_dropped)),
    ])
}

/// A whole suite report: per-cell rows plus aggregates.
pub fn suite_json(report: &SuiteReport) -> Json {
    Json::obj([
        ("runtime", Json::str(report.kind.label())),
        ("workers", Json::U64(report.workers as u64)),
        ("solved", Json::U64(report.solved_count() as u64)),
        ("cells", Json::U64(report.verdicts.len() as u64)),
        ("total_messages", Json::U64(report.total_messages())),
        (
            "total_payload_units",
            Json::U64(report.total_payload_units()),
        ),
        ("wall_seconds", Json::F64(report.wall.as_secs_f64())),
        (
            "rows",
            Json::Arr(report.verdicts.iter().map(verdict_json).collect()),
        ),
    ])
}

/// Parses a `--json <path>` argument pair from the binary's argv. Returns
/// `None` when the flag is absent.
///
/// # Panics
///
/// Panics (with a usage message) if `--json` is present without a path —
/// better than silently not writing the artifact a script expects.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--json requires a path argument"));
            return Some(path.into());
        }
    }
    None
}

/// Writes `value` to `path` (single line, trailing newline) and prints a
/// confirmation to stdout.
pub fn write_json(path: &Path, value: &Json) {
    let mut file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    writeln!(file, "{value}").unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("json artifact written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_values() {
        let v = Json::obj([
            ("name", Json::str("tab\"le")),
            ("n", Json::U64(3)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::U64(1), Json::F64(0.5)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"tab\"le","n":3,"ok":true,"xs":[1,0.5]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Json::str("a\nb\u{1}").to_string(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn binary_sibling_roundtrips_nested_values() {
        let v = Json::obj([
            ("name", Json::str("tab\"le")),
            ("n", Json::U64(3)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::U64(1), Json::F64(0.5)])),
        ]);
        let bytes = cupft_wire::encode_to_vec(&v);
        let back: Json = cupft_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(cupft_wire::encode_to_vec(&back), bytes);
    }

    #[test]
    fn binary_sibling_preserves_infinities_exactly() {
        // The text form degrades non-finite floats to null; the binary
        // form carries the exact bits.
        let bytes = cupft_wire::encode_to_vec(&Json::F64(f64::INFINITY));
        let back: Json = cupft_wire::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, Json::F64(f64::INFINITY));
    }

    #[test]
    fn binary_sibling_rejects_unknown_tag() {
        assert!(matches!(
            cupft_wire::decode_from_slice::<Json>(&[9]),
            Err(cupft_wire::WireError::BadTag { ty: "Json", .. })
        ));
    }
}
