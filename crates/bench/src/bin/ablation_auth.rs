//! Ablation A1 — the Section III simplification claim: with digital
//! signatures, a PD record is trusted on receipt; without them (original
//! BFT-CUP), every record must arrive over more than `f` node-disjoint
//! paths (reachable reliable broadcast).
//!
//! Both stacks run the same goal on the same generated `G_di` systems:
//! every correct sink member must obtain every other correct sink member's
//! PD. Reported: simulated time-to-goal and message counts.

use cupft_bench::header;
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState};
use cupft_graph::{GdiParams, Generator, ProcessSet};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, SimConfig};
use cupft_rrb::{RrbActor, RrbMsg};

fn policy() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 100,
        delta: 10,
        pre_gst_max: 60,
    }
}

struct Measurement {
    time_to_goal: Option<u64>,
    messages: u64,
    getpds: u64,
    setpds: u64,
    floods: u64,
}

fn run_authenticated(sys: &cupft_graph::GeneratedSystem, seed: u64) -> Measurement {
    let setup = SystemSetup::new(&sys.graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: 100_000,
        policy: policy(),
    });
    let correct = sys.correct();
    for v in &correct {
        let state = DiscoveryState::from_setup(&setup, *v).unwrap();
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    let sink: Vec<_> = sys.sink.iter().copied().collect();
    let goal = |s: &Simulation<DiscoveryMsg>| {
        sink.iter().all(|&member| {
            s.actor_as::<DiscoveryActor>(member)
                .is_some_and(|a| sink.iter().all(|&other| a.state().view().has_pd_of(other)))
        })
    };
    let reached = sim.run_until(goal);
    Measurement {
        time_to_goal: reached.then_some(sim.now()),
        messages: sim.stats().messages_sent,
        getpds: sim.stats().label_count("GETPDS"),
        setpds: sim.stats().label_count("SETPDS"),
        floods: 0,
    }
}

fn run_rrb(sys: &cupft_graph::GeneratedSystem, seed: u64) -> Measurement {
    let mut sim: Simulation<RrbMsg> = Simulation::new(SimConfig {
        seed,
        max_time: 100_000,
        policy: policy(),
    });
    let correct = sys.correct();
    for v in &correct {
        let pd: ProcessSet = sys.graph.out_neighbors(*v);
        let content: Vec<u64> = pd.iter().map(|q| q.raw()).collect();
        sim.add_actor(Box::new(RrbActor::new(
            *v,
            sys.fault_threshold,
            pd,
            content,
        )));
    }
    let sink: Vec<_> = sys.sink.iter().copied().collect();
    let goal = |s: &Simulation<RrbMsg>| {
        sink.iter().all(|&member| {
            s.actor_as::<RrbActor>(member).is_some_and(|a| {
                sink.iter()
                    .filter(|&&o| o != member)
                    .all(|&other| a.state().delivered().any(|p| p.origin == other))
            })
        })
    };
    let reached = sim.run_until(goal);
    Measurement {
        time_to_goal: reached.then_some(sim.now()),
        messages: sim.stats().messages_sent,
        getpds: 0,
        setpds: 0,
        floods: sim.stats().label_count("RRB-FLOOD"),
    }
}

fn main() {
    println!("Ablation A1 — authenticated discovery vs. reachable reliable broadcast");
    println!("goal: every correct sink member holds every correct sink member's PD");

    for f in [1usize, 2] {
        header(&format!("fault threshold f = {f}"));
        println!(
            "  {:<26} {:>6} {:>10} {:>10} {:>22}",
            "system", "n", "auth time", "rrb time", "auth msgs / rrb msgs"
        );
        for (sink_extra, periphery) in [(0usize, 2usize), (2, 6), (4, 12)] {
            let mut params = GdiParams::new(f);
            params.sink_size = 2 * f + 1 + sink_extra;
            params.non_sink_size = periphery;
            let mut generator = Generator::from_seed(42 + sink_extra as u64);
            let sys = generator.generate(&params).expect("generation succeeds");
            let n = sys.graph.vertex_count();

            let auth = run_authenticated(&sys, 7);
            let rrb = run_rrb(&sys, 7);
            println!(
                "  sink={:<3} periphery={:<3}    {:>6} {:>10} {:>10} {:>10} / {:<10}",
                params.sink_size,
                params.non_sink_size,
                n,
                auth.time_to_goal
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "stuck".into()),
                rrb.time_to_goal
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "stuck".into()),
                auth.messages,
                rrb.messages,
            );
            println!(
                "      auth: GETPDS={} SETPDS={}   rrb: FLOOD={}",
                auth.getpds, auth.setpds, rrb.floods
            );
            assert!(
                auth.time_to_goal.is_some(),
                "authenticated discovery must converge"
            );
        }
    }

    println!();
    println!("Expected shape (paper, Section III): both converge; the signed protocol is the");
    println!("simpler and cheaper one — RRB floods multiply per disjoint route while signed");
    println!("records are forwarded as data. The gap widens with f and graph size.");
}
