//! Figure 1 — knowledge connectivity requirements of BFT-CUP.
//!
//! * Fig. 1a violates the requirements: with process 4 silent, `{1,2,3}`
//!   and `{5,6,7,8}` cannot learn of each other and consensus is
//!   impossible (no decision; with the naive guesser, even disagreement).
//! * Fig. 1b satisfies them: consensus is solved with one Byzantine
//!   process under every strategy in the playbook.

use cupft_bench::{
    fmt_set, header, json_path_from_args, print_suite, row_json, verdict_json, write_json, Json,
    Row,
};
use cupft_core::{ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioSuite};
use cupft_graph::{fig1a, fig1b, osr_report, process_set};

fn main() {
    println!("Figure 1 — BFT-CUP knowledge connectivity requirements (f = 1)");

    header("Fig. 1a — requirements violated");
    let fig = fig1a();
    let report = osr_report(&fig.safe_subgraph(), 2);
    println!(
        "  G_safe 2-OSR? {} (sink components: {})",
        report.is_k_osr(),
        report.sink_count
    );
    assert!(!report.is_k_osr());

    // The honest BFT-CUP stack: with process 4 silent the two components
    // never learn of each other, each identifies a "sink" of its own, and
    // they decide independently — the exact failure mode the paper's
    // introduction describes for this graph ("the correct participants in
    // each disconnected component may decide on a value independently").
    let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_horizon(50_000);
    let row = Row::run("BFT-CUP, process 4 silent", &scenario);
    row.print();
    assert!(!row.solved, "fig1a must fail to solve consensus");
    assert!(
        !row.check.agreement,
        "each component decides independently: Agreement violated"
    );

    header("Fig. 1b — requirements satisfied");
    let fig = fig1b();
    let report = osr_report(&fig.safe_subgraph(), 2);
    println!(
        "  G_safe 2-OSR? {} (sink = {})",
        report.is_k_osr(),
        fmt_set(report.sink_members().expect("unique sink"))
    );
    assert!(report.is_k_osr());

    let strategies: [(&str, ByzantineStrategy); 3] = [
        ("silent", ByzantineStrategy::Silent),
        (
            "fake PD {1,2,3} (worked example)",
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        ),
        (
            "equivocating PDs",
            ByzantineStrategy::EquivocatePd {
                even: process_set([1, 2]),
                odd: process_set([2, 3]),
            },
        ),
    ];
    let mut suite = ScenarioSuite::new();
    for (name, strategy) in strategies {
        suite.push(
            format!("BFT-CUP, process 4 {name}"),
            Scenario::new(fig.graph().clone(), ProtocolMode::KnownThreshold(1))
                .with_byzantine(4, strategy),
        );
    }
    let report = suite.run(RuntimeKind::Sim);
    print_suite(&report);
    assert!(
        report.all_solved(),
        "fig1b must solve consensus under every strategy: {:?}",
        report.failures()
    );

    println!();
    println!("Figure 1 reproduced: 1a impossible (✗), 1b solved under 3 Byzantine strategies (✓).");

    if let Some(path) = json_path_from_args() {
        let mut rows = vec![row_json(&row)];
        rows.extend(report.verdicts.iter().map(verdict_json));
        let doc = Json::obj([("bin", Json::str("fig1")), ("rows", Json::Arr(rows))]);
        write_json(&path, &doc);
    }
}
