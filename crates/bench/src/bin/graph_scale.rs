//! S5 — graph-family scale series: generation time and condition-check
//! time for every [`GraphFamily`] at large `n`, plus consensus outcome
//! rates per family on small instances.
//!
//! The paper evaluates its conditions only on hand-drawn witness graphs;
//! this series characterizes them over parameterized topology families at
//! scale, the evaluation style of Khanchandani–Wattenhofer and Hesterberg
//! et al. Two sections:
//!
//! 1. **Scale** — each family generated at 1k and 10k vertices (Erdős–
//!    Rényi additionally at 50k), then condition-checked with the
//!    SCC-based fast path ([`scale_osr_check`]) under the default
//!    [`CheckBudget`]; planted-committee families also time
//!    [`sink_with_threshold`]. The exponential `candidates` machinery is
//!    never touched.
//! 2. **Consensus** — a family × size × seed [`ScenarioGrid`] sweep on
//!    the simulator, reporting the fraction of cells that solved
//!    consensus per family (scale-free is expected below 100%: its
//!    advertisement deliberately omits the disjoint-path condition).
//!
//! `--json <path>` leaves the machine-readable artifact `scripts/bench.sh`
//! merges into `BENCH_graph.json`.

use std::time::Instant;

use cupft_bench::{header, json_path_from_args, write_json, Json};
use cupft_core::{ProtocolMode, RuntimeKind, ScenarioGrid};
use cupft_graph::{scale_osr_check, sink_with_threshold, CheckBudget, GraphFamily};

const SCALE_SIZES: [usize; 2] = [1_000, 10_000];
const CONSENSUS_SIZES: [usize; 3] = [10, 16, 22];
const CONSENSUS_SEEDS: u64 = 3;
const FAULT_THRESHOLD: usize = 1;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1_000.0
}

fn scale_row(family: &GraphFamily, size: usize) -> (String, Json) {
    let scaled = family.scaled(size);
    let started = Instant::now();
    let sample = scaled
        .generate(size as u64)
        .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
    let gen_ms = ms(started);
    let graph = &sample.system.graph;
    let k = FAULT_THRESHOLD + 1;

    let started = Instant::now();
    let report = scale_osr_check(graph, k, &CheckBudget::default());
    let check_ms = ms(started);

    // The committee-sized-sink fast path is only meaningful when the sink
    // does not span the whole graph (ring-of-cliques is its own sink).
    let sink_ms = (report.sink_size() < graph.vertex_count()).then(|| {
        let started = Instant::now();
        let sink = sink_with_threshold(graph, FAULT_THRESHOLD);
        let elapsed = ms(started);
        assert_eq!(
            sink.is_some(),
            sample.advertised.unique_sink && sample.advertised.sink_size > 2 * FAULT_THRESHOLD,
            "{}: fast path disagrees with advertisement",
            scaled.label()
        );
        elapsed
    });

    let line = format!(
        "  {:<18} n={:<6} edges={:<7} gen={:>8.2}ms check={:>8.2}ms sink_wt={} sink={:<5} holds={} exhaustive={} pairs(k/x)={}/{}",
        family.name(),
        graph.vertex_count(),
        graph.edge_count(),
        gen_ms,
        check_ms,
        sink_ms.map_or("   n/a  ".into(), |m| format!("{m:>7.2}ms")),
        report.sink_size(),
        report.holds_on_checked(),
        report.exhaustive,
        report.kappa_pairs_checked,
        report.cross_pairs_checked,
    );

    let mut obj = vec![
        ("family".to_string(), Json::str(family.name())),
        ("label".to_string(), Json::str(scaled.label())),
        ("n".to_string(), Json::U64(graph.vertex_count() as u64)),
        ("edges".to_string(), Json::U64(graph.edge_count() as u64)),
        ("generation_ms".to_string(), Json::F64(gen_ms)),
        ("check_ms".to_string(), Json::F64(check_ms)),
        (
            "sink_size".to_string(),
            Json::U64(report.sink_size() as u64),
        ),
        (
            "holds_on_checked".to_string(),
            Json::Bool(report.holds_on_checked()),
        ),
        ("exhaustive".to_string(), Json::Bool(report.exhaustive)),
        (
            "direct_fanin_proof".to_string(),
            Json::Bool(report.direct_fanin_proof),
        ),
        (
            "kappa_pairs".to_string(),
            Json::U64(report.kappa_pairs_checked as u64),
        ),
        (
            "cross_pairs".to_string(),
            Json::U64(report.cross_pairs_checked as u64),
        ),
    ];
    if let Some(sink_ms) = sink_ms {
        obj.push(("sink_with_threshold_ms".to_string(), Json::F64(sink_ms)));
    }
    (line, Json::Obj(obj))
}

fn main() {
    println!("Graph-family scale series — generation + condition checks + consensus rates (f = {FAULT_THRESHOLD})");

    header("Scale: generation and fast condition checks");
    let mut scale_rows = Vec::new();
    for family in GraphFamily::catalogue(FAULT_THRESHOLD) {
        let mut sizes: Vec<usize> = SCALE_SIZES.to_vec();
        if matches!(family, GraphFamily::ErdosRenyi { .. }) {
            sizes.push(50_000);
        }
        for size in sizes {
            let (line, row) = scale_row(&family, size);
            println!("{line}");
            scale_rows.push(row);
        }
    }

    header("Consensus outcome rates per family (simulator)");
    let mut families_json = Vec::new();
    for family in GraphFamily::catalogue(FAULT_THRESHOLD) {
        let grid = ScenarioGrid::new()
            .family(
                &family,
                CONSENSUS_SIZES,
                7,
                ProtocolMode::KnownThreshold(FAULT_THRESHOLD),
            )
            .seeds(0..CONSENSUS_SEEDS);
        let report = grid.build().run(RuntimeKind::Sim);
        let solved = report.solved_count();
        let cells = report.verdicts.len();
        println!(
            "  {:<18} {:>2}/{:<2} solved ({} sizes x {} seeds, {:.2?} wall)",
            family.name(),
            solved,
            cells,
            CONSENSUS_SIZES.len(),
            CONSENSUS_SEEDS,
            report.wall,
        );
        families_json.push((
            family.name().to_string(),
            Json::obj([
                ("cells", Json::U64(cells as u64)),
                ("solved", Json::U64(solved as u64)),
                ("messages", Json::U64(report.total_messages())),
                ("wall_seconds", Json::F64(report.wall.as_secs_f64())),
            ]),
        ));
    }

    println!();
    println!("Expected shape: generation is linear in edges; the fast checks stay");
    println!("sub-second at 10k+ vertices because kappa is evaluated on the planted");
    println!("sink only (or a budgeted pair sample) and condition 4 is proved");
    println!("structurally whenever the family plants direct sink fan-in.");

    if let Some(path) = json_path_from_args() {
        let doc = Json::obj([
            ("fault_threshold", Json::U64(FAULT_THRESHOLD as u64)),
            ("scale", Json::Arr(scale_rows)),
            ("consensus", Json::Obj(families_json)),
        ]);
        write_json(&path, &doc);
    }
}
