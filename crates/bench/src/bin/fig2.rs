//! Figure 2 / Theorem 7 — impossibility of BFT-CUP graphs without a known
//! fault threshold.
//!
//! Reproduces the three indistinguishable executions of the proof:
//!
//! * **System A** (Fig. 2a): `{1,2,3}` propose `v`, process 4 silent —
//!   they must decide `v`.
//! * **System B** (Fig. 2b): `{6,7,8}` propose `u`, process 5 silent —
//!   they must decide `u`.
//! * **System AB** (Fig. 2c): all eight processes are correct, but every
//!   cross-group message is delayed beyond both decision times. `{1,2,3}`
//!   cannot distinguish AB from A, `{6,7,8}` cannot distinguish AB from B:
//!   Agreement is violated.
//!
//! The processes run the *naive sink guesser* — the only strategy
//! available when the graph is merely in `G_di` and `f` is unknown
//! (Observation 1).

use cupft_bench::{header, Row};
use cupft_core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{fig2a, fig2b, fig2c, process_set};
use cupft_net::DelayPolicy;

const NAIVE: ProtocolMode = ProtocolMode::NaiveGuess { settle_ticks: 3 };

fn main() {
    println!("Figure 2 / Theorem 7 — f-unknown impossibility on G_di graphs");

    header("System A (Fig. 2a): processes {1,2,3} propose v, 4 silent");
    let a = Scenario::new(fig2a().graph().clone(), NAIVE)
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_value(1, b"v")
        .with_value(2, b"v")
        .with_value(3, b"v");
    let row_a = Row::run("naive guesser on A", &a);
    row_a.print();
    assert!(row_a.solved);
    assert_eq!(
        row_a.check.decided_values.iter().next().map(Vec::as_slice),
        Some(&b"v"[..])
    );
    let outcome_a = run_scenario(&a);
    let decision_time_a = outcome_a.last_decision_time().expect("A decided");

    header("System B (Fig. 2b): processes {6,7,8} propose u, 5 silent");
    let b = Scenario::new(fig2b().graph().clone(), NAIVE)
        .with_byzantine(5, ByzantineStrategy::Silent)
        .with_value(6, b"u")
        .with_value(7, b"u")
        .with_value(8, b"u");
    let row_b = Row::run("naive guesser on B", &b);
    row_b.print();
    assert!(row_b.solved);
    let outcome_b = run_scenario(&b);
    let decision_time_b = outcome_b.last_decision_time().expect("B decided");

    header("System AB (Fig. 2c): all correct, cross-group delay > max(Δ_A, Δ_B)");
    let cross_delay = (decision_time_a.max(decision_time_b) + 1) * 10;
    println!("  Δ_A = {decision_time_a}, Δ_B = {decision_time_b}, cross delay = {cross_delay}");
    let ab = Scenario::new(fig2c().graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4]), process_set([5, 6, 7, 8])],
            cross_delay,
        })
        .with_value(1, b"v")
        .with_value(2, b"v")
        .with_value(3, b"v")
        .with_value(4, b"v")
        .with_value(5, b"u")
        .with_value(6, b"u")
        .with_value(7, b"u")
        .with_value(8, b"u")
        .with_horizon(cross_delay * 4);
    let row_ab = Row::run("naive guesser on AB", &ab);
    row_ab.print();
    assert!(
        !row_ab.check.agreement,
        "AB must violate Agreement (the impossibility)"
    );
    assert_eq!(row_ab.check.decided_values.len(), 2);

    println!();
    println!(
        "Theorem 7 reproduced: A decides v, B decides u, AB decides BOTH — Agreement violated."
    );
    println!("(The BFT-CUPFT graphs of Figure 4 are how the paper repairs this; see `fig4`.)");
}
