//! Figure 4 — BFT-CUPFT on extended k-OSR graphs: the Core algorithm
//! identifies a unique core and consensus is solved with no process
//! knowing the fault threshold.

use cupft_bench::{
    fmt_set, header, json_path_from_args, print_suite, verdict_json, write_json, Json, Row,
};
use cupft_core::{ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioSuite};
use cupft_graph::{fig4a, fig4b, is_extended_k_osr, process_set};

fn main() {
    println!("Figure 4 — BFT-CUPFT consensus on extended k-OSR graphs");

    header("Fig. 4a — core strictly inside the sink component");
    let fig = fig4a();
    let report = is_extended_k_osr(fig.graph(), 2, 12).expect("small graph");
    let core = report.core.as_ref().expect("core exists");
    println!(
        "  extended 2-OSR? {}   core = {} (k_Gdi = {})   sink component size = {}",
        report.holds(),
        fmt_set(&core.members),
        core.connectivity,
        report
            .base
            .sink_members()
            .map(|s| s.len())
            .unwrap_or_default(),
    );
    assert!(report.holds());

    let mut seed_suite = ScenarioSuite::new();
    for seed in [0u64, 1, 2] {
        seed_suite.push(
            format!("fig4a, all correct, seed {seed}"),
            Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold).with_seed(seed),
        );
    }
    let seed_report = seed_suite.run(RuntimeKind::Sim);
    for verdict in &seed_report.verdicts {
        let row = Row::from_outcome(&verdict.label, &verdict.outcome);
        row.print();
        assert!(verdict.solved());
        assert_eq!(row.detections, vec![process_set([1, 2, 3, 4, 5])]);
    }

    header("Fig. 4b — core equals the sink component; Byzantine sweep");
    let fig = fig4b();
    let report = is_extended_k_osr(fig.graph(), 2, 12).expect("small graph");
    let core = report.core.as_ref().expect("core exists");
    println!(
        "  extended 2-OSR? {}   core = {} (k_Gdi = {})",
        report.holds(),
        fmt_set(&core.members),
        core.connectivity,
    );
    assert!(report.holds());

    let strategies: [(&str, u64, ByzantineStrategy); 4] = [
        ("non-core 4 silent", 4, ByzantineStrategy::Silent),
        (
            "non-core 4 fake PD",
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        ),
        (
            "non-core 4 equivocating PDs",
            4,
            ByzantineStrategy::EquivocatePd {
                even: process_set([5, 8]),
                odd: process_set([1, 2, 3]),
            },
        ),
        (
            "core leader 5 equivocates values",
            5,
            ByzantineStrategy::EquivocateValue {
                committee: process_set([5, 6, 7, 8, 9]),
                value_a: cupft_committee::Value::from_static(b"evil-A"),
                value_b: cupft_committee::Value::from_static(b"evil-B"),
            },
        ),
    ];
    let mut strategy_suite = ScenarioSuite::new();
    for (name, byz, strategy) in strategies {
        strategy_suite.push(
            format!("fig4b, {name}"),
            Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
                .with_byzantine(byz, strategy),
        );
    }
    let strategy_report = strategy_suite.run(RuntimeKind::Sim);
    print_suite(&strategy_report);
    assert!(
        strategy_report.all_solved(),
        "fig4b must solve consensus under every strategy: {:?}",
        strategy_report.failures()
    );

    println!();
    println!("Figure 4 reproduced: unique core identified and consensus solved with unknown f,");
    println!("including under a value-equivocating Byzantine core leader.");

    if let Some(path) = json_path_from_args() {
        let rows: Vec<Json> = seed_report
            .verdicts
            .iter()
            .chain(&strategy_report.verdicts)
            .map(verdict_json)
            .collect();
        let doc = Json::obj([("bin", Json::str("fig4")), ("rows", Json::Arr(rows))]);
        write_json(&path, &doc);
    }
}
