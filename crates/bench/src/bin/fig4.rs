//! Figure 4 — BFT-CUPFT on extended k-OSR graphs: the Core algorithm
//! identifies a unique core and consensus is solved with no process
//! knowing the fault threshold.

use cupft_bench::{fmt_set, header, Row};
use cupft_core::{ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{fig4a, fig4b, is_extended_k_osr, process_set};

fn main() {
    println!("Figure 4 — BFT-CUPFT consensus on extended k-OSR graphs");

    header("Fig. 4a — core strictly inside the sink component");
    let fig = fig4a();
    let report = is_extended_k_osr(fig.graph(), 2, 12).expect("small graph");
    let core = report.core.as_ref().expect("core exists");
    println!(
        "  extended 2-OSR? {}   core = {} (k_Gdi = {})   sink component size = {}",
        report.holds(),
        fmt_set(&core.members),
        core.connectivity,
        report
            .base
            .sink_members()
            .map(|s| s.len())
            .unwrap_or_default(),
    );
    assert!(report.holds());

    for seed in [0u64, 1, 2] {
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
            .with_seed(seed);
        let row = Row::run(format!("fig4a, all correct, seed {seed}"), &scenario);
        row.print();
        assert!(row.solved);
        assert_eq!(row.detections, vec![process_set([1, 2, 3, 4, 5])]);
    }

    header("Fig. 4b — core equals the sink component; Byzantine sweep");
    let fig = fig4b();
    let report = is_extended_k_osr(fig.graph(), 2, 12).expect("small graph");
    let core = report.core.as_ref().expect("core exists");
    println!(
        "  extended 2-OSR? {}   core = {} (k_Gdi = {})",
        report.holds(),
        fmt_set(&core.members),
        core.connectivity,
    );
    assert!(report.holds());

    let strategies: [(&str, u64, ByzantineStrategy); 4] = [
        ("non-core 4 silent", 4, ByzantineStrategy::Silent),
        (
            "non-core 4 fake PD",
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        ),
        (
            "non-core 4 equivocating PDs",
            4,
            ByzantineStrategy::EquivocatePd {
                even: process_set([5, 8]),
                odd: process_set([1, 2, 3]),
            },
        ),
        (
            "core leader 5 equivocates values",
            5,
            ByzantineStrategy::EquivocateValue {
                committee: process_set([5, 6, 7, 8, 9]),
                value_a: cupft_committee::Value::from_static(b"evil-A"),
                value_b: cupft_committee::Value::from_static(b"evil-B"),
            },
        ),
    ];
    for (name, byz, strategy) in strategies {
        let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(byz, strategy);
        let row = Row::run(format!("fig4b, {name}"), &scenario);
        row.print();
        assert!(row.solved, "fig4b must solve consensus ({name})");
    }

    println!();
    println!("Figure 4 reproduced: unique core identified and consensus solved with unknown f,");
    println!("including under a value-equivocating Byzantine core leader.");
}
