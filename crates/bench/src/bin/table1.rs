//! Table I — the (im)possibility of solving Byzantine consensus
//! deterministically under different system models.
//!
//! Nine cells: {synchronous, partially synchronous, asynchronous} ×
//! {known n & f, unknown n & known f, unknown n & f}. Possibility cells
//! must solve consensus on a witness system with one Byzantine process;
//! impossibility cells must show no decision within the horizon under the
//! adversarial (never-stabilizing) schedule.
//!
//! The nine cells are expressed as one [`ScenarioGrid`] per column (each
//! column's witness graph carries its own Byzantine process ID) merged
//! into a single [`ScenarioSuite`] and executed in parallel on the
//! deterministic simulator.

use cupft_bench::{header, json_path_from_args, suite_json, write_json, Json, Row};
use cupft_core::{FaultCase, ProtocolMode, RuntimeKind, ScenarioGrid, ScenarioSuite, SuiteVerdict};
use cupft_graph::{fig1b, fig4a, process_set, DiGraph};
use cupft_net::DelayPolicy;

fn sync_policy() -> DelayPolicy {
    DelayPolicy::Synchronous { delta: 10 }
}

fn psync_policy() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 300,
        delta: 10,
        pre_gst_max: 200,
    }
}

fn async_policy() -> DelayPolicy {
    // GST never occurs within the horizon: delays up to 10^6 on a 10^5
    // horizon. The checkable shadow of FLP: no deterministic protocol can
    // be shown to decide under this schedule.
    DelayPolicy::Asynchronous {
        delta: 10,
        unbounded_max: 1_000_000,
    }
}

/// "Known n and f": every process's PD is the full membership.
fn known_membership_graph() -> DiGraph {
    DiGraph::complete(&process_set(1..=4))
}

/// One grid column: a witness graph, its identification mode, and its
/// silent Byzantine process, swept over the three timing models.
fn column(label: &str, graph: DiGraph, mode: ProtocolMode, byzantine: u64) -> ScenarioSuite {
    ScenarioGrid::new()
        .graph(label, graph, mode)
        .fault(FaultCase::silent(byzantine))
        .policy("sync", sync_policy(), 100_000)
        .policy("psync", psync_policy(), 200_000)
        .policy("async", async_policy(), 100_000)
        .build()
}

fn print_cells<'a>(cells: impl Iterator<Item = &'a SuiteVerdict>) {
    for verdict in cells {
        Row::from_outcome(&verdict.label, &verdict.outcome).print();
    }
}

fn main() {
    println!("Table I — deterministic Byzantine consensus per system model");
    println!("(paper: ✓ ✓ ✓ / ✓ ✓ ✓(this work) / ✗ ✗ ✗)");

    let mut suite = column(
        "known n, known f",
        known_membership_graph(),
        ProtocolMode::KnownThreshold(1),
        4,
    );
    suite.extend(column(
        "unknown n, known f (BFT-CUP)",
        fig1b().graph().clone(),
        ProtocolMode::KnownThreshold(1),
        4,
    ));
    suite.extend(column(
        "unknown n, unknown f (BFT-CUPFT)",
        fig4a().graph().clone(),
        ProtocolMode::UnknownThreshold,
        9,
    ));
    let report = suite.run(RuntimeKind::Sim);

    let row = |policy: &str| {
        let needle = format!("/{policy}/");
        report
            .verdicts
            .iter()
            .filter(move |v| v.label.contains(&needle))
    };

    header("Synchronous");
    print_cells(row("sync"));
    for verdict in row("sync") {
        assert!(
            verdict.solved(),
            "synchronous cells must solve consensus: {}",
            verdict.label
        );
    }

    header("Partially synchronous");
    print_cells(row("psync"));
    for verdict in row("psync") {
        assert!(
            verdict.solved(),
            "partially synchronous cells must solve consensus: {}",
            verdict.label
        );
    }

    header("Asynchronous (adversarial schedule, horizon 10^5)");
    print_cells(row("async"));
    for verdict in row("async") {
        assert!(
            !verdict.check.termination,
            "async cells must not terminate within the horizon: {}",
            verdict.label
        );
        assert!(
            verdict.check.agreement,
            "async cells may stall but never disagree: {}",
            verdict.label
        );
    }

    println!();
    println!(
        "Table I reproduced: 6/6 possibility cells solved, 3/3 async cells stalled safely ({})",
        report.summary()
    );

    if let Some(path) = json_path_from_args() {
        let doc = Json::obj([("bin", Json::str("table1")), ("suite", suite_json(&report))]);
        write_json(&path, &doc);
    }
}
