//! Table I — the (im)possibility of solving Byzantine consensus
//! deterministically under different system models.
//!
//! Nine cells: {synchronous, partially synchronous, asynchronous} ×
//! {known n & f, unknown n & known f, unknown n & f}. Possibility cells
//! must solve consensus on a witness system with one Byzantine process;
//! impossibility cells must show no decision within the horizon under the
//! adversarial (never-stabilizing) schedule.

use cupft_bench::{header, Row};
use cupft_core::{ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{fig1b, fig4a, process_set, DiGraph};
use cupft_net::DelayPolicy;

fn sync_policy() -> DelayPolicy {
    DelayPolicy::Synchronous { delta: 10 }
}

fn psync_policy() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 300,
        delta: 10,
        pre_gst_max: 200,
    }
}

fn async_policy() -> DelayPolicy {
    // GST never occurs within the horizon: delays up to 10^6 on a 10^5
    // horizon. The checkable shadow of FLP: no deterministic protocol can
    // be shown to decide under this schedule.
    DelayPolicy::Asynchronous {
        delta: 10,
        unbounded_max: 1_000_000,
    }
}

/// "Known n and f": every process's PD is the full membership.
fn known_membership_graph() -> DiGraph {
    DiGraph::complete(&process_set(1..=4))
}

fn cell(
    label: &str,
    graph: DiGraph,
    mode: ProtocolMode,
    byzantine: u64,
    policy: DelayPolicy,
    horizon: u64,
) -> Row {
    let scenario = Scenario::new(graph, mode)
        .with_byzantine(byzantine, ByzantineStrategy::Silent)
        .with_policy(policy)
        .with_horizon(horizon);
    Row::run(label, &scenario)
}

fn main() {
    println!("Table I — deterministic Byzantine consensus per system model");
    println!("(paper: ✓ ✓ ✓ / ✓ ✓ ✓(this work) / ✗ ✗ ✗)");

    header("Synchronous");
    for row in [
        cell(
            "known n, known f        (e.g. [20])",
            known_membership_graph(),
            ProtocolMode::KnownThreshold(1),
            4,
            sync_policy(),
            100_000,
        ),
        cell(
            "unknown n, known f      (BFT-CUP [9,10])",
            fig1b().graph().clone(),
            ProtocolMode::KnownThreshold(1),
            4,
            sync_policy(),
            100_000,
        ),
        cell(
            "unknown n, unknown f    (BFT-CUPFT)",
            fig4a().graph().clone(),
            ProtocolMode::UnknownThreshold,
            9,
            sync_policy(),
            100_000,
        ),
    ] {
        row.print();
        assert!(row.solved, "synchronous cells must solve consensus");
    }

    header("Partially synchronous");
    for row in [
        cell(
            "known n, known f        (e.g. [22,23])",
            known_membership_graph(),
            ProtocolMode::KnownThreshold(1),
            4,
            psync_policy(),
            200_000,
        ),
        cell(
            "unknown n, known f      (BFT-CUP [9,10])",
            fig1b().graph().clone(),
            ProtocolMode::KnownThreshold(1),
            4,
            psync_policy(),
            200_000,
        ),
        cell(
            "unknown n, unknown f    (BFT-CUPFT, this work)",
            fig4a().graph().clone(),
            ProtocolMode::UnknownThreshold,
            9,
            psync_policy(),
            200_000,
        ),
    ] {
        row.print();
        assert!(row.solved, "partially synchronous cells must solve consensus");
    }

    header("Asynchronous (adversarial schedule, horizon 10^5)");
    for row in [
        cell(
            "known n, known f        (FLP [24])",
            known_membership_graph(),
            ProtocolMode::KnownThreshold(1),
            4,
            async_policy(),
            100_000,
        ),
        cell(
            "unknown n, known f      (FLP [24])",
            fig1b().graph().clone(),
            ProtocolMode::KnownThreshold(1),
            4,
            async_policy(),
            100_000,
        ),
        cell(
            "unknown n, unknown f    (FLP [24])",
            fig4a().graph().clone(),
            ProtocolMode::UnknownThreshold,
            9,
            async_policy(),
            100_000,
        ),
    ] {
        row.print();
        assert!(
            !row.check.termination,
            "async cells must not terminate within the horizon"
        );
        assert!(
            row.check.agreement,
            "async cells may stall but never disagree"
        );
    }

    println!();
    println!("Table I reproduced: 6/6 possibility cells solved, 3/3 async cells stalled safely.");
}
