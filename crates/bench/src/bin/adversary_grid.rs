//! The fault-injection engine's own sweep: composite Byzantine strategy
//! specs (combinators included) and a network tamper, crossed over the
//! paper's witness graphs on the strategy axis of [`ScenarioGrid`].
//!
//! Every cell must solve consensus: the swept graphs satisfy their
//! respective knowledge-connectivity requirements, so *no* single-process
//! strategy — however composed — and no within-model tamper may break
//! them. Emits a `--json <path>` artifact for trajectory tracking
//! (`scripts/bench.sh`).

use cupft_bench::{header, json_path_from_args, print_suite, suite_json, write_json, Json};
use cupft_core::{ByzantineStrategy, ScenarioOutcome};
use cupft_core::{
    ProtocolMode, RuntimeKind, Scenario, ScenarioGrid, ScenarioSuite, StrategyCase, TamperSpec,
};
use cupft_graph::{fig1b, fig4b, process_set};

/// The strategy playbook swept at process 4 (outside both witness cores).
fn playbook() -> Vec<StrategyCase> {
    vec![
        StrategyCase::single(4, ByzantineStrategy::Silent),
        StrategyCase::single(
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::ForgeUnsignedPd {
                victim: cupft_graph::ProcessId::new(1),
                claimed: process_set([4]),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::DelayRelease {
                until: 300,
                inner: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                }),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::FlipAfter {
                at: 400,
                before: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                }),
                after: Box::new(ByzantineStrategy::Silent),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::TargetSubset {
                targets: process_set([1, 2]),
                inner: Box::new(ByzantineStrategy::EquivocatePd {
                    even: process_set([1, 2]),
                    odd: process_set([2, 3]),
                }),
            },
        ),
    ]
}

fn grid_for(label: &str, graph: cupft_graph::DiGraph, mode: ProtocolMode) -> ScenarioSuite {
    let mut grid = ScenarioGrid::new().graph(label, graph, mode).seeds(0..3);
    for case in playbook() {
        grid = grid.strategy(case);
    }
    grid.build()
}

fn main() {
    println!("Adversary grid — composite strategy specs on the witness graphs");

    header("strategy axis sweep (2 graphs x 6 strategies x 3 seeds)");
    let mut suite = grid_for(
        "fig1b",
        fig1b().graph().clone(),
        ProtocolMode::KnownThreshold(1),
    );
    suite.extend(grid_for(
        "fig4b",
        fig4b().graph().clone(),
        ProtocolMode::UnknownThreshold,
    ));
    let report = suite.run(RuntimeKind::Sim);
    print_suite(&report);
    assert!(
        report.all_solved(),
        "sufficient graphs must survive every strategy: {:?}",
        report.failures()
    );

    header("network tamper (drop all Byzantine output — within-model)");
    let tampered = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        )
        .with_tamper(TamperSpec::DropFrom {
            senders: process_set([4]),
        });
    let outcome: ScenarioOutcome = cupft_core::run_scenario(&tampered);
    let check = outcome.check();
    println!(
        "  ✓ fig1b, fakepd4 behind drop{{4}}: solved={} dropped={} msgs",
        check.consensus_solved(),
        outcome.stats.messages_dropped
    );
    assert!(check.consensus_solved());
    assert!(outcome.stats.messages_dropped > 0);

    println!();
    println!("Adversary grid: {}", report.summary());

    if let Some(path) = json_path_from_args() {
        let doc = Json::obj([
            ("bin", Json::str("adversary_grid")),
            ("suite", suite_json(&report)),
            (
                "tampered_dropped_messages",
                Json::U64(outcome.stats.messages_dropped),
            ),
        ]);
        write_json(&path, &doc);
    }
}
