//! S4 — end-to-end scaling series: identification and decision latency
//! (simulated ticks) and message volume as the system grows, for both
//! protocol stacks.
//!
//! The paper gives no scalability evaluation (theory paper); this series
//! characterizes the reproduction and the relative cost of withholding
//! the fault threshold.

use cupft_bench::header;
use cupft_core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{GdiParams, Generator};

struct Point {
    n: usize,
    detect: u64,
    decide: u64,
    msgs: u64,
}

fn run_point(extended: bool, sink: usize, periphery: usize, byz: usize) -> Point {
    let mut params = GdiParams::new(1);
    params.extended = extended;
    params.sink_size = sink;
    params.non_sink_size = periphery;
    params.byzantine_count = byz;
    let sys = Generator::from_seed(7 + periphery as u64)
        .generate(&params)
        .expect("generation succeeds");
    let mode = if extended {
        ProtocolMode::UnknownThreshold
    } else {
        ProtocolMode::KnownThreshold(1)
    };
    let mut scenario = Scenario::new(sys.graph.clone(), mode).with_horizon(400_000);
    for b in &sys.byzantine {
        scenario = scenario.with_byzantine(b.raw(), ByzantineStrategy::Silent);
    }
    let outcome = run_scenario(&scenario);
    assert!(
        outcome.check().consensus_solved(),
        "scaling point must solve consensus (n={})",
        sys.graph.vertex_count()
    );
    let detect = outcome
        .detection_times
        .values()
        .flatten()
        .copied()
        .max()
        .unwrap_or_default();
    Point {
        n: sys.graph.vertex_count(),
        detect,
        decide: outcome.last_decision_time().unwrap_or_default(),
        msgs: outcome.stats.messages_sent,
    }
}

fn print_series(label: &str, extended: bool, byz: usize) {
    header(label);
    println!(
        "  {:>4} {:>12} {:>12} {:>10}",
        "n", "t_identify", "t_decide", "messages"
    );
    for periphery in [2usize, 6, 12, 24, 48] {
        let p = run_point(extended, 3, periphery, byz);
        println!(
            "  {:>4} {:>12} {:>12} {:>10}",
            p.n, p.detect, p.decide, p.msgs
        );
    }
}

fn main() {
    println!("Scaling series — identification + decision latency vs. system size (f = 1)");
    print_series("BFT-CUP (known f), 1 silent Byzantine", false, 1);
    print_series("BFT-CUPFT (unknown f), all correct", true, 0);
    println!();
    println!("Expected shape: t_identify is flat-ish (bounded by GST + O(diameter·δ));");
    println!("messages grow ~quadratically (all-to-known discovery rounds).");
}
