//! S4 — end-to-end scaling series: identification and decision latency
//! (simulated ticks) and message volume as the system grows, for both
//! protocol stacks.
//!
//! The paper gives no scalability evaluation (theory paper); this series
//! characterizes the reproduction and the relative cost of withholding
//! the fault threshold. All points are batched into one [`ScenarioSuite`]
//! and executed in parallel — the series prints in order regardless of
//! which point finished first.

use cupft_bench::header;
use cupft_core::{ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioSuite};
use cupft_graph::{GdiParams, Generator};

const PERIPHERY_STEPS: [usize; 5] = [2, 6, 12, 24, 48];

struct Series {
    label: &'static str,
    extended: bool,
    byz: usize,
}

const SERIES: [Series; 2] = [
    Series {
        label: "BFT-CUP (known f), 1 silent Byzantine",
        extended: false,
        byz: 1,
    },
    Series {
        label: "BFT-CUPFT (unknown f), all correct",
        extended: true,
        byz: 0,
    },
];

fn point_scenario(series: &Series, periphery: usize) -> Scenario {
    let mut params = GdiParams::new(1);
    params.extended = series.extended;
    params.sink_size = 3;
    params.non_sink_size = periphery;
    params.byzantine_count = series.byz;
    let sys = Generator::from_seed(7 + periphery as u64)
        .generate(&params)
        .expect("generation succeeds");
    let mut scenario = Scenario::new(
        sys.graph.clone(),
        if series.extended {
            ProtocolMode::UnknownThreshold
        } else {
            ProtocolMode::KnownThreshold(1)
        },
    )
    .with_horizon(400_000);
    for b in &sys.byzantine {
        scenario = scenario.with_byzantine(b.raw(), ByzantineStrategy::Silent);
    }
    scenario
}

fn main() {
    println!("Scaling series — identification + decision latency vs. system size (f = 1)");

    let mut suite = ScenarioSuite::new();
    for series in &SERIES {
        for periphery in PERIPHERY_STEPS {
            suite.push(
                format!("{}/p{periphery}", series.label),
                point_scenario(series, periphery),
            );
        }
    }
    let report = suite.run(RuntimeKind::Sim);

    let mut points = report.verdicts.iter().zip(suite.entries());
    for series in &SERIES {
        header(series.label);
        println!(
            "  {:>4} {:>12} {:>12} {:>10}",
            "n", "t_identify", "t_decide", "messages"
        );
        for _ in PERIPHERY_STEPS {
            let (verdict, entry) = points.next().expect("one verdict per point");
            assert!(
                verdict.solved(),
                "scaling point must solve consensus ({})",
                verdict.label
            );
            let outcome = &verdict.outcome;
            let detect = outcome
                .detection_times
                .values()
                .flatten()
                .copied()
                .max()
                .unwrap_or_default();
            println!(
                "  {:>4} {:>12} {:>12} {:>10}",
                entry.scenario.graph.vertex_count(),
                detect,
                outcome.last_decision_time().unwrap_or_default(),
                outcome.stats.messages_sent
            );
        }
    }

    println!();
    println!("Expected shape: t_identify is flat-ish (bounded by GST + O(diameter·δ));");
    println!("messages grow ~quadratically (all-to-known discovery rounds).");
    println!("({})", report.summary());
}
