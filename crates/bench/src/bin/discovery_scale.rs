//! S6 — delta-gossip discovery scale series.
//!
//! Two sections, mirroring the two claims of the delta-gossip rework:
//!
//! 1. **Sweep payload** — the four family-sweep topologies at three sizes,
//!    each run twice through discovery-only simulations (full-`S_PD`
//!    baseline vs. delta gossip) to the same horizon. Reports the
//!    delivered `SETPDS` payload (certificates · messages) of both modes
//!    and asserts the final [`KnowledgeView`]s are byte-identical — the
//!    observational-equivalence claim — while the payload collapses (the
//!    ≥10x acceptance bar of the PR).
//! 2. **End-to-end consensus at scale** — full discovery → identification
//!    → committee consensus → learning on planted-committee families at
//!    n = 100 / 500 / 1000 (plus 2000 with `--full`), on **both**
//!    runtimes. With the sharded router plane
//!    ([`cupft_net::ThreadedConfig::router_shards`]) every family —
//!    including Erdős–Rényi's Θ(n²) traffic and scale-free's hub
//!    hotspots, which used to cap the threaded substrate at a few hundred
//!    nodes — runs the n=1000 cell threaded, and every threaded cell's
//!    decisions are asserted identical to the simulator's. Both runtimes
//!    run the certificate-verification pipeline (shared verdict pool +
//!    preflight stage), so each distinct certificate pays for at most one
//!    HMAC system-wide; per-family wall totals land as flat
//!    `e2e_wall_seconds_<family>` regression scalars.
//! 3. **Router shard axis** — one Erdős–Rényi topology run threaded at
//!    `router_shards ∈ {1, 2, 4}` (1 = the classic single-router loop),
//!    for cross-PR wall-clock comparison of the shard split itself.
//! 4. **Churn axis** — the n=100 cells of two families re-run under a
//!    seeded join + crash-rejoin [`ChurnSpec`] (a periphery vertex joins
//!    late, another crashes and rejoins from its snapshot), on both
//!    runtimes with threaded decisions checked against sim. Under
//!    `--obs` the sim cells land `obs_phase_*_churn_<family>`
//!    virtual-time scalars in the regression object — hard-gated like
//!    the stable-membership phase scalars — plus an advisory
//!    `e2e_wall_seconds_churn` wall total.
//!
//! `--json <path>` leaves the machine-readable artifact `scripts/bench.sh`
//! merges into `BENCH_discovery.json`; the flat `regression` keys in it
//! are what `bench.sh --check-regression` compares. `--obs` additionally
//! runs the n=100 sim cells observed and lands their virtual-time phase
//! scalars (`obs_phase_{spd_fixpoint,sink_identified,decided}_<family>`)
//! in the regression object — deterministic per seed, so they gate hard
//! where the wall scalars can only advise — plus the full per-family
//! [`ObsReport`]s as a `<json>.obs.json` sibling (see
//! `docs/OBSERVABILITY.md`).
//!
//! Determinism knobs for CI↔laptop comparability (`scripts/bench.sh`
//! forwards both): `BENCH_SEED=<u64>` offsets every scenario seed
//! (default: the committed artifact's seeds), `--shards <n>` pins the
//! threaded cells' router shard count (default: `min(cores, 4)`, the
//! runtime's auto resolution).

use std::collections::BTreeMap;
use std::time::Instant;

use cupft_bench::{header, json_path_from_args, obs_json, write_json, Json};
use cupft_core::{ChurnEvent, ChurnSpec, ProtocolMode, RuntimeKind, Scenario};
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode};
use cupft_graph::{DiGraph, GraphFamily, KnowledgeView, ProcessId};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, SimConfig};
use cupft_obs::{ObsReport, PhaseMark};

const FAULT_THRESHOLD: usize = 1;
const SWEEP_SIZES: [usize; 3] = [12, 18, 24];
const SWEEP_HORIZON: u64 = 4_000;
const E2E_SIZES: [usize; 3] = [100, 500, 1_000];
const E2E_FULL_SIZES: [usize; 1] = [2_000];
const SHARD_AXIS: [usize; 3] = [1, 2, 4];
const SHARD_AXIS_N: usize = 200;

/// `BENCH_SEED` offset, added to every scenario seed (sweep runs and
/// e2e cells alike). The default of 0 reproduces the committed artifact.
fn seed_offset() -> u64 {
    std::env::var("BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// `--obs` flag: run the n=100 sim cells observed ([`Scenario::with_observe`])
/// and emit their virtual-time phase scalars (`obs_phase_*`) into the
/// regression object, plus the full per-family [`ObsReport`]s as a
/// `<json>.obs.json` sibling artifact. Virtual time is byte-deterministic
/// per seed, so — unlike the advisory `e2e_wall_seconds_*` scalars — these
/// gate hard in `bench.sh --check-regression`.
fn obs_enabled() -> bool {
    std::env::args().any(|a| a == "--obs")
}

/// `--shards <n>` override for the threaded cells' router shard count.
fn shards_override() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The shard count threaded e2e cells run with: the `--shards` override,
/// or the runtime's own auto resolution (`min(cores, 4)`).
fn e2e_shards() -> usize {
    shards_override()
        .unwrap_or_else(|| cupft_net::ThreadedConfig::default().effective_router_shards())
}

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// The family-sweep topologies (same parameterization as
/// `tests/family_sweep.rs`).
fn sweep_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(16, FAULT_THRESHOLD),
        GraphFamily::RingOfCliques {
            cliques: 3,
            clique_size: 4,
            bridges: 3,
            fault_threshold: FAULT_THRESHOLD,
        },
        GraphFamily::k_diamond(16, FAULT_THRESHOLD),
        GraphFamily::BridgedPartition {
            a_size: 8,
            sink_size: 3,
            bridge_width: 3,
            fault_threshold: FAULT_THRESHOLD,
        },
    ]
}

/// Planted-committee families for the end-to-end scale section (the ring
/// is excluded: its sink spans the whole graph, so identification means
/// computing the connectivity of an n-vertex set — a different scaling
/// story than committee discovery).
fn e2e_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(100, FAULT_THRESHOLD),
        GraphFamily::k_diamond(100, FAULT_THRESHOLD),
        GraphFamily::scale_free(100, FAULT_THRESHOLD),
        GraphFamily::bridged_partition(100, FAULT_THRESHOLD),
    ]
}

/// Runs discovery-only actors over `graph` to the horizon and returns
/// (delivered SETPDS payload, messages sent, final views).
fn discovery_run(
    graph: &DiGraph,
    mode: GossipMode,
    seed: u64,
) -> (u64, u64, Vec<(ProcessId, KnowledgeView)>) {
    let setup = SystemSetup::new(graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: SWEEP_HORIZON + 100,
        policy: psync(),
    });
    for v in graph.vertices() {
        let state = DiscoveryState::from_setup(&setup, v)
            .expect("vertex registered")
            .with_gossip(mode);
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    sim.run_until(|s| s.now() > SWEEP_HORIZON);
    let payload = sim.stats().label_payload("SETPDS");
    let messages = sim.stats().messages_sent;
    let views = sim
        .into_actors()
        .into_iter()
        .map(|(id, actor)| {
            let discovery = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            (id, discovery.state().view().clone())
        })
        .collect();
    (payload, messages, views)
}

struct SweepTotals {
    full_payload: u64,
    delta_payload: u64,
    min_ratio: f64,
}

fn sweep_section(rows: &mut Vec<Json>) -> SweepTotals {
    let mut totals = SweepTotals {
        full_payload: 0,
        delta_payload: 0,
        min_ratio: f64::INFINITY,
    };
    for family in sweep_families() {
        for size in SWEEP_SIZES {
            let scaled = family.scaled(size);
            let sample = scaled
                .generate(11)
                .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
            let graph = &sample.system.graph;
            let run_seed = size as u64 + seed_offset();
            let (full_payload, full_msgs, full_views) =
                discovery_run(graph, GossipMode::Full, run_seed);
            let (delta_payload, delta_msgs, delta_views) =
                discovery_run(graph, GossipMode::Delta, run_seed);
            assert_eq!(
                full_views,
                delta_views,
                "{}@n{size}: delta views must be byte-identical to the baseline",
                family.name()
            );
            let ratio = full_payload as f64 / delta_payload.max(1) as f64;
            totals.full_payload += full_payload;
            totals.delta_payload += delta_payload;
            totals.min_ratio = totals.min_ratio.min(ratio);
            println!(
                "  {:<18} n={:<3} SETPDS payload: full={:<8} delta={:<6} ({ratio:>6.1}x)  msgs: full={} delta={}",
                family.name(),
                graph.vertex_count(),
                full_payload,
                delta_payload,
                full_msgs,
                delta_msgs,
            );
            rows.push(Json::obj([
                ("family", Json::str(family.name())),
                ("n", Json::U64(graph.vertex_count() as u64)),
                ("full_payload", Json::U64(full_payload)),
                ("delta_payload", Json::U64(delta_payload)),
                ("full_messages", Json::U64(full_msgs)),
                ("delta_messages", Json::U64(delta_msgs)),
                ("ratio", Json::F64(ratio)),
            ]));
        }
    }
    totals
}

/// The scenario behind one end-to-end cell (shared by sim and threaded
/// runs of the same (family, n), so decisions are comparable).
fn e2e_scenario(family: &GraphFamily, n: usize) -> (Scenario, usize) {
    let scaled = family.scaled(n);
    let sample = scaled
        .generate(n as u64)
        .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
    let actual_n = sample.system.graph.vertex_count();
    let scenario = Scenario::new(
        sample.system.graph,
        ProtocolMode::KnownThreshold(FAULT_THRESHOLD),
    )
    .with_seed(1 + seed_offset())
    .with_policy(psync())
    .with_horizon(2_000_000);
    (scenario, actual_n)
}

/// Per-cell decisions, for sim↔threaded parity assertions.
type Decisions = BTreeMap<ProcessId, Option<Vec<u8>>>;

struct CellResult {
    solved: bool,
    wall: f64,
    row: Json,
    decisions: Decisions,
    /// `Some` when a sim baseline was supplied: whether this cell's
    /// decisions equal it (the same verdict printed and recorded in the
    /// row — computed once).
    matches_sim: Option<bool>,
    /// The cell's observability snapshot when it ran with `observe`.
    obs: Option<ObsReport>,
}

fn run_e2e_cell(
    family: &GraphFamily,
    scenario: &Scenario,
    actual_n: usize,
    kind: RuntimeKind,
    shards: Option<usize>,
    sim_decisions: Option<&Decisions>,
    observe: bool,
) -> CellResult {
    let mut scenario = scenario.clone();
    if observe {
        scenario = scenario.with_observe(true);
    }
    if kind == RuntimeKind::Threaded {
        if let Some(shards) = shards {
            scenario = scenario.with_router_shards(shards);
        }
        if actual_n >= 500 {
            // Tick knobs read as milliseconds on the threaded substrate:
            // slow the polling cadence so hundreds of nodes don't swamp
            // the router plane during the discovery transient, and give
            // the run a wall budget matched to the slower cadence (it
            // still stops the instant every correct node decides).
            scenario.discovery_period = 100;
            scenario.view_timeout_base = 4_000;
            scenario = scenario.with_threaded_wall_timeout(std::time::Duration::from_secs(600));
        }
    }
    let started = Instant::now();
    let outcome = scenario.run_on(kind);
    let wall = started.elapsed().as_secs_f64();
    let check = outcome.check();
    let solved = check.consensus_solved();
    let matches_sim = sim_decisions.map(|sim| sim == &outcome.decisions);
    println!(
        "  {:<18} n={:<5} {:<8} {} wall={:>7.2}s end_time={:<8} msgs={:<9} payload={}{}",
        family.name(),
        actual_n,
        kind.label(),
        if solved { "solved ✓" } else { "FAILED ✗" },
        wall,
        outcome.end_time,
        outcome.stats.messages_sent,
        outcome.stats.payload_units,
        match matches_sim {
            Some(true) => "  decisions==sim",
            Some(false) => "  DECISIONS DIVERGE FROM SIM",
            None => "",
        },
    );
    let mut fields = vec![
        ("family".to_string(), Json::str(family.name())),
        ("n".to_string(), Json::U64(actual_n as u64)),
        ("runtime".to_string(), Json::str(kind.label())),
        ("solved".to_string(), Json::Bool(solved)),
        ("agreement".to_string(), Json::Bool(check.agreement)),
        ("wall_seconds".to_string(), Json::F64(wall)),
        ("end_time".to_string(), Json::U64(outcome.end_time)),
        (
            "messages".to_string(),
            Json::U64(outcome.stats.messages_sent),
        ),
        (
            "payload_units".to_string(),
            Json::U64(outcome.stats.payload_units),
        ),
    ];
    if let Some(shards) = shards {
        fields.push(("router_shards".to_string(), Json::U64(shards as u64)));
    }
    if let Some(matches) = matches_sim {
        fields.push(("decisions_match_sim".to_string(), Json::Bool(matches)));
    }
    if let Some(obs) = &outcome.obs {
        fields.push((
            "obs_complete_timelines".to_string(),
            Json::U64(obs.complete_timelines() as u64),
        ));
    }
    CellResult {
        solved,
        wall,
        row: Json::Obj(fields),
        decisions: outcome.decisions,
        matches_sim,
        obs: outcome.obs,
    }
}

/// One Erdős–Rényi topology threaded across the shard axis: wall clock
/// and verdicts per `router_shards`, each checked against the simulator's
/// decisions.
fn shard_axis_section(rows: &mut Vec<Json>) {
    let family = GraphFamily::erdos_renyi(100, FAULT_THRESHOLD);
    let (mut scenario, actual_n) = e2e_scenario(&family, SHARD_AXIS_N);
    // The x1 cell runs Θ(n²) Erdős–Rényi traffic through one router
    // thread — the exact bottleneck the axis measures — so apply the
    // slow-cadence knobs unconditionally (run_e2e_cell only applies them
    // from n=500 up) and a generous wall budget: the axis compares shard
    // counts under one cadence, and must not time out on slower machines.
    scenario.discovery_period = 100;
    scenario.view_timeout_base = 4_000;
    scenario = scenario.with_threaded_wall_timeout(std::time::Duration::from_secs(600));
    let sim = run_e2e_cell(
        &family,
        &scenario,
        actual_n,
        RuntimeKind::Sim,
        None,
        None,
        false,
    );
    assert!(sim.solved, "shard axis: sim cell must solve consensus");
    for shards in SHARD_AXIS {
        let cell = run_e2e_cell(
            &family,
            &scenario,
            actual_n,
            RuntimeKind::Threaded,
            Some(shards),
            Some(&sim.decisions),
            false,
        );
        assert!(
            cell.solved,
            "shard axis: threaded x{shards} must solve consensus"
        );
        rows.push(cell.row);
    }
}

/// Churn axis: the n=100 cells of two families re-run under a seeded
/// join + crash-rejoin schedule on both runtimes (threaded decisions
/// checked against sim). Returns the axis's wall total; under `observe`
/// the sim cells' phase scalars land in `scalars` as
/// `obs_phase_{phase}_churn_{family}` (virtual clock, so they hard-gate
/// in `bench.sh --check-regression` alongside the stable-membership
/// ones).
fn churn_section(rows: &mut Vec<Json>, scalars: &mut Vec<(String, Json)>, observe: bool) -> f64 {
    let mut wall = 0.0;
    let n = E2E_SIZES[0];
    for family in [
        GraphFamily::k_diamond(100, FAULT_THRESHOLD),
        GraphFamily::erdos_renyi(100, FAULT_THRESHOLD),
    ] {
        let scaled = family.scaled(n);
        let sample = scaled
            .generate(n as u64)
            .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
        let actual_n = sample.system.graph.vertex_count();
        // Churn the two highest periphery (non-sink) IDs — the planted
        // committee must stay intact; fall back to the highest IDs
        // outright if strong connectivity qualified the whole graph.
        let mut candidates: Vec<u64> = sample
            .system
            .graph
            .vertices()
            .filter(|v| !sample.system.sink.contains(v))
            .map(|v| v.raw())
            .collect();
        if candidates.len() < 2 {
            candidates = sample.system.graph.vertices().map(|v| v.raw()).collect();
        }
        candidates.sort_unstable();
        let recoverer = candidates.pop().expect("graph has vertices");
        let joiner = candidates.pop().expect("graph has ≥2 vertices");
        let seed_peer = sample
            .system
            .graph
            .vertices()
            .map(|v| v.raw())
            .min()
            .expect("graph has vertices");
        let spec = ChurnSpec::new(vec![
            ChurnEvent::JoinAt {
                tick: 400,
                node: ProcessId::new(joiner),
                seed_peers: cupft_graph::process_set([seed_peer]),
            },
            ChurnEvent::CrashRecoverAt {
                tick: 200,
                node: ProcessId::new(recoverer),
                down_for: 400,
            },
        ]);
        let churn_label = spec.label();
        let scenario = Scenario::new(
            sample.system.graph,
            ProtocolMode::KnownThreshold(FAULT_THRESHOLD),
        )
        .with_seed(1 + seed_offset())
        .with_policy(psync())
        .with_horizon(2_000_000)
        .with_churn(spec);
        let family_key = family.name().replace('-', "_");

        let sim = run_e2e_cell(
            &family,
            &scenario,
            actual_n,
            RuntimeKind::Sim,
            None,
            None,
            observe,
        );
        assert!(sim.solved, "churn axis: {family_key} sim cell must solve");
        if let Some(report) = &sim.obs {
            // The schedule demonstrably executed: one join, one crash,
            // one recovery, visible in the deterministic obs counters.
            assert_eq!(report.counter("churn_joins"), 1);
            assert_eq!(report.counter("churn_crashes"), 1);
            assert_eq!(report.counter("churn_recoveries"), 1);
            for (key, mark) in [
                ("spd_fixpoint", PhaseMark::SpdFixpoint),
                ("sink_identified", PhaseMark::SinkIdentified),
                ("decided", PhaseMark::Decided),
            ] {
                let at = report
                    .phase_max(mark)
                    .unwrap_or_else(|| panic!("churn axis: {family_key} reached no {key} phase"));
                scalars.push((format!("obs_phase_{key}_churn_{family_key}"), Json::U64(at)));
            }
        }
        wall += sim.wall;
        let threaded = run_e2e_cell(
            &family,
            &scenario,
            actual_n,
            RuntimeKind::Threaded,
            None,
            Some(&sim.decisions),
            false,
        );
        assert!(
            threaded.solved,
            "churn axis: {family_key} threaded cell must solve"
        );
        assert!(
            threaded.matches_sim.unwrap_or(false),
            "churn axis: {family_key} threaded decisions must equal sim"
        );
        wall += threaded.wall;
        for cell in [sim, threaded] {
            let Json::Obj(mut fields) = cell.row else {
                unreachable!("run_e2e_cell rows are objects")
            };
            fields.push(("churn".to_string(), Json::str(&churn_label)));
            rows.push(Json::Obj(fields));
        }
    }
    wall
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let obs = obs_enabled();
    println!(
        "Delta-gossip discovery scale series (f = {FAULT_THRESHOLD}{}{})",
        if full { ", --full" } else { "" },
        if obs { ", --obs" } else { "" },
    );

    header("Sweep: delivered SETPDS payload, full-S_PD baseline vs delta gossip");
    let mut sweep_rows = Vec::new();
    let totals = sweep_section(&mut sweep_rows);
    let total_ratio = totals.full_payload as f64 / totals.delta_payload.max(1) as f64;
    println!(
        "  -- totals: full={} delta={} ({:.1}x overall, worst cell {:.1}x)",
        totals.full_payload, totals.delta_payload, total_ratio, totals.min_ratio
    );
    assert!(
        total_ratio >= 10.0,
        "delta gossip must deliver ≥10x fewer SETPDS payload units on the sweep"
    );

    header("End-to-end consensus at scale (discovery → identification → consensus → learning)");
    let threaded_shards = e2e_shards();
    println!("  (threaded cells run router_shards = {threaded_shards})");
    let mut e2e_rows = Vec::new();
    let mut all_solved = true;
    let mut all_match_sim = true;
    let mut e2e_wall_total = 0.0;
    // Per-family wall totals (sim + threaded cells), emitted as flat
    // `e2e_wall_seconds_<family>` regression scalars so
    // `bench.sh --check-regression` can advise on each family's
    // trajectory instead of only the blended total.
    let mut e2e_wall_by_family: BTreeMap<String, f64> = BTreeMap::new();
    // `--obs`: per-family (phase scalars, full report) from the observed
    // n=100 sim cells. Virtual-time marks, so deterministic per seed.
    let mut obs_scalars: Vec<(String, Json)> = Vec::new();
    let mut obs_families: Vec<(String, Json)> = Vec::new();
    let mut sizes: Vec<usize> = E2E_SIZES.to_vec();
    if full {
        sizes.extend(E2E_FULL_SIZES);
    }
    for family in e2e_families() {
        for &n in &sizes {
            let (scenario, actual_n) = e2e_scenario(&family, n);
            let family_key = family.name().replace('-', "_");
            let observe = obs && n == E2E_SIZES[0];
            let sim = run_e2e_cell(
                &family,
                &scenario,
                actual_n,
                RuntimeKind::Sim,
                None,
                None,
                observe,
            );
            if let Some(report) = &sim.obs {
                let deciders = sim.decisions.values().filter(|d| d.is_some()).count();
                assert_eq!(
                    report.complete_timelines(),
                    deciders,
                    "{family_key}@n{actual_n}: every deciding node must carry all five phase marks"
                );
                assert_eq!(
                    report.clock_domain.name(),
                    "virtual",
                    "{family_key}@n{actual_n}: sim obs must be on the virtual clock"
                );
                println!(
                    "      obs: {deciders} complete timelines, decided by t={}, S_PD fixpoint by t={}",
                    report.phase_max(PhaseMark::Decided).unwrap_or(0),
                    report.phase_max(PhaseMark::SpdFixpoint).unwrap_or(0),
                );
                for (key, mark) in [
                    ("spd_fixpoint", PhaseMark::SpdFixpoint),
                    ("sink_identified", PhaseMark::SinkIdentified),
                    ("decided", PhaseMark::Decided),
                ] {
                    let at = report.phase_max(mark).unwrap_or_else(|| {
                        panic!("{family_key}@n{actual_n}: no node reached phase {key}")
                    });
                    obs_scalars.push((format!("obs_phase_{key}_{family_key}"), Json::U64(at)));
                }
                obs_families.push((family_key.clone(), obs_json(report)));
            }
            all_solved &= sim.solved;
            e2e_wall_total += sim.wall;
            *e2e_wall_by_family.entry(family_key.clone()).or_default() += sim.wall;
            e2e_rows.push(sim.row);
            // 2000 OS threads is a stress test, not a benchmark cell.
            // Everything up to n=1000 runs threaded too: the sharded
            // router plane drains Erdős–Rényi's Θ(n²) periphery traffic
            // and scale-free's hub hotspots, which used to cap the
            // threaded substrate at a few hundred nodes.
            if n > 1_000 {
                continue;
            }
            let threaded = run_e2e_cell(
                &family,
                &scenario,
                actual_n,
                RuntimeKind::Threaded,
                Some(threaded_shards),
                Some(&sim.decisions),
                false,
            );
            all_solved &= threaded.solved;
            all_match_sim &= threaded.matches_sim.unwrap_or(false);
            e2e_wall_total += threaded.wall;
            *e2e_wall_by_family.entry(family_key).or_default() += threaded.wall;
            e2e_rows.push(threaded.row);
        }
    }
    assert!(all_solved, "every end-to-end cell must solve consensus");
    assert!(
        all_match_sim,
        "every threaded cell must reach the simulator's decisions"
    );

    header("Router shard axis (erdos-renyi, threaded, router_shards in {1, 2, 4})");
    let mut shard_rows = Vec::new();
    shard_axis_section(&mut shard_rows);

    header("Churn axis (join + crash-rejoin at n=100, both runtimes)");
    let mut churn_rows = Vec::new();
    let churn_wall = churn_section(&mut churn_rows, &mut obs_scalars, obs);

    println!();
    println!("Expected shape: sweep payload drops ≥10x because delta replies carry only");
    println!("unseen certificates and synced pairs stop polling; end-to-end n=1000 runs on");
    println!("both substrates because identification is dirty-gated per tick and delivery");
    println!("scheduling fans out across router shards instead of one router thread.");

    if let Some(path) = json_path_from_args() {
        let doc = Json::obj([
            ("fault_threshold", Json::U64(FAULT_THRESHOLD as u64)),
            ("router_shards", Json::U64(threaded_shards as u64)),
            ("sweep", Json::Arr(sweep_rows)),
            ("e2e", Json::Arr(e2e_rows)),
            ("shard_axis", Json::Arr(shard_rows)),
            ("churn", Json::Arr(churn_rows)),
            ("regression", {
                let mut fields = vec![
                    (
                        "sweep_full_payload".to_string(),
                        Json::U64(totals.full_payload),
                    ),
                    (
                        "sweep_delta_payload".to_string(),
                        Json::U64(totals.delta_payload),
                    ),
                    ("sweep_payload_ratio".to_string(), Json::F64(total_ratio)),
                    (
                        "e2e_wall_note".to_string(),
                        Json::str(
                            "e2e_wall_seconds_* are advisory-only (cross-machine wall clock); \
                             the obs_phase_* virtual-time scalars are the canonical \
                             deterministic latency trajectory",
                        ),
                    ),
                    (
                        "e2e_wall_seconds_total".to_string(),
                        Json::F64(e2e_wall_total),
                    ),
                    ("e2e_wall_seconds_churn".to_string(), Json::F64(churn_wall)),
                ];
                for (family, wall) in &e2e_wall_by_family {
                    fields.push((format!("e2e_wall_seconds_{family}"), Json::F64(*wall)));
                }
                for (key, value) in &obs_scalars {
                    fields.push((key.clone(), value.clone()));
                }
                Json::Obj(fields)
            }),
        ]);
        write_json(&path, &doc);
        if !obs_families.is_empty() {
            // Full per-family ObsReports ride beside the main artifact —
            // bench.sh publishes the sibling as OBS_discovery.json.
            let obs_path = path.with_extension("obs.json");
            write_json(&obs_path, &Json::Obj(obs_families));
        }
    }
}
