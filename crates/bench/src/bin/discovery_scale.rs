//! S6 — delta-gossip discovery scale series.
//!
//! Two sections, mirroring the two claims of the delta-gossip rework:
//!
//! 1. **Sweep payload** — the four family-sweep topologies at three sizes,
//!    each run twice through discovery-only simulations (full-`S_PD`
//!    baseline vs. delta gossip) to the same horizon. Reports the
//!    delivered `SETPDS` payload (certificates · messages) of both modes
//!    and asserts the final [`KnowledgeView`]s are byte-identical — the
//!    observational-equivalence claim — while the payload collapses (the
//!    ≥10x acceptance bar of the PR).
//! 2. **End-to-end consensus at scale** — full discovery → identification
//!    → committee consensus → learning on planted-committee families at
//!    n = 100 / 500 / 1000 (plus 2000 with `--full`), on **both**
//!    runtimes. The sizes that used to be graph-condition-check-only
//!    territory (`graph_scale`) now run the actual protocol in seconds.
//!
//! `--json <path>` leaves the machine-readable artifact `scripts/bench.sh`
//! merges into `BENCH_discovery.json`; the flat `regression` keys in it
//! are what `bench.sh --check-regression` compares.

use std::time::Instant;

use cupft_bench::{header, json_path_from_args, write_json, Json};
use cupft_core::{ProtocolMode, RuntimeKind, Scenario};
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode};
use cupft_graph::{DiGraph, GraphFamily, KnowledgeView, ProcessId};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, SimConfig};

const FAULT_THRESHOLD: usize = 1;
const SWEEP_SIZES: [usize; 3] = [12, 18, 24];
const SWEEP_HORIZON: u64 = 4_000;
const E2E_SIZES: [usize; 3] = [100, 500, 1_000];
const E2E_FULL_SIZES: [usize; 1] = [2_000];

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// The family-sweep topologies (same parameterization as
/// `tests/family_sweep.rs`).
fn sweep_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(16, FAULT_THRESHOLD),
        GraphFamily::RingOfCliques {
            cliques: 3,
            clique_size: 4,
            bridges: 3,
            fault_threshold: FAULT_THRESHOLD,
        },
        GraphFamily::k_diamond(16, FAULT_THRESHOLD),
        GraphFamily::BridgedPartition {
            a_size: 8,
            sink_size: 3,
            bridge_width: 3,
            fault_threshold: FAULT_THRESHOLD,
        },
    ]
}

/// Planted-committee families for the end-to-end scale section (the ring
/// is excluded: its sink spans the whole graph, so identification means
/// computing the connectivity of an n-vertex set — a different scaling
/// story than committee discovery).
fn e2e_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(100, FAULT_THRESHOLD),
        GraphFamily::k_diamond(100, FAULT_THRESHOLD),
        GraphFamily::scale_free(100, FAULT_THRESHOLD),
        GraphFamily::bridged_partition(100, FAULT_THRESHOLD),
    ]
}

/// Runs discovery-only actors over `graph` to the horizon and returns
/// (delivered SETPDS payload, messages sent, final views).
fn discovery_run(
    graph: &DiGraph,
    mode: GossipMode,
    seed: u64,
) -> (u64, u64, Vec<(ProcessId, KnowledgeView)>) {
    let setup = SystemSetup::new(graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: SWEEP_HORIZON + 100,
        policy: psync(),
    });
    for v in graph.vertices() {
        let state = DiscoveryState::from_setup(&setup, v)
            .expect("vertex registered")
            .with_gossip(mode);
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    sim.run_until(|s| s.now() > SWEEP_HORIZON);
    let payload = sim.stats().label_payload("SETPDS");
    let messages = sim.stats().messages_sent;
    let views = sim
        .into_actors()
        .into_iter()
        .map(|(id, actor)| {
            let discovery = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            (id, discovery.state().view().clone())
        })
        .collect();
    (payload, messages, views)
}

struct SweepTotals {
    full_payload: u64,
    delta_payload: u64,
    min_ratio: f64,
}

fn sweep_section(rows: &mut Vec<Json>) -> SweepTotals {
    let mut totals = SweepTotals {
        full_payload: 0,
        delta_payload: 0,
        min_ratio: f64::INFINITY,
    };
    for family in sweep_families() {
        for size in SWEEP_SIZES {
            let scaled = family.scaled(size);
            let sample = scaled
                .generate(11)
                .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
            let graph = &sample.system.graph;
            let (full_payload, full_msgs, full_views) =
                discovery_run(graph, GossipMode::Full, size as u64);
            let (delta_payload, delta_msgs, delta_views) =
                discovery_run(graph, GossipMode::Delta, size as u64);
            assert_eq!(
                full_views,
                delta_views,
                "{}@n{size}: delta views must be byte-identical to the baseline",
                family.name()
            );
            let ratio = full_payload as f64 / delta_payload.max(1) as f64;
            totals.full_payload += full_payload;
            totals.delta_payload += delta_payload;
            totals.min_ratio = totals.min_ratio.min(ratio);
            println!(
                "  {:<18} n={:<3} SETPDS payload: full={:<8} delta={:<6} ({ratio:>6.1}x)  msgs: full={} delta={}",
                family.name(),
                graph.vertex_count(),
                full_payload,
                delta_payload,
                full_msgs,
                delta_msgs,
            );
            rows.push(Json::obj([
                ("family", Json::str(family.name())),
                ("n", Json::U64(graph.vertex_count() as u64)),
                ("full_payload", Json::U64(full_payload)),
                ("delta_payload", Json::U64(delta_payload)),
                ("full_messages", Json::U64(full_msgs)),
                ("delta_messages", Json::U64(delta_msgs)),
                ("ratio", Json::F64(ratio)),
            ]));
        }
    }
    totals
}

#[allow(clippy::too_many_lines)]
fn e2e_cell(family: &GraphFamily, n: usize, kind: RuntimeKind) -> (bool, f64, Json) {
    let scaled = family.scaled(n);
    let sample = scaled
        .generate(n as u64)
        .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
    let actual_n = sample.system.graph.vertex_count();
    let mut scenario = Scenario::new(
        sample.system.graph,
        ProtocolMode::KnownThreshold(FAULT_THRESHOLD),
    )
    .with_seed(1)
    .with_policy(psync())
    .with_horizon(2_000_000);
    if kind == RuntimeKind::Threaded && n >= 500 {
        // Tick knobs read as milliseconds on the threaded substrate, and
        // every message funnels through one router thread: slow the
        // polling cadence so hundreds of nodes don't saturate it, and
        // give the run a wall budget matched to the slower cadence (it
        // still stops the instant every correct node decides).
        scenario.discovery_period = 100;
        scenario.view_timeout_base = 2_000;
        scenario = scenario.with_threaded_wall_timeout(std::time::Duration::from_secs(180));
    }
    let started = Instant::now();
    let outcome = scenario.run_on(kind);
    let wall = started.elapsed().as_secs_f64();
    let check = outcome.check();
    let solved = check.consensus_solved();
    println!(
        "  {:<18} n={:<5} {:<8} {} wall={:>7.2}s end_time={:<8} msgs={:<9} payload={}",
        family.name(),
        actual_n,
        kind.label(),
        if solved { "solved ✓" } else { "FAILED ✗" },
        wall,
        outcome.end_time,
        outcome.stats.messages_sent,
        outcome.stats.payload_units,
    );
    let row = Json::obj([
        ("family", Json::str(family.name())),
        ("n", Json::U64(actual_n as u64)),
        ("runtime", Json::str(kind.label())),
        ("solved", Json::Bool(solved)),
        ("agreement", Json::Bool(check.agreement)),
        ("wall_seconds", Json::F64(wall)),
        ("end_time", Json::U64(outcome.end_time)),
        ("messages", Json::U64(outcome.stats.messages_sent)),
        ("payload_units", Json::U64(outcome.stats.payload_units)),
    ]);
    (solved, wall, row)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!(
        "Delta-gossip discovery scale series (f = {FAULT_THRESHOLD}{})",
        if full { ", --full" } else { "" }
    );

    header("Sweep: delivered SETPDS payload, full-S_PD baseline vs delta gossip");
    let mut sweep_rows = Vec::new();
    let totals = sweep_section(&mut sweep_rows);
    let total_ratio = totals.full_payload as f64 / totals.delta_payload.max(1) as f64;
    println!(
        "  -- totals: full={} delta={} ({:.1}x overall, worst cell {:.1}x)",
        totals.full_payload, totals.delta_payload, total_ratio, totals.min_ratio
    );
    assert!(
        total_ratio >= 10.0,
        "delta gossip must deliver ≥10x fewer SETPDS payload units on the sweep"
    );

    header("End-to-end consensus at scale (discovery → identification → consensus → learning)");
    let mut e2e_rows = Vec::new();
    let mut all_solved = true;
    let mut e2e_wall_total = 0.0;
    let mut sizes: Vec<usize> = E2E_SIZES.to_vec();
    if full {
        sizes.extend(E2E_FULL_SIZES);
    }
    for family in e2e_families() {
        for &n in &sizes {
            for kind in [RuntimeKind::Sim, RuntimeKind::Threaded] {
                // 2000 OS threads is a stress test, not a benchmark cell.
                if kind == RuntimeKind::Threaded && n > 1_000 {
                    continue;
                }
                // Erdős–Rényi's random periphery edges make every node
                // learn of (and poll) the whole system, so its per-round
                // traffic is Θ(n²) — beyond the single router thread of
                // the threaded substrate above a few hundred nodes; the
                // scale-free family concentrates the same pressure on its
                // hub inboxes at n=1000. The simulator carries their
                // scale series; the threaded cells stay at the sizes the
                // router can drain (k-diamond and bridged-partition run
                // the full size axis on both substrates).
                let threaded_cap = match family {
                    GraphFamily::ErdosRenyi { .. } => 100,
                    GraphFamily::ScaleFree { .. } => 500,
                    _ => usize::MAX,
                };
                if kind == RuntimeKind::Threaded && n > threaded_cap {
                    continue;
                }
                let (solved, wall, row) = e2e_cell(&family, n, kind);
                all_solved &= solved;
                e2e_wall_total += wall;
                e2e_rows.push(row);
            }
        }
    }
    assert!(all_solved, "every end-to-end cell must solve consensus");

    println!();
    println!("Expected shape: sweep payload drops ≥10x because delta replies carry only");
    println!("unseen certificates and synced pairs stop polling; end-to-end n=1000 runs in");
    println!("seconds because identification is dirty-gated per tick and the candidate");
    println!("search stops at the planted committee before touching giant periphery SCCs.");

    if let Some(path) = json_path_from_args() {
        let doc = Json::obj([
            ("fault_threshold", Json::U64(FAULT_THRESHOLD as u64)),
            ("sweep", Json::Arr(sweep_rows)),
            ("e2e", Json::Arr(e2e_rows)),
            (
                "regression",
                Json::obj([
                    ("sweep_full_payload", Json::U64(totals.full_payload)),
                    ("sweep_delta_payload", Json::U64(totals.delta_payload)),
                    ("sweep_payload_ratio", Json::F64(total_ratio)),
                    ("e2e_wall_seconds_total", Json::F64(e2e_wall_total)),
                ]),
            ),
        ]);
        write_json(&path, &doc);
    }
}
