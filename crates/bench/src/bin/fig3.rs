//! Figure 3 — non-sink members can declare themselves a sink when `f` is
//! unknown.
//!
//! * Static claim (Section IV): `isSinkGdi(2, {1,2,3,4,6}, {5,7})` holds
//!   on the Fig. 3a graph even though those processes are not the sink.
//! * Dynamic claim: processes `{2,3,4,6}` cannot distinguish Fig. 3a
//!   (processes 5 and 7 slow) from Fig. 3b (processes 5 and 7 Byzantine
//!   and silent). Running the naive guesser on Fig. 3a with `{5,7,8}`
//!   partitioned away produces two independent decisions — Agreement
//!   violated; on Fig. 3b the same local behavior is *correct*.

use cupft_bench::{fmt_set, header, Row};
use cupft_core::{ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{fig3a, fig3b, is_sink_gdi, process_set, KnowledgeView};
use cupft_net::DelayPolicy;

const NAIVE: ProtocolMode = ProtocolMode::NaiveGuess { settle_ticks: 3 };

fn main() {
    println!("Figure 3 — false sink self-declaration without a known fault threshold");

    header("Static predicate evaluation on Fig. 3a");
    let fig_a = fig3a();
    let view = KnowledgeView::omniscient(fig_a.graph());
    let s1 = process_set([1, 2, 3, 4, 6]);
    let s2 = process_set([5, 7]);
    let holds = is_sink_gdi(&view, 2, &s1, &s2);
    println!(
        "  isSinkGdi(2, {}, {}) = {holds}   (true sink of G_safe: {})",
        fmt_set(&s1),
        fmt_set(&s2),
        fmt_set(fig_a.expected_sink().expect("fig3a has a sink")),
    );
    assert!(holds, "the paper's Section IV claim must hold");

    header("Fig. 3a — naive guesser, {5,7,8} slow; process 1 behaves like a correct process");
    // Per the caption, the Byzantine process 1 "behaves like correct
    // processes": it runs the honest protocol, which is what makes the
    // false committee {1,…,7} reach its quorum while 5 and 7 are slow.
    let slow = Scenario::new(fig_a.graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4, 6]), process_set([5, 7, 8])],
            cross_delay: 50_000,
        })
        .with_value(1, b"x")
        .with_value(2, b"x")
        .with_value(3, b"x")
        .with_value(4, b"x")
        .with_value(6, b"x")
        .with_value(5, b"y")
        .with_value(7, b"y")
        .with_value(8, b"y")
        .with_horizon(200_000);
    let row = Row::run("fig3a, 5/7/8 slow, 1 acting correct", &slow);
    row.print();
    assert!(
        !row.check.agreement,
        "fig3a with a partition must split the decision"
    );

    header("Fig. 3b — same local view, but {5,7} really are Byzantine");
    let fig_b = fig3b();
    let b = Scenario::new(fig_b.graph().clone(), NAIVE)
        .with_byzantine(5, ByzantineStrategy::Silent)
        .with_byzantine(7, ByzantineStrategy::Silent)
        .with_value(1, b"x")
        .with_value(2, b"x")
        .with_value(3, b"x")
        .with_value(4, b"x")
        .with_value(6, b"x");
    let row = Row::run("fig3b, 5/7 silent", &b);
    row.print();
    assert!(
        row.solved,
        "fig3b must solve consensus — the same behavior that fails on 3a"
    );

    println!();
    println!("Figure 3 reproduced: identical local decisions are wrong on 3a and right on 3b —");
    println!("no f-unknown protocol can tell them apart on G_di graphs.");
}
