//! Experiment harness support: scenario presets and row formatting shared
//! by the table/figure binaries and the criterion benches.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper:
//!
//! | binary   | artifact |
//! |----------|----------|
//! | `table1` | Table I — (im)possibility matrix |
//! | `fig1`   | Fig. 1 — BFT-CUP requirement violation/satisfaction |
//! | `fig2`   | Fig. 2 — Theorem 7 impossibility executions |
//! | `fig3`   | Fig. 3 — false-sink self-declaration |
//! | `fig4`   | Fig. 4 — BFT-CUPFT core identification and consensus |
//! | `ablation_auth` | Section III claim — signatures vs. RRB baseline |
//! | `adversary_grid` | Fault-injection engine sweep: composite strategy specs + tamper |
//! | `graph_scale` | Graph-family scale series: generation + fast condition checks at 1k–50k vertices, per-family consensus rates |
//! | `discovery_scale` | Delta-gossip series: full-`S_PD` vs delta `SETPDS` payload on the family sweep, end-to-end consensus at n=100–1000 on both runtimes |
//!
//! `table1`, `fig1`, `fig4`, `adversary_grid`, `graph_scale`, and
//! `discovery_scale` accept `--json <path>` to leave a machine-readable
//! artifact beside the text tables (see [`json`] and `scripts/bench.sh`,
//! which merges them into `BENCH_adversary.json`, `BENCH_graph.json`, and
//! `BENCH_discovery.json`).

#![forbid(unsafe_code)]

pub mod json;

use cupft_core::{run_scenario, ConsensusCheck, Scenario, ScenarioOutcome, SuiteReport};
use cupft_graph::ProcessSet;

pub use json::{
    json_path_from_args, obs_json, row_json, suite_json, verdict_json, write_json, Json,
};

/// One printed experiment row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment label.
    pub label: String,
    /// Whether consensus was solved (agreement ∧ termination ∧ validity).
    pub solved: bool,
    /// Individual property verdicts.
    pub check: ConsensusCheck,
    /// Simulated end time.
    pub end_time: u64,
    /// Total messages.
    pub messages: u64,
    /// Total payload units (certificates carried by SETPDS traffic).
    pub payload_units: u64,
    /// Distinct sink/core detections among correct processes.
    pub detections: Vec<ProcessSet>,
}

impl Row {
    /// Runs a scenario and summarizes it under `label`.
    pub fn run(label: impl Into<String>, scenario: &Scenario) -> Row {
        let outcome = run_scenario(scenario);
        Row::from_outcome(label, &outcome)
    }

    /// Summarizes an already-run outcome.
    pub fn from_outcome(label: impl Into<String>, outcome: &ScenarioOutcome) -> Row {
        let check = outcome.check();
        Row {
            label: label.into(),
            solved: check.consensus_solved(),
            check,
            end_time: outcome.end_time,
            messages: outcome.stats.messages_sent,
            payload_units: outcome.stats.payload_units,
            detections: outcome.distinct_detections().into_iter().collect(),
        }
    }

    /// Renders the row.
    pub fn print(&self) {
        let mark = if self.solved { "✓" } else { "✗" };
        let values: Vec<String> = self
            .check
            .decided_values
            .iter()
            .map(|v| String::from_utf8_lossy(v).into_owned())
            .collect();
        println!(
            "  {mark} {:<46} agree={} term={} valid={}  t_end={:<7} msgs={:<6} decided={:?}",
            self.label,
            self.check.agreement,
            self.check.termination,
            self.check.validity,
            self.end_time,
            self.messages,
            values,
        );
        if !self.detections.is_empty() {
            let sets: Vec<String> = self.detections.iter().map(fmt_set).collect();
            println!("      identified sink/core set(s): {}", sets.join(" | "));
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints every verdict of a parallel suite run as a [`Row`], followed by
/// the aggregate summary line.
pub fn print_suite(report: &SuiteReport) {
    for verdict in &report.verdicts {
        Row::from_outcome(&verdict.label, &verdict.outcome).print();
    }
    println!("  -- {}", report.summary());
}

/// Formats a process set compactly (delegates to the fault-injection
/// engine's shared formatter so bench output and suite/shrink labels
/// cannot drift apart).
pub fn fmt_set(s: &ProcessSet) -> String {
    cupft_adversary::fmt_process_set(s)
}
