//! A2 — ablation: the cost of not knowing `f`. Sink identification
//! (Algorithm 2, known `f`) vs. Core identification (Algorithm 4, unknown
//! `f`, with the maximality certification) on comparable views.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupft_core::{CoreDetector, SinkDetector};
use cupft_graph::{GdiParams, Generator, KnowledgeView};
use std::hint::black_box;

fn view_for(extended: bool, sink_size: usize, periphery: usize) -> KnowledgeView {
    let mut params = GdiParams::new(1);
    params.extended = extended;
    params.sink_size = sink_size;
    params.non_sink_size = periphery;
    params.byzantine_count = 0;
    let sys = Generator::from_seed(7)
        .generate(&params)
        .expect("generation succeeds");
    KnowledgeView::omniscient(&sys.graph)
}

fn bench_sink_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sink_detection_known_f");
    for (sink, periphery) in [(3usize, 4usize), (5, 8), (7, 16)] {
        let view = view_for(false, sink, periphery);
        let detector = SinkDetector::new(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(sink + periphery),
            &view,
            |b, view| b.iter(|| detector.check(black_box(view)).expect("sink found")),
        );
    }
    group.finish();
}

fn bench_core_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_detection_unknown_f");
    for (core, periphery) in [(3usize, 4usize), (5, 8), (7, 16)] {
        let view = view_for(true, core, periphery);
        let detector = CoreDetector::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(core + periphery),
            &view,
            |b, view| b.iter(|| detector.check(black_box(view)).expect("core found")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sink_detection, bench_core_detection,
}
criterion_main!(benches);
