//! S3 — committee consensus scaling: lock-step decision latency (in
//! processed messages) across committee sizes, with and without a faulty
//! leader forcing a view change.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupft_committee::{Committee, Replica, ReplicaConfig};
use cupft_crypto::KeyRegistry;
use cupft_graph::{process_set, ProcessId};
use std::hint::black_box;

fn make_replicas(n: u64, f: usize) -> Vec<Replica> {
    let mut registry = KeyRegistry::new();
    let committee = Committee::new(process_set(1..=n), f);
    (1..=n)
        .map(|i| {
            let key = registry.register(i);
            Replica::new(
                key,
                registry.clone(),
                committee.clone(),
                Bytes::from(format!("value-{i}")),
                ReplicaConfig::default(),
            )
        })
        .collect()
}

/// Lock-step run to unanimous decision; returns messages processed.
fn run_lockstep(replicas: &mut [Replica], silent_leader: bool) -> u64 {
    let mut queue: Vec<(ProcessId, ProcessId, cupft_committee::CommitteeMsg)> = Vec::new();
    for r in replicas.iter_mut() {
        let fx = r.start();
        for (to, m) in fx.msgs {
            if !(silent_leader && r.id().raw() == 1) {
                queue.push((r.id(), to, m));
            }
        }
    }
    if silent_leader {
        for r in replicas.iter_mut() {
            if r.id().raw() == 1 {
                continue;
            }
            let fx = r.on_timeout(r.view());
            for (to, m) in fx.msgs {
                queue.push((r.id(), to, m));
            }
        }
    }
    let mut processed = 0u64;
    while let Some((from, to, msg)) = queue.pop() {
        processed += 1;
        assert!(processed < 5_000_000, "did not converge");
        if silent_leader && from.raw() == 1 {
            continue;
        }
        let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
            continue;
        };
        let fx = r.handle(from, msg);
        for (to2, m2) in fx.msgs {
            queue.push((r.id(), to2, m2));
        }
    }
    processed
}

fn bench_committee(c: &mut Criterion) {
    let mut group = c.benchmark_group("committee_decision");
    for (n, f) in [(4u64, 1usize), (7, 2), (13, 4), (25, 8)] {
        group.bench_with_input(BenchmarkId::new("happy_path", n), &(n, f), |b, &(n, f)| {
            b.iter(|| {
                let mut replicas = make_replicas(n, f);
                black_box(run_lockstep(&mut replicas, false))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("silent_leader", n),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let mut replicas = make_replicas(n, f);
                    black_box(run_lockstep(&mut replicas, true))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_committee,
}
criterion_main!(benches);
