//! A5 — overhead of execution-trace recording.
//!
//! The same scenario run three ways: plain (no trace), with the
//! simulator's delivery trace only, and fully recorded through the
//! fault-injection engine (send log via the tamper hook, delivery trace,
//! decision events, merge). The spread between the first and the last is
//! the price of a post-hoc-checkable execution.

use criterion::{criterion_group, criterion_main, Criterion};
use cupft_core::{
    run_scenario, run_scenario_recorded, run_scenario_traced, ByzantineStrategy, ProtocolMode,
    Scenario,
};
use cupft_graph::fig1b;
use std::hint::black_box;

fn scenario() -> Scenario {
    Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_seed(7)
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_trace");

    group.bench_function("run_plain", |b| {
        b.iter(|| {
            let outcome = run_scenario(&scenario());
            assert!(outcome.check().consensus_solved());
            black_box(outcome.end_time)
        })
    });

    group.bench_function("run_delivery_traced", |b| {
        b.iter(|| {
            let (outcome, trace) = run_scenario_traced(&scenario());
            assert!(outcome.check().consensus_solved());
            black_box(trace.len())
        })
    });

    group.bench_function("run_recorded", |b| {
        b.iter(|| {
            let (outcome, trace) = run_scenario_recorded(&scenario());
            assert!(outcome.check().consensus_solved());
            black_box(trace.fingerprint())
        })
    });

    group.bench_function("fingerprint_only", |b| {
        let (_, trace) = run_scenario_recorded(&scenario());
        b.iter(|| black_box(trace.fingerprint()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_trace_overhead
}
criterion_main!(benches);
