//! T1 — the possibility cells of Table I as end-to-end simulated runs
//! (how long a full consensus takes per knowledge model). The tabulated
//! version with the impossibility cells is `src/bin/table1.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use cupft_core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use cupft_graph::{fig1b, fig4a, process_set, DiGraph};
use std::hint::black_box;

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");

    group.bench_function("known_n_known_f", |b| {
        let graph = DiGraph::complete(&process_set(1..=4));
        b.iter(|| {
            let scenario = Scenario::new(graph.clone(), ProtocolMode::KnownThreshold(1))
                .with_byzantine(4, ByzantineStrategy::Silent);
            let outcome = run_scenario(&scenario);
            assert!(outcome.check().consensus_solved());
            black_box(outcome.end_time)
        })
    });

    group.bench_function("unknown_n_known_f", |b| {
        let graph = fig1b().graph().clone();
        b.iter(|| {
            let scenario = Scenario::new(graph.clone(), ProtocolMode::KnownThreshold(1))
                .with_byzantine(4, ByzantineStrategy::Silent);
            let outcome = run_scenario(&scenario);
            assert!(outcome.check().consensus_solved());
            black_box(outcome.end_time)
        })
    });

    group.bench_function("unknown_n_unknown_f", |b| {
        let graph = fig4a().graph().clone();
        b.iter(|| {
            let scenario = Scenario::new(graph.clone(), ProtocolMode::UnknownThreshold)
                .with_byzantine(9, ByzantineStrategy::Silent);
            let outcome = run_scenario(&scenario);
            assert!(outcome.check().consensus_solved());
            black_box(outcome.end_time)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cells,
}
criterion_main!(benches);
