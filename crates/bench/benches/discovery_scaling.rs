//! S1 — discovery convergence as systems grow (Theorem 2's
//! `GST + 2(d−1)δ`-shaped bound): full simulated runs of Algorithm 1 on
//! generated `G_di` systems of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState};
use cupft_graph::{GdiParams, GeneratedSystem, Generator};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, SimConfig};
use std::hint::black_box;

fn system_of_size(periphery: usize) -> GeneratedSystem {
    let mut params = GdiParams::new(1);
    params.non_sink_size = periphery;
    params.byzantine_count = 0;
    Generator::from_seed(99)
        .generate(&params)
        .expect("generation succeeds")
}

fn converge(sys: &GeneratedSystem) -> u64 {
    let setup = SystemSetup::new(&sys.graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed: 1,
        max_time: 100_000,
        policy: DelayPolicy::PartialSynchrony {
            gst: 100,
            delta: 10,
            pre_gst_max: 60,
        },
    });
    let correct: Vec<_> = sys.correct().into_iter().collect();
    for &v in &correct {
        let state = DiscoveryState::from_setup(&setup, v).unwrap();
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    let sink: Vec<_> = sys.sink.iter().copied().collect();
    let done = sim.run_until(|s| {
        correct.iter().all(|&v| {
            s.actor_as::<DiscoveryActor>(v)
                .is_some_and(|a| sink.iter().all(|&m| a.state().view().has_pd_of(m)))
        })
    });
    assert!(done, "discovery must converge");
    sim.now()
}

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery_convergence");
    for periphery in [4usize, 16, 48] {
        let sys = system_of_size(periphery);
        group.bench_with_input(
            BenchmarkId::from_parameter(sys.graph.vertex_count()),
            &sys,
            |b, sys| b.iter(|| black_box(converge(sys))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_discovery,
}
criterion_main!(benches);
