//! A1 — ablation: authenticated (signed PDs) discovery vs. reachable
//! reliable broadcast, as full simulated runs to the same knowledge goal.
//! See `src/bin/ablation_auth.rs` for the tabulated version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupft_detector::SystemSetup;
use cupft_discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState};
use cupft_graph::{GdiParams, GeneratedSystem, Generator, ProcessSet};
use cupft_net::sim::Simulation;
use cupft_net::{DelayPolicy, SimConfig};
use cupft_rrb::{RrbActor, RrbMsg};
use std::hint::black_box;

fn policy() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 100,
        delta: 10,
        pre_gst_max: 60,
    }
}

fn system(periphery: usize) -> GeneratedSystem {
    let mut params = GdiParams::new(1);
    params.non_sink_size = periphery;
    Generator::from_seed(42)
        .generate(&params)
        .expect("generation succeeds")
}

fn run_auth(sys: &GeneratedSystem) -> u64 {
    let setup = SystemSetup::new(&sys.graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed: 7,
        max_time: 100_000,
        policy: policy(),
    });
    for v in sys.correct() {
        let state = DiscoveryState::from_setup(&setup, v).unwrap();
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    let sink: Vec<_> = sys.sink.iter().copied().collect();
    let ok = sim.run_until(|s| {
        sink.iter().all(|&m| {
            s.actor_as::<DiscoveryActor>(m)
                .is_some_and(|a| sink.iter().all(|&o| a.state().view().has_pd_of(o)))
        })
    });
    assert!(ok);
    sim.stats().messages_sent
}

fn run_rrb(sys: &GeneratedSystem) -> u64 {
    let mut sim: Simulation<RrbMsg> = Simulation::new(SimConfig {
        seed: 7,
        max_time: 100_000,
        policy: policy(),
    });
    for v in sys.correct() {
        let pd: ProcessSet = sys.graph.out_neighbors(v);
        let content: Vec<u64> = pd.iter().map(|q| q.raw()).collect();
        sim.add_actor(Box::new(RrbActor::new(v, sys.fault_threshold, pd, content)));
    }
    let sink: Vec<_> = sys.sink.iter().copied().collect();
    let ok = sim.run_until(|s| {
        sink.iter().all(|&m| {
            s.actor_as::<RrbActor>(m).is_some_and(|a| {
                sink.iter()
                    .filter(|&&o| o != m)
                    .all(|&o| a.state().delivered().any(|p| p.origin == o))
            })
        })
    });
    assert!(ok);
    sim.stats().messages_sent
}

fn bench_auth_vs_rrb(c: &mut Criterion) {
    let mut group = c.benchmark_group("pd_dissemination");
    for periphery in [2usize, 6] {
        let sys = system(periphery);
        let n = sys.graph.vertex_count();
        group.bench_with_input(BenchmarkId::new("authenticated", n), &sys, |b, sys| {
            b.iter(|| black_box(run_auth(sys)))
        });
        group.bench_with_input(BenchmarkId::new("rrb_baseline", n), &sys, |b, sys| {
            b.iter(|| black_box(run_rrb(sys)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_auth_vs_rrb,
}
criterion_main!(benches);
