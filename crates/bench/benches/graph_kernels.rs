//! S2 — graph-kernel microbenchmarks: the primitives every identification
//! decision rests on (SCC, strong connectivity, disjoint paths, the
//! `isSinkGdi` predicate, candidate search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cupft_graph::{
    condensation, fig1b, fig4a, is_sink_gdi, process_set, CandidateSearch, DiGraph, KnowledgeView,
};
use std::hint::black_box;

fn random_like_graph(n: u64) -> DiGraph {
    // Deterministic pseudo-random digraph: each vertex points to 4
    // arithmetic successors (a circulant-like expander).
    let ids = process_set(1..=n);
    let order: Vec<_> = ids.iter().copied().collect();
    let mut g = DiGraph::new();
    for (i, &v) in order.iter().enumerate() {
        for j in [1usize, 3, 7, 13] {
            g.add_edge(v, order[(i + j) % order.len()]);
        }
    }
    g
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc");
    for n in [64u64, 256, 1024] {
        let g = random_like_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| condensation(black_box(g)))
        });
    }
    group.finish();
}

fn bench_strong_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_connectivity");
    for n in [16u64, 32, 64] {
        let g = DiGraph::circulant(&process_set(1..=n), 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g).strong_connectivity())
        });
    }
    group.finish();
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_paths");
    for n in [16u64, 64, 128] {
        let g = DiGraph::complete(&process_set(1..=n));
        let (s, t) = (1.into(), (n / 2).into());
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(g).disjoint_path_count(s, t))
        });
    }
    group.finish();
}

fn bench_is_sink_gdi(c: &mut Criterion) {
    let view = KnowledgeView::omniscient(fig1b().graph());
    let s1 = process_set([1, 3, 4]);
    let s2 = process_set([2]);
    c.bench_function("is_sink_gdi/fig1b", |b| {
        b.iter(|| is_sink_gdi(black_box(&view), 1, black_box(&s1), black_box(&s2)))
    });
}

fn bench_candidate_search(c: &mut Criterion) {
    let view = KnowledgeView::omniscient(fig4a().graph());
    let search = CandidateSearch::default();
    c.bench_function("best_core/fig4a", |b| {
        b.iter(|| search.best_core(black_box(&view)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_scc,
        bench_strong_connectivity,
        bench_disjoint_paths,
        bench_is_sink_gdi,
        bench_candidate_search,
}
criterion_main!(benches);
