//! A6 — the memoization wins of the delta-gossip rework, isolated from
//! the network layer.
//!
//! Three `absorb` paths — cold (first sight: one HMAC verification),
//! duplicate (fingerprint-equal record already held: no verification),
//! forged replay (known-bad fingerprint: no verification, no recount) —
//! plus the `ProcessSet` cached-fingerprint hash against re-hashing the
//! members, which is what every per-peer sync-state comparison leans on.

use std::collections::BTreeSet;
use std::hash::{BuildHasher, RandomState};
use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use cupft_detector::{PdCertificate, SystemSetup};
use cupft_discovery::DiscoveryState;
use cupft_graph::{process_set, GraphFamily, ProcessId, ProcessSet};

const N: usize = 64;

fn setup() -> SystemSetup {
    let sample = GraphFamily::erdos_renyi(N, 1)
        .generate(7)
        .expect("valid family");
    SystemSetup::new(&sample.system.graph)
}

fn fresh_state(setup: &SystemSetup) -> DiscoveryState {
    DiscoveryState::from_setup(setup, ProcessId::new(N as u64)).expect("vertex registered")
}

fn bench_absorb(c: &mut Criterion) {
    let setup = setup();
    let certs: Vec<Arc<PdCertificate>> = (1..=N as u64)
        .map(|id| setup.shared_certificate_for(ProcessId::new(id)).unwrap())
        .collect();
    let mut group = c.benchmark_group("absorb");

    // Cold: every record is new — pays one signature verification each.
    group.bench_function("cold_64_certs", |b| {
        b.iter(|| {
            let mut state = fresh_state(&setup);
            for cert in &certs {
                state.absorb(cert.clone());
            }
            black_box(state.view().received_count())
        })
    });

    // Duplicate: the same records re-delivered — the fingerprint check
    // rejects them before any cryptography.
    group.bench_function("duplicate_64_certs", |b| {
        let mut state = fresh_state(&setup);
        for cert in &certs {
            state.absorb(cert.clone());
        }
        b.iter(|| {
            for cert in &certs {
                state.absorb(cert.clone());
            }
            black_box(state.view().received_count())
        })
    });

    // Forged replay: a known-bad record re-delivered — rejected by the
    // memoized fingerprint, not by re-running HMAC.
    group.bench_function("forged_replay_64x", |b| {
        let forged = Arc::new(PdCertificate::forge(
            ProcessId::new(1),
            &process_set([99, 100]),
        ));
        let mut state = fresh_state(&setup);
        state.absorb(forged.clone());
        b.iter(|| {
            for _ in 0..N {
                state.absorb(forged.clone());
            }
            black_box(state.rejected_forgeries)
        })
    });

    group.finish();
}

fn bench_fingerprint_hash(c: &mut Criterion) {
    let members: Vec<u64> = (1..=1024u64).collect();
    let compact: ProcessSet = members.iter().map(|&m| ProcessId::new(m)).collect();
    let btree: BTreeSet<ProcessId> = members.iter().map(|&m| ProcessId::new(m)).collect();
    let hasher = RandomState::new();
    let mut group = c.benchmark_group("process_set_hash");

    // O(1): the cached fingerprint is hashed, not the 1024 members.
    group.bench_function("cached_fingerprint_1024", |b| {
        b.iter(|| black_box(hasher.hash_one(black_box(&compact))))
    });

    // The old representation: every member walks through the hasher.
    group.bench_function("btreeset_rehash_1024", |b| {
        b.iter(|| black_box(hasher.hash_one(black_box(&btree))))
    });

    // Equality fast path: fingerprint + length reject before any member
    // comparison; the common case for per-peer sync-state checks.
    group.bench_function("eq_mismatch_1024", |b| {
        let mut other = compact.clone();
        other.insert(ProcessId::new(9999));
        b.iter(|| black_box(compact == other))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_absorb, bench_fingerprint_hash
}
criterion_main!(benches);
