//! A6 — the memoization wins of the delta-gossip rework, isolated from
//! the network layer.
//!
//! Three `absorb` paths — cold (first sight: one HMAC verification),
//! duplicate (fingerprint-equal record already held: no verification),
//! forged replay (known-bad fingerprint: no verification, no recount) —
//! plus the `ProcessSet` cached-fingerprint hash against re-hashing the
//! members, which is what every per-peer sync-state comparison leans on.
//!
//! The `verify_pipeline` group isolates the verification stage's two
//! levers: batch verification (a whole SETPDS bundle under one registry
//! read lock, cold vs. memo-warm pool) and absorb against a pre-warmed
//! shared pool (the actor-side view of a preflighted bundle: zero HMACs).

use std::collections::BTreeSet;
use std::hash::{BuildHasher, RandomState};
use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use cupft_detector::{CertPool, PdCertificate, SystemSetup};
use cupft_discovery::DiscoveryState;
use cupft_graph::{process_set, GraphFamily, ProcessId, ProcessSet};

const N: usize = 64;

fn setup() -> SystemSetup {
    let sample = GraphFamily::erdos_renyi(N, 1)
        .generate(7)
        .expect("valid family");
    SystemSetup::new(&sample.system.graph)
}

fn fresh_state(setup: &SystemSetup) -> DiscoveryState {
    DiscoveryState::from_setup(setup, ProcessId::new(N as u64)).expect("vertex registered")
}

fn bench_absorb(c: &mut Criterion) {
    let setup = setup();
    let certs: Vec<Arc<PdCertificate>> = (1..=N as u64)
        .map(|id| setup.shared_certificate_for(ProcessId::new(id)).unwrap())
        .collect();
    let mut group = c.benchmark_group("absorb");

    // Cold: every record is new — pays one signature verification each.
    group.bench_function("cold_64_certs", |b| {
        b.iter(|| {
            let mut state = fresh_state(&setup);
            for cert in &certs {
                state.absorb(cert.clone());
            }
            black_box(state.view().received_count())
        })
    });

    // Duplicate: the same records re-delivered — the fingerprint check
    // rejects them before any cryptography.
    group.bench_function("duplicate_64_certs", |b| {
        let mut state = fresh_state(&setup);
        for cert in &certs {
            state.absorb(cert.clone());
        }
        b.iter(|| {
            for cert in &certs {
                state.absorb(cert.clone());
            }
            black_box(state.view().received_count())
        })
    });

    // Forged replay: a known-bad record re-delivered — rejected by the
    // memoized fingerprint, not by re-running HMAC.
    group.bench_function("forged_replay_64x", |b| {
        let forged = Arc::new(PdCertificate::forge(
            ProcessId::new(1),
            &process_set([99, 100]),
        ));
        let mut state = fresh_state(&setup);
        state.absorb(forged.clone());
        b.iter(|| {
            for _ in 0..N {
                state.absorb(forged.clone());
            }
            black_box(state.rejected_forgeries)
        })
    });

    group.finish();
}

fn bench_verify_pipeline(c: &mut Criterion) {
    let setup = setup();
    let certs: Vec<Arc<PdCertificate>> = (1..=N as u64)
        .map(|id| setup.shared_certificate_for(ProcessId::new(id)).unwrap())
        .collect();
    let mut group = c.benchmark_group("verify_pipeline");

    // Cold batch: a fresh pool settles every verdict — 64 HMACs under a
    // single registry read lock. This is what one stage worker pays for
    // the first sighting of a SETPDS bundle. (Pool construction rides
    // inside the timed body, same convention as `cold_64_certs`.)
    group.bench_function("batch_verify_cold_64", |b| {
        b.iter(|| {
            let pool = CertPool::new();
            black_box(pool.verify_batch(&certs, setup.registry()))
        })
    });

    // Warm batch: every fingerprint already settled — the stage's steady
    // state once a certificate has been seen anywhere in the system.
    group.bench_function("batch_verify_warm_64", |b| {
        let pool = CertPool::new();
        pool.verify_batch(&certs, setup.registry());
        b.iter(|| black_box(pool.verify_batch(&certs, setup.registry())))
    });

    // Cold absorb against a fresh shared pool: the actor pays the HMACs
    // itself (batch path, one lock) — the unpipelined per-process cost.
    group.bench_function("absorb_batch_cold_pool_64", |b| {
        b.iter(|| {
            let mut state = fresh_state(&setup).with_shared_pool(Arc::new(CertPool::new()));
            state.absorb_batch(&certs);
            black_box(state.view().received_count())
        })
    });

    // Warm absorb: the stage (or any other process) already settled the
    // verdicts, so absorbing the bundle is pure memo hits + set algebra —
    // the stateful half of the split in isolation.
    group.bench_function("absorb_batch_warm_pool_64", |b| {
        let warm = Arc::new(CertPool::new());
        warm.verify_batch(&certs, setup.registry());
        b.iter(|| {
            let mut state = fresh_state(&setup).with_shared_pool(warm.clone());
            state.absorb_batch(&certs);
            black_box(state.view().received_count())
        })
    });

    group.finish();
}

fn bench_fingerprint_hash(c: &mut Criterion) {
    let members: Vec<u64> = (1..=1024u64).collect();
    let compact: ProcessSet = members.iter().map(|&m| ProcessId::new(m)).collect();
    let btree: BTreeSet<ProcessId> = members.iter().map(|&m| ProcessId::new(m)).collect();
    let hasher = RandomState::new();
    let mut group = c.benchmark_group("process_set_hash");

    // O(1): the cached fingerprint is hashed, not the 1024 members.
    group.bench_function("cached_fingerprint_1024", |b| {
        b.iter(|| black_box(hasher.hash_one(black_box(&compact))))
    });

    // The old representation: every member walks through the hasher.
    group.bench_function("btreeset_rehash_1024", |b| {
        b.iter(|| black_box(hasher.hash_one(black_box(&btree))))
    });

    // Equality fast path: fingerprint + length reject before any member
    // comparison; the common case for per-peer sync-state checks.
    group.bench_function("eq_mismatch_1024", |b| {
        let mut other = compact.clone();
        other.insert(ProcessId::new(9999));
        b.iter(|| black_box(compact == other))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_absorb, bench_verify_pipeline, bench_fingerprint_hash
}
criterion_main!(benches);
