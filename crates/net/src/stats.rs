//! Network statistics collected by the runtimes.

use std::collections::BTreeMap;
use std::fmt;

/// Counters describing one run of a runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Total messages delivered to actors.
    pub messages_delivered: u64,
    /// Messages discarded by an installed [`crate::Tamper`] layer (always
    /// 0 when no tamper is set). Dropped messages still count as sent.
    pub messages_dropped: u64,
    /// Total payload units handed to the network (the sum of
    /// [`crate::Labeled::payload_units`] over every send — for discovery
    /// traffic, certificates carried). Like `messages_sent`, includes
    /// payload that a tamper later dropped.
    pub payload_units: u64,
    /// Payload units aboard tamper-dropped messages. Subtract from
    /// [`Self::payload_units`] (see [`Self::payload_delivered`]) for the
    /// payload that actually reached the delivery schedule.
    pub payload_dropped: u64,
    /// Payload units counted **at actual delivery to an actor** — once
    /// per delivered message, regardless of how many shard hops or stage
    /// handoffs the (possibly `Arc`-shared, zero-copy) payload traveled
    /// through. The conservation law under reliable channels is
    /// `payload_delivered_units ≤ payload_units − payload_dropped`, with
    /// equality once every scheduled message has been delivered (the gap
    /// is payload still in flight at shutdown).
    pub payload_delivered_units: u64,
    /// Total timer events fired.
    pub timers_fired: u64,
    /// Per-label message counts (the label comes from
    /// [`crate::Labeled::label`]).
    pub by_label: BTreeMap<&'static str, u64>,
    /// Per-label payload-unit sums (only labels with nonzero payload
    /// appear).
    pub payload_by_label: BTreeMap<&'static str, u64>,
}

impl NetStats {
    /// Records a send with the given label and payload weight.
    pub(crate) fn record_send(&mut self, label: &'static str, payload: u64) {
        self.messages_sent += 1;
        *self.by_label.entry(label).or_insert(0) += 1;
        if payload > 0 {
            self.payload_units += payload;
            *self.payload_by_label.entry(label).or_insert(0) += payload;
        }
    }

    /// Records a tamper-dropped message (already counted as sent).
    pub(crate) fn record_drop(&mut self, payload: u64) {
        self.messages_dropped += 1;
        self.payload_dropped += payload;
    }

    /// Records an actual delivery's payload weight (exactly once per
    /// delivered message, at the moment the actor receives it).
    pub(crate) fn record_delivery_payload(&mut self, payload: u64) {
        self.payload_delivered_units += payload;
    }

    /// Messages of one label, 0 if none.
    pub fn label_count(&self, label: &str) -> u64 {
        self.by_label.get(label).copied().unwrap_or(0)
    }

    /// Payload units of one label, 0 if none.
    pub fn label_payload(&self, label: &str) -> u64 {
        self.payload_by_label.get(label).copied().unwrap_or(0)
    }

    /// Payload units that survived the tamper layer
    /// (`payload_units − payload_dropped`).
    pub fn payload_delivered(&self) -> u64 {
        self.payload_units.saturating_sub(self.payload_dropped)
    }

    /// Folds another stats block into this one, summing every counter and
    /// per-label map.
    ///
    /// This is how the sharded threaded router merges per-shard stats back
    /// into the run's single `NetStats` surface: shards are merged in
    /// shard-index order, so given the same per-shard outcomes the merged
    /// totals are deterministic, and every aggregate (`messages_sent`,
    /// `payload_units`, `by_label`, …) is conserved — the merge of N shard
    /// stats equals what one router observing all N traffic streams would
    /// have recorded.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_dropped += other.messages_dropped;
        self.payload_units += other.payload_units;
        self.payload_dropped += other.payload_dropped;
        self.payload_delivered_units += other.payload_delivered_units;
        self.timers_fired += other.timers_fired;
        for (label, count) in &other.by_label {
            *self.by_label.entry(label).or_insert(0) += count;
        }
        for (label, payload) in &other.payload_by_label {
            *self.payload_by_label.entry(label).or_insert(0) += payload;
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} payload={} payload_delivered={} timers={}",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.payload_units,
            self.payload_delivered_units,
            self.timers_fired
        )?;
        for (label, count) in &self.by_label {
            write!(f, " {label}={count}")?;
            if let Some(payload) = self.payload_by_label.get(label) {
                write!(f, "(·{payload})")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_displays() {
        let mut s = NetStats::default();
        s.record_send("PING", 0);
        s.record_send("PING", 0);
        s.record_send("PONG", 0);
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.label_count("PING"), 2);
        assert_eq!(s.label_count("NOPE"), 0);
        let text = s.to_string();
        assert!(text.contains("PING=2"));
        assert!(text.contains("sent=3"));
    }

    #[test]
    fn display_includes_drop_and_delivery_payload_counters() {
        let mut s = NetStats::default();
        s.record_send("SETPDS", 5);
        s.record_send("SETPDS", 3);
        s.record_drop(3);
        s.record_delivery_payload(5);
        s.messages_delivered = 1;
        let text = s.to_string();
        assert!(text.contains("dropped=1"), "{text}");
        assert!(text.contains("payload_delivered=5"), "{text}");
        assert!(text.contains("sent=2 delivered=1"), "{text}");
    }

    #[test]
    fn merge_conserves_every_counter() {
        let mut a = NetStats::default();
        a.record_send("PING", 0);
        a.record_send("SETPDS", 5);
        a.messages_delivered = 2;
        a.timers_fired = 3;
        let mut b = NetStats::default();
        b.record_send("SETPDS", 7);
        b.record_drop(7);
        b.messages_delivered = 1;

        // Merging shard-by-shard equals one router seeing all traffic.
        let mut reference = NetStats::default();
        reference.record_send("PING", 0);
        reference.record_send("SETPDS", 5);
        reference.record_send("SETPDS", 7);
        reference.record_drop(7);
        reference.messages_delivered = 3;
        reference.timers_fired = 3;

        let mut merged = NetStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, reference);
        assert_eq!(merged.label_payload("SETPDS"), 12);
        assert_eq!(merged.payload_delivered(), 5);
    }

    #[test]
    fn delivered_payload_counts_once_per_delivery() {
        let mut s = NetStats::default();
        s.record_send("SETPDS", 5);
        s.record_send("SETPDS", 3);
        s.record_drop(3);
        s.record_delivery_payload(5);
        assert_eq!(s.payload_delivered_units, 5);
        // Conservation once everything scheduled has been delivered.
        assert_eq!(s.payload_delivered_units, s.payload_delivered());
        // Merge conserves the delivered counter too.
        let mut other = NetStats::default();
        other.record_send("SETPDS", 2);
        other.record_delivery_payload(2);
        s.merge(&other);
        assert_eq!(s.payload_delivered_units, 7);
        assert_eq!(s.payload_delivered_units, s.payload_delivered());
    }

    #[test]
    fn payload_accounting() {
        let mut s = NetStats::default();
        s.record_send("SETPDS", 5);
        s.record_send("SETPDS", 3);
        s.record_send("GETPDS", 0);
        s.record_drop(3);
        assert_eq!(s.payload_units, 8);
        assert_eq!(s.payload_dropped, 3);
        assert_eq!(s.payload_delivered(), 5);
        assert_eq!(s.label_payload("SETPDS"), 8);
        assert_eq!(s.label_payload("GETPDS"), 0);
        assert_eq!(s.messages_dropped, 1);
        let text = s.to_string();
        assert!(text.contains("payload=8"));
        assert!(text.contains("SETPDS=2(·8)"));
    }
}
