//! Network statistics collected by the runtimes.

use std::collections::BTreeMap;
use std::fmt;

/// Counters describing one run of a runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Total messages delivered to actors.
    pub messages_delivered: u64,
    /// Messages discarded by an installed [`crate::Tamper`] layer (always
    /// 0 when no tamper is set). Dropped messages still count as sent.
    pub messages_dropped: u64,
    /// Total timer events fired.
    pub timers_fired: u64,
    /// Per-label message counts (the label comes from
    /// [`crate::Labeled::label`]).
    pub by_label: BTreeMap<&'static str, u64>,
}

impl NetStats {
    /// Records a send with the given label.
    pub(crate) fn record_send(&mut self, label: &'static str) {
        self.messages_sent += 1;
        *self.by_label.entry(label).or_insert(0) += 1;
    }

    /// Messages of one label, 0 if none.
    pub fn label_count(&self, label: &str) -> u64 {
        self.by_label.get(label).copied().unwrap_or(0)
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} timers={}",
            self.messages_sent, self.messages_delivered, self.timers_fired
        )?;
        for (label, count) in &self.by_label {
            write!(f, " {label}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_displays() {
        let mut s = NetStats::default();
        s.record_send("PING");
        s.record_send("PING");
        s.record_send("PONG");
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.label_count("PING"), 2);
        assert_eq!(s.label_count("NOPE"), 0);
        let text = s.to_string();
        assert!(text.contains("PING=2"));
        assert!(text.contains("sent=3"));
    }
}
