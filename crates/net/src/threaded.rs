//! OS-thread runtime: the same actors on real threads and channels.
//!
//! Each actor runs on its own thread with a crossbeam inbox; a **sharded
//! router plane** applies randomized delivery delays. Messages are hashed
//! by destination onto one of [`ThreadedConfig::router_shards`] router
//! shards, each owning its own delay wheel, inbox channel, RNG stream,
//! and [`NetStats`] block — the per-shard stats are merged
//! deterministically (shard-index order) into the single `NetStats`
//! surface the [`crate::Runtime`] trait reports, so callers see exactly
//! the counters a single router would have recorded.
//!
//! With `router_shards = 1` the runtime runs the classic single-router
//! loop on the driving thread — bit-compatible with the pre-sharding
//! runtime. With more shards, Θ(n²) all-to-all traffic (Erdős–Rényi
//! knowledge graphs) and hub-focused traffic (scale-free graphs) no
//! longer funnel through one router thread.
//!
//! A [`Tamper`] layer, when installed, is serialized through a single
//! dedicated shard (shard 0): every send is routed to it first, so the
//! tamper keeps seeing each message once, at send time, in the order the
//! sending actor emitted it, with one `&mut` state — its observable
//! semantics are independent of the shard count. Post-disposition, the
//! message is handed to its destination's shard for delay scheduling.
//!
//! A [`Preflight`] stage, when installed, runs on a pool of
//! [`ThreadedConfig::verify_workers`] **stage worker** threads sitting
//! between the actor outboxes and the router plane: stateless work
//! (certificate verification, fingerprint computation) runs off the
//! protocol threads before delivery. Workers are *sticky by sender*
//! (`from % workers`), and an actor's halt notice travels through the same
//! worker as its sends, so per-sender emission order — the property the
//! tamper serialization and the shutdown stats drain rely on — is
//! preserved for everything the stage touches. Messages the preflight
//! [`Preflight::wants`] not (polling and consensus traffic, typically)
//! bypass the pool and go straight to the router plane — on a busy box a
//! stage worker competing with hundreds of actor threads must not become
//! a second serialization point for traffic it has no work for. A halt
//! still trails every send: bypassed sends were forwarded by the actor
//! itself before it emitted the halt. When auto sizing resolves to a
//! single worker (a one-core box), the stage degenerates to running the
//! preflight inline on the sending actor's thread — the shared verdict
//! memo needs no extra thread, and a pool of one would be a second
//! serialization point, not a pipeline (an explicitly pinned
//! `verify_workers = 1` still spawns its one real worker). With no
//! preflight installed the pool does not exist and sends take exactly
//! the unstaged path.
//!
//! Real-time interleaving is inherently nondeterministic — use
//! [`crate::sim::Simulation`] for reproducible experiments and this
//! runtime for wall-clock validation that the protocols are not simulator
//! artifacts.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use cupft_graph::ProcessId;
use cupft_obs::{Histogram, Recorder};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, Context, Labeled, TimerKind};
use crate::runtime::{Runtime, RuntimeReport};
use crate::stage::Preflight;
use crate::stats::NetStats;
use crate::tamper::{Fate, Tamper};
use crate::Time;

/// Seed stride separating the per-shard delay-RNG streams (shard 0 keeps
/// the configured seed unchanged, matching the single-router stream).
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration for the threaded runtime.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Minimum artificial delivery delay.
    pub min_delay: Duration,
    /// Maximum artificial delivery delay.
    pub max_delay: Duration,
    /// Wall-clock budget for the run.
    pub wall_timeout: Duration,
    /// Seed for the delay sampler.
    pub seed: u64,
    /// External stop signal: when some supervisor sets this flag the run
    /// winds down early (useful for protocols whose actors never halt,
    /// where the caller detects goal completion out of band, e.g. via a
    /// [`Board`]).
    pub stop: Option<Arc<AtomicBool>>,
    /// Number of router shards the delivery plane runs on.
    ///
    /// `0` (the default) resolves to `min(available cores, 4)`. `1` runs
    /// the classic single-router loop on the driving thread —
    /// bit-compatible with the pre-sharding runtime. Each shard owns its
    /// own delay wheel, RNG stream (shard 0 keeps `seed` exactly), and
    /// [`NetStats`] block; per-shard stats are merged in shard-index
    /// order into the reported totals.
    pub router_shards: usize,
    /// Number of stage-worker threads running the installed
    /// [`Preflight`] between the actor outboxes and the router plane.
    ///
    /// `0` (the default) sizes the pool off the router-shard
    /// auto-detection ([`Self::effective_router_shards`]); when that
    /// resolves to a single worker (a one-core box) the stage runs
    /// inline on the sending actors' threads instead of spawning a
    /// pool of one. The pool only exists while a preflight is
    /// installed — without one, sends take the unstaged path regardless
    /// of this setting.
    pub verify_workers: usize,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(10),
            wall_timeout: Duration::from_secs(10),
            seed: 0,
            stop: None,
            router_shards: 0,
            verify_workers: 0,
        }
    }
}

impl ThreadedConfig {
    /// The shard count this configuration resolves to: `router_shards`,
    /// or `min(available cores, 4)` when left at the `0` auto default.
    pub fn effective_router_shards(&self) -> usize {
        match self.router_shards {
            0 => std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(4),
            n => n,
        }
    }

    /// The stage-pool size this configuration resolves to:
    /// `verify_workers`, or the router-shard auto-detection when left at
    /// the `0` default.
    pub fn effective_verify_workers(&self) -> usize {
        match self.verify_workers {
            0 => self.effective_router_shards(),
            n => n,
        }
    }
}

/// Result of a threaded run: the actors (for state inspection) and stats.
pub struct ThreadedReport<M> {
    /// The actors, keyed by ID, in their final states.
    pub actors: BTreeMap<ProcessId, Box<dyn Actor<M>>>,
    /// Network statistics observed by the router plane (merged across
    /// shards).
    pub stats: NetStats,
    /// Whether every actor halted before the wall timeout.
    pub all_halted: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl<M> std::fmt::Debug for ThreadedReport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedReport")
            .field("actors", &self.actors.keys().collect::<Vec<_>>())
            .field("stats", &self.stats)
            .field("all_halted", &self.all_halted)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

enum RouterMsg<M> {
    Send {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        label: &'static str,
    },
    Halted(ProcessId),
}

/// A message on a router shard's channel.
enum ShardMsg<M> {
    /// A fresh send from an actor (or, with a tamper installed, the whole
    /// flow arriving at the tamper shard): record stats, consult the
    /// tamper, then schedule or forward.
    Send {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        label: &'static str,
    },
    /// A post-tamper handoff from the tamper shard to the destination's
    /// shard: stats and disposition already happened, only delay
    /// scheduling remains.
    Forward {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        extra: Duration,
    },
}

/// A message on a stage worker's channel: an actor's send awaiting its
/// preflight, or the actor's halt notice riding the same sticky worker so
/// it cannot overtake the sends emitted before it.
enum StageMsg<M> {
    Send {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        /// When the send entered the worker's queue — the stage
        /// queue-wait histogram is `recv time − enqueued` (wall domain).
        enqueued: Instant,
    },
    Halted(ProcessId),
}

/// The shard a destination's deliveries are scheduled on.
fn shard_of(to: ProcessId, shard_count: usize) -> usize {
    (to.raw() as usize) % shard_count
}

/// The stage worker a sender's traffic is serialized through.
fn worker_of(from: ProcessId, worker_count: usize) -> usize {
    (from.raw() as usize) % worker_count
}

/// The actor-side handle onto the router plane: routes sends to the right
/// shard (or the single router) and halt notices to the coordinator.
enum Outbox<M> {
    /// The classic single-router channel.
    Single(Sender<RouterMsg<M>>),
    /// The sharded plane: destination-hashed shard channels, an optional
    /// sticky tamper shard every send is serialized through, and the
    /// coordinator's halt channel.
    Sharded {
        shards: Arc<Vec<Sender<ShardMsg<M>>>>,
        tamper_shard: Option<usize>,
        halt: Sender<ProcessId>,
    },
    /// The staged plane: sends the preflight [`Preflight::wants`] flow
    /// through the sender's sticky stage worker (which runs the preflight,
    /// then forwards on the wrapped unstaged outbox); everything else goes
    /// straight to the wrapped outbox, so uninteresting traffic never pays
    /// the stage hop. Halts ride the sticky worker, so they cannot
    /// overtake any staged send, and every bypassed send was already
    /// forwarded when the halt was emitted.
    Staged {
        workers: Arc<Vec<Sender<StageMsg<M>>>>,
        inner: Box<Outbox<M>>,
        preflight: Arc<dyn Preflight<M>>,
    },
    /// The degenerate stage: the preflight runs on the sending actor's
    /// thread immediately before the send enters the router plane. The
    /// auto policy picks this over a worker pool when sizing resolves to
    /// a single worker (a one-core box): the shared verdict memo needs no
    /// extra thread to do its job, and a pool of one competing with every
    /// actor thread for the same core is a serialization point, not a
    /// pipeline. Per-sender emission order is exactly the unstaged one.
    Inline {
        inner: Box<Outbox<M>>,
        preflight: Arc<dyn Preflight<M>>,
        recorder: Option<Arc<Recorder>>,
    },
}

impl<M> Clone for Outbox<M> {
    fn clone(&self) -> Self {
        match self {
            Outbox::Single(tx) => Outbox::Single(tx.clone()),
            Outbox::Sharded {
                shards,
                tamper_shard,
                halt,
            } => Outbox::Sharded {
                shards: shards.clone(),
                tamper_shard: *tamper_shard,
                halt: halt.clone(),
            },
            Outbox::Staged {
                workers,
                inner,
                preflight,
            } => Outbox::Staged {
                workers: workers.clone(),
                inner: inner.clone(),
                preflight: preflight.clone(),
            },
            Outbox::Inline {
                inner,
                preflight,
                recorder,
            } => Outbox::Inline {
                inner: inner.clone(),
                preflight: preflight.clone(),
                recorder: recorder.clone(),
            },
        }
    }
}

impl<M: Labeled> Outbox<M> {
    fn send(&self, from: ProcessId, to: ProcessId, msg: M) {
        let label = msg.label();
        match self {
            Outbox::Single(tx) => {
                let _ = tx.send(RouterMsg::Send {
                    from,
                    to,
                    msg,
                    label,
                });
            }
            Outbox::Sharded {
                shards,
                tamper_shard,
                ..
            } => {
                // With a tamper installed every send flows through the
                // tamper shard first, preserving per-sender emission order
                // at the single tamper state.
                let idx = tamper_shard.unwrap_or_else(|| shard_of(to, shards.len()));
                let _ = shards[idx].send(ShardMsg::Send {
                    from,
                    to,
                    msg,
                    label,
                });
            }
            Outbox::Staged {
                workers,
                inner,
                preflight,
            } => {
                if preflight.wants(&msg) {
                    let idx = worker_of(from, workers.len());
                    let _ = workers[idx].send(StageMsg::Send {
                        from,
                        to,
                        msg,
                        enqueued: Instant::now(),
                    });
                } else {
                    inner.send(from, to, msg);
                }
            }
            Outbox::Inline {
                inner,
                preflight,
                recorder,
            } => {
                if preflight.wants(&msg) {
                    run_preflight(preflight.as_ref(), recorder, from, to, &msg, None);
                }
                inner.send(from, to, msg);
            }
        }
    }

    fn halted(&self, id: ProcessId) {
        match self {
            Outbox::Single(tx) => {
                let _ = tx.send(RouterMsg::Halted(id));
            }
            Outbox::Sharded { halt, .. } => {
                let _ = halt.send(id);
            }
            Outbox::Staged { workers, .. } => {
                // Through the sender's own sticky worker: by the time the
                // halt reaches the router plane (or coordinator), every
                // send this actor emitted before halting already has —
                // staged sends by the worker's FIFO, bypassed sends
                // because the actor forwarded them directly before
                // emitting the halt.
                let idx = worker_of(id, workers.len());
                let _ = workers[idx].send(StageMsg::Halted(id));
            }
            Outbox::Inline { inner, .. } => inner.halted(id),
        }
    }
}

/// Runs the preflight once, recording queue-wait and service-time
/// histograms (wall microseconds) when a recorder is installed.
/// `enqueued = None` is the inline degenerate stage: queue wait is zero
/// by construction, recorded anyway so both stage shapes produce the
/// same histogram set.
fn run_preflight<M>(
    preflight: &dyn Preflight<M>,
    recorder: &Option<Arc<Recorder>>,
    from: ProcessId,
    to: ProcessId,
    msg: &M,
    enqueued: Option<Instant>,
) {
    match recorder {
        Some(rec) => {
            let wait = enqueued.map_or(0, |at| at.elapsed().as_micros() as u64);
            rec.hist_record("stage_queue_wait_us", wait);
            let served = Instant::now();
            preflight.preflight(from, to, msg);
            rec.hist_record("stage_service_us", served.elapsed().as_micros() as u64);
            rec.counter_add("stage_bundles", 1);
        }
        None => preflight.preflight(from, to, msg),
    }
}

/// One stage worker's loop: run the preflight on each send, then forward
/// it (and halt notices, in order) on the wrapped unstaged outbox. Exits
/// when every actor sharing the worker has dropped its sender.
fn stage_loop<M>(
    rx: Receiver<StageMsg<M>>,
    inner: Outbox<M>,
    preflight: Arc<dyn Preflight<M>>,
    recorder: Option<Arc<Recorder>>,
) where
    M: Clone + Send + Labeled + 'static,
{
    while let Ok(stage_msg) = rx.recv() {
        match stage_msg {
            StageMsg::Send {
                from,
                to,
                msg,
                enqueued,
            } => {
                run_preflight(
                    preflight.as_ref(),
                    &recorder,
                    from,
                    to,
                    &msg,
                    Some(enqueued),
                );
                inner.send(from, to, msg);
            }
            StageMsg::Halted(id) => inner.halted(id),
        }
    }
}

/// Builds the actor-facing outbox for an installed preflight: a worker
/// pool when there is parallelism to exploit, the inline degenerate stage
/// when auto sizing resolves to a single worker (an explicitly pinned
/// `verify_workers = 1` still gets its one real worker — tests use that
/// to exercise the pool machinery deterministically).
fn stage_front<M>(
    inner: &Outbox<M>,
    preflight: Arc<dyn Preflight<M>>,
    config: &ThreadedConfig,
    recorder: Option<Arc<Recorder>>,
) -> (Outbox<M>, Vec<thread::JoinHandle<()>>)
where
    M: Clone + Send + Labeled + 'static,
{
    let workers = config.effective_verify_workers().max(1);
    if config.verify_workers == 0 && workers <= 1 {
        (
            Outbox::Inline {
                inner: Box::new(inner.clone()),
                preflight,
                recorder,
            },
            Vec::new(),
        )
    } else {
        spawn_stage_pool(inner, preflight, workers, recorder)
    }
}

/// Spawns the stage-worker pool in front of `inner`, returning the staged
/// actor-facing outbox and the worker join handles. Callers drop their
/// actor-side outbox clones to retire the pool.
fn spawn_stage_pool<M>(
    inner: &Outbox<M>,
    preflight: Arc<dyn Preflight<M>>,
    worker_count: usize,
    recorder: Option<Arc<Recorder>>,
) -> (Outbox<M>, Vec<thread::JoinHandle<()>>)
where
    M: Clone + Send + Labeled + 'static,
{
    let mut worker_txs = Vec::with_capacity(worker_count);
    let mut handles = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let (tx, rx) = unbounded::<StageMsg<M>>();
        worker_txs.push(tx);
        let inner = inner.clone();
        let preflight = preflight.clone();
        let recorder = recorder.clone();
        handles.push(thread::spawn(move || {
            stage_loop(rx, inner, preflight, recorder)
        }));
    }
    (
        Outbox::Staged {
            workers: Arc::new(worker_txs),
            inner: Box::new(inner.clone()),
            preflight,
        },
        handles,
    )
}

/// Router-plane observability accumulators, kept local to each router
/// loop (no synchronization on the hot path) and merged deterministically
/// — shard-index order — into the run's [`Recorder`] after the loop
/// exits.
#[derive(Default)]
struct RouterObs {
    /// Inbox channel depth sampled once per loop iteration.
    inbox_depth: Histogram,
    /// Delay-wheel (pending heap) size sampled once per loop iteration.
    wheel_depth: Histogram,
    /// Deliveries re-pushed because the destination inbox was full.
    deferrals: u64,
}

impl RouterObs {
    /// Folds this accumulator into `recorder` under the router metric
    /// names. Histogram merge is exact and commutative; callers still
    /// merge in shard-index order so the event of merging is itself
    /// deterministic.
    fn merge_into(&self, recorder: &Recorder) {
        recorder.merge_hist("router_inbox_depth", &self.inbox_depth);
        recorder.merge_hist("router_wheel_depth", &self.wheel_depth);
        recorder.counter_add("router_deferrals", self.deferrals);
    }
}

struct Pending<M> {
    due: Instant,
    seq: u64,
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we want earliest due first
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The OS-thread [`Runtime`]: each actor on its own thread, a sharded
/// router plane applying randomized delivery delays.
///
/// Lifecycle mirrors the trait contract: [`Runtime::add_actor`] before the
/// run, one [`Runtime::run_until_stopped`] (actors are consumed by their
/// threads and collected back at shutdown), then post-run inspection via
/// [`Runtime::actor_as`]. A second run request returns the recorded report
/// unchanged.
pub struct ThreadedRuntime<M> {
    config: ThreadedConfig,
    pending: Vec<Box<dyn Actor<M>>>,
    finished: BTreeMap<ProcessId, Box<dyn Actor<M>>>,
    stats: NetStats,
    last_report: Option<RuntimeReport>,
    elapsed: Duration,
    tamper: Option<Box<dyn Tamper<M>>>,
    preflight: Option<Arc<dyn Preflight<M>>>,
    recorder: Option<Arc<Recorder>>,
}

impl<M> ThreadedRuntime<M> {
    /// Creates a runtime with no actors.
    pub fn new(config: ThreadedConfig) -> Self {
        ThreadedRuntime {
            config,
            pending: Vec::new(),
            finished: BTreeMap::new(),
            stats: NetStats::default(),
            last_report: None,
            elapsed: Duration::ZERO,
            tamper: None,
            preflight: None,
            recorder: None,
        }
    }

    /// Installs a message-interception layer (see [`crate::tamper`]). The
    /// tamper runs serialized on one router shard; `now` is elapsed
    /// milliseconds.
    pub fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>) {
        assert!(
            self.last_report.is_none(),
            "ThreadedRuntime tamper must be installed before the run"
        );
        self.tamper = Some(tamper);
    }

    /// Installs a stateless pre-delivery stage (see [`crate::stage`]),
    /// executed by a pool of [`ThreadedConfig::verify_workers`] worker
    /// threads between the actor outboxes and the router plane.
    pub fn set_preflight(&mut self, preflight: Arc<dyn Preflight<M>>) {
        assert!(
            self.last_report.is_none(),
            "ThreadedRuntime preflight must be installed before the run"
        );
        self.preflight = Some(preflight);
    }

    /// Installs an observability recorder (see [`cupft_obs`]). The
    /// recorder stays in the **wall** clock domain: stage and router
    /// metrics are recorded in wall microseconds / raw depths, so a
    /// threaded obs report is a profile, not a deterministic trace —
    /// use the simulator for byte-reproducible observation.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        assert!(
            self.last_report.is_none(),
            "ThreadedRuntime recorder must be installed before the run"
        );
        self.recorder = Some(recorder);
    }

    /// Wall-clock duration of the completed run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Consumes the runtime, returning the actors in their final states.
    pub fn into_actors(self) -> BTreeMap<ProcessId, Box<dyn Actor<M>>> {
        self.finished
    }
}

impl<M> Runtime<M> for ThreadedRuntime<M>
where
    M: Clone + Send + Labeled + 'static,
{
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn add_actor(&mut self, actor: Box<dyn Actor<M>>) {
        assert!(
            self.last_report.is_none(),
            "ThreadedRuntime actors must be registered before the run"
        );
        let id = actor.id();
        assert!(
            self.pending.iter().all(|a| a.id() != id),
            "duplicate actor {id}"
        );
        self.pending.push(actor);
    }

    fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>) {
        ThreadedRuntime::set_tamper(self, tamper);
    }

    fn set_preflight(&mut self, preflight: Arc<dyn Preflight<M>>) {
        ThreadedRuntime::set_preflight(self, preflight);
    }

    fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        ThreadedRuntime::set_recorder(self, recorder);
    }

    fn run_until_stopped(&mut self, stop: &mut dyn FnMut() -> bool) -> RuntimeReport {
        // Already ran: report the recorded outcome unchanged.
        if let Some(report) = &self.last_report {
            return report.clone();
        }
        let actors = std::mem::take(&mut self.pending);
        let mut tamper = self.tamper.take();
        let preflight = self.preflight.take();
        let recorder = self.recorder.clone();
        let run = run_router(
            actors,
            &self.config,
            stop,
            &mut tamper,
            preflight,
            recorder.clone(),
        );
        self.finished.extend(run.actors);
        self.stats = run.stats.clone();
        self.elapsed = run.elapsed;
        let obs = recorder.map(|rec| {
            rec.gauge_set(
                "router_shards",
                self.config.effective_router_shards() as u64,
            );
            rec.gauge_set(
                "verify_workers",
                self.config.effective_verify_workers() as u64,
            );
            rec.snapshot()
        });
        let report = RuntimeReport {
            all_halted: run.all_halted,
            stopped: run.stopped,
            end_time: run.elapsed.as_millis() as Time,
            events: run.stats.messages_delivered,
            stats: run.stats,
            obs,
        };
        self.last_report = Some(report.clone());
        report
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn actor_ids(&self) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = self.finished.keys().copied().collect();
        ids.extend(self.pending.iter().map(|a| a.id()));
        ids.sort_unstable();
        ids
    }

    fn actor_dyn(&self, id: ProcessId) -> Option<&dyn Actor<M>> {
        self.finished.get(&id).map(|b| b.as_ref())
    }
}

/// Runs `actors` on OS threads until all halt or the wall timeout expires.
///
/// Thin wrapper over [`ThreadedRuntime`] retained for callers that want
/// the actors back by value.
pub fn run_threaded<M>(actors: Vec<Box<dyn Actor<M>>>, config: ThreadedConfig) -> ThreadedReport<M>
where
    M: Clone + Send + Labeled + 'static,
{
    let mut runtime = ThreadedRuntime::new(config);
    for actor in actors {
        runtime.add_actor(actor);
    }
    let report = runtime.run_to_completion();
    let elapsed = runtime.elapsed();
    ThreadedReport {
        actors: runtime.into_actors(),
        stats: report.stats,
        all_halted: report.all_halted,
        elapsed,
    }
}

struct RouterRun<M> {
    actors: BTreeMap<ProcessId, Box<dyn Actor<M>>>,
    stats: NetStats,
    all_halted: bool,
    stopped: bool,
    elapsed: Duration,
}

/// Spawns actor threads and drives the router plane until all actors
/// halt, `stop` (or the config's external stop flag) fires, or the wall
/// timeout expires. Dispatches on the effective shard count: one shard
/// runs the classic single-router loop on the driving thread, more run
/// [`run_router_sharded`].
fn run_router<M>(
    actors: Vec<Box<dyn Actor<M>>>,
    config: &ThreadedConfig,
    stop: &mut dyn FnMut() -> bool,
    tamper: &mut Option<Box<dyn Tamper<M>>>,
    preflight: Option<Arc<dyn Preflight<M>>>,
    recorder: Option<Arc<Recorder>>,
) -> RouterRun<M>
where
    M: Clone + Send + Labeled + 'static,
{
    if config.effective_router_shards() <= 1 {
        run_router_single(actors, config, stop, tamper, preflight, recorder)
    } else {
        run_router_sharded(actors, config, stop, tamper, preflight, recorder)
    }
}

/// The classic single-router loop (`router_shards = 1`): delay wheel,
/// stats, tamper, and halt tracking all on the driving thread.
fn run_router_single<M>(
    actors: Vec<Box<dyn Actor<M>>>,
    config: &ThreadedConfig,
    stop: &mut dyn FnMut() -> bool,
    tamper: &mut Option<Box<dyn Tamper<M>>>,
    preflight: Option<Arc<dyn Preflight<M>>>,
    recorder: Option<Arc<Recorder>>,
) -> RouterRun<M>
where
    M: Clone + Send + Labeled + 'static,
{
    let start = Instant::now();
    let (router_tx, router_rx) = unbounded::<RouterMsg<M>>();
    let shutdown = Arc::new(AtomicBool::new(false));

    // With a preflight installed, actor traffic flows through the stage
    // pool; sticky workers feed the same FIFO router channel, so each
    // sender's sends still precede its halt there.
    let unstaged = Outbox::Single(router_tx.clone());
    let (actor_outbox, stage_handles) = match preflight {
        Some(stage) => stage_front(&unstaged, stage, config, recorder.clone()),
        None => (unstaged.clone(), Vec::new()),
    };
    drop(unstaged);

    // Inbox per actor.
    let mut inboxes: BTreeMap<ProcessId, Sender<(ProcessId, M)>> = BTreeMap::new();
    let mut handles = Vec::new();
    let ids: Vec<ProcessId> = actors.iter().map(|a| a.id()).collect();

    for actor in actors {
        let id = actor.id();
        let (tx, rx) = bounded::<(ProcessId, M)>(4096);
        inboxes.insert(id, tx);
        let outbox = actor_outbox.clone();
        let shutdown = shutdown.clone();
        handles.push(thread::spawn(move || {
            actor_loop(actor, rx, outbox, shutdown, start)
        }));
    }
    drop(actor_outbox);
    drop(router_tx);

    // Router loop on this thread.
    let mut stats = NetStats::default();
    let mut heap: BinaryHeap<Pending<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut halted: BTreeMap<ProcessId, bool> = ids.iter().map(|&i| (i, false)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let deadline = start + config.wall_timeout;
    let mut stopped = false;
    let mut obs = RouterObs::default();

    loop {
        if halted.values().all(|&h| h) {
            break;
        }
        if stop()
            || config
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::SeqCst))
        {
            stopped = true;
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if recorder.is_some() {
            obs.inbox_depth.record(router_rx.len() as u64);
            obs.wheel_depth.record(heap.len() as u64);
        }
        // Deliver everything due.
        deliver_due(
            &mut heap,
            &mut seq,
            &inboxes,
            &mut stats,
            now,
            config,
            &mut obs.deferrals,
        );
        let wait = heap
            .peek()
            .map(|p| p.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(5))
            .min(deadline.saturating_duration_since(now))
            .min(Duration::from_millis(5));
        match router_rx.recv_timeout(wait) {
            Ok(RouterMsg::Send {
                from,
                to,
                msg,
                label,
            }) => {
                let payload = msg.payload_units();
                stats.record_send(label, payload);
                let mut tampered_extra = Duration::ZERO;
                if let Some(t) = tamper.as_mut() {
                    match t.disposition(from, to, label, start.elapsed().as_millis() as Time) {
                        Fate::Deliver => {}
                        Fate::Delay(ms) => tampered_extra = Duration::from_millis(ms),
                        Fate::Drop => {
                            stats.record_drop(payload);
                            continue;
                        }
                    }
                }
                let spread = config
                    .max_delay
                    .saturating_sub(config.min_delay)
                    .as_millis() as u64;
                let extra = if spread == 0 {
                    0
                } else {
                    rng.random_range(0..=spread)
                };
                let due = Instant::now()
                    + config.min_delay
                    + Duration::from_millis(extra)
                    + tampered_extra;
                seq += 1;
                heap.push(Pending {
                    due,
                    seq,
                    from,
                    to,
                    msg,
                });
            }
            Ok(RouterMsg::Halted(id)) => {
                halted.insert(id, true);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    let all_halted = halted.values().all(|&h| h);
    shutdown.store(true, Ordering::SeqCst);
    drop(inboxes);
    let mut out = BTreeMap::new();
    for handle in handles {
        let actor = handle.join().expect("actor thread panicked");
        out.insert(actor.id(), actor);
    }
    // Stage workers exit once every actor has dropped its staged outbox.
    for handle in stage_handles {
        handle.join().expect("stage worker panicked");
    }
    if let Some(rec) = &recorder {
        obs.merge_into(rec);
    }
    RouterRun {
        actors: out,
        stats,
        all_halted,
        stopped,
        elapsed: start.elapsed(),
    }
}

/// Pops every due entry off a shard's delay wheel and delivers it into the
/// destination inbox. Channels are reliable (Section II-A): a full inbox
/// defers delivery, never drops — the entry is re-pushed strictly later
/// than `now` so this loop terminates; the wall timeout bounds total
/// retrying. A disconnected receiver means the actor halted — dropping
/// mirrors the simulator discarding events for halted actors.
fn deliver_due<M: Labeled>(
    heap: &mut BinaryHeap<Pending<M>>,
    seq: &mut u64,
    inboxes: &BTreeMap<ProcessId, Sender<(ProcessId, M)>>,
    stats: &mut NetStats,
    now: Instant,
    config: &ThreadedConfig,
    deferred: &mut u64,
) {
    while heap.peek().is_some_and(|p| p.due <= now) {
        let p = heap.pop().expect("peeked");
        if let Some(tx) = inboxes.get(&p.to) {
            let payload = p.msg.payload_units();
            match tx.try_send((p.from, p.msg)) {
                Ok(()) => {
                    stats.messages_delivered += 1;
                    stats.record_delivery_payload(payload);
                }
                Err(TrySendError::Full((from, msg))) => {
                    *deferred += 1;
                    *seq += 1;
                    heap.push(Pending {
                        due: now + config.min_delay.max(Duration::from_millis(1)),
                        seq: *seq,
                        from,
                        to: p.to,
                        msg,
                    });
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

/// Everything one router shard needs to run: its channel, the full shard
/// sender table (for post-tamper forwarding), the actor inboxes, and —
/// on the tamper shard only — the tamper itself.
struct ShardTask<M> {
    index: usize,
    rx: Receiver<ShardMsg<M>>,
    peers: Vec<Sender<ShardMsg<M>>>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, M)>>,
    tamper: Option<Box<dyn Tamper<M>>>,
}

/// One router shard's loop: schedule sends through the delay wheel,
/// deliver due messages into inboxes, run the tamper (tamper shard only)
/// and forward post-disposition messages to their destination shard.
/// Returns the shard's private [`NetStats`] and observability
/// accumulators for the deterministic (shard-index order) merge.
/// `observe` gates the per-iteration depth sampling so unobserved runs
/// pay nothing beyond a branch.
fn shard_loop<M>(
    task: ShardTask<M>,
    config: &ThreadedConfig,
    shutdown: &AtomicBool,
    start: Instant,
    observe: bool,
) -> (NetStats, RouterObs)
where
    M: Clone + Send + Labeled + 'static,
{
    let ShardTask {
        index,
        rx,
        peers,
        inboxes,
        mut tamper,
    } = task;
    let shard_count = peers.len();
    let mut stats = NetStats::default();
    let mut heap: BinaryHeap<Pending<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Shard 0 keeps the configured seed; the others take decorrelated
    // streams along a golden-ratio stride.
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add((index as u64).wrapping_mul(SHARD_SEED_STRIDE)),
    );
    let spread = config
        .max_delay
        .saturating_sub(config.min_delay)
        .as_millis() as u64;
    let deadline = start + config.wall_timeout;
    let mut obs = RouterObs::default();

    let schedule = |heap: &mut BinaryHeap<Pending<M>>,
                    seq: &mut u64,
                    rng: &mut StdRng,
                    from: ProcessId,
                    to: ProcessId,
                    msg: M,
                    extra: Duration| {
        let jitter = if spread == 0 {
            0
        } else {
            rng.random_range(0..=spread)
        };
        *seq += 1;
        heap.push(Pending {
            due: Instant::now() + config.min_delay + Duration::from_millis(jitter) + extra,
            seq: *seq,
            from,
            to,
            msg,
        });
    };

    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Drain, then exit. In the single-router loop an actor's
            // final sends are recorded before its Halted is even
            // observable (same FIFO channel); here halts bypass the
            // shard channels, so the coordinator can raise shutdown
            // while trailing sends still sit in `rx`. Account for them —
            // record_send, tamper disposition, drop counting — so the
            // merged stats of an all-halted run equal what the single
            // router would have recorded. Nothing more gets *delivered*
            // (the run is over; pending heap entries are discarded on
            // either path), so only the accounting runs.
            while let Ok(shard_msg) = rx.try_recv() {
                // Forwards were already recorded by the tamper shard.
                let ShardMsg::Send {
                    from,
                    to,
                    msg,
                    label,
                } = shard_msg
                else {
                    continue;
                };
                let payload = msg.payload_units();
                stats.record_send(label, payload);
                if let Some(t) = tamper.as_mut() {
                    if let Fate::Drop =
                        t.disposition(from, to, label, start.elapsed().as_millis() as Time)
                    {
                        stats.record_drop(payload);
                    }
                }
            }
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if observe {
            obs.inbox_depth.record(rx.len() as u64);
            obs.wheel_depth.record(heap.len() as u64);
        }
        deliver_due(
            &mut heap,
            &mut seq,
            &inboxes,
            &mut stats,
            now,
            config,
            &mut obs.deferrals,
        );
        let wait = heap
            .peek()
            .map(|p| p.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(5))
            .min(deadline.saturating_duration_since(now))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(wait) {
            Ok(ShardMsg::Send {
                from,
                to,
                msg,
                label,
            }) => {
                let payload = msg.payload_units();
                stats.record_send(label, payload);
                let mut extra = Duration::ZERO;
                if let Some(t) = tamper.as_mut() {
                    match t.disposition(from, to, label, start.elapsed().as_millis() as Time) {
                        Fate::Deliver => {}
                        Fate::Delay(ms) => extra = Duration::from_millis(ms),
                        Fate::Drop => {
                            stats.record_drop(payload);
                            continue;
                        }
                    }
                    // Tamper shard: hand surviving messages to their
                    // destination's shard for delay scheduling.
                    let dest = shard_of(to, shard_count);
                    if dest != index {
                        let _ = peers[dest].send(ShardMsg::Forward {
                            from,
                            to,
                            msg,
                            extra,
                        });
                        continue;
                    }
                }
                schedule(&mut heap, &mut seq, &mut rng, from, to, msg, extra);
            }
            Ok(ShardMsg::Forward {
                from,
                to,
                msg,
                extra,
            }) => {
                schedule(&mut heap, &mut seq, &mut rng, from, to, msg, extra);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (stats, obs)
}

/// The sharded router plane (`router_shards >= 2`): N shard threads own
/// the delay wheels and stats; the driving thread coordinates halt
/// tracking, the stop condition, and the deadline, then merges shard
/// stats in index order.
fn run_router_sharded<M>(
    actors: Vec<Box<dyn Actor<M>>>,
    config: &ThreadedConfig,
    stop: &mut dyn FnMut() -> bool,
    tamper: &mut Option<Box<dyn Tamper<M>>>,
    preflight: Option<Arc<dyn Preflight<M>>>,
    recorder: Option<Arc<Recorder>>,
) -> RouterRun<M>
where
    M: Clone + Send + Labeled + 'static,
{
    let shard_count = config.effective_router_shards();
    let start = Instant::now();
    let shutdown = Arc::new(AtomicBool::new(false));
    let (halt_tx, halt_rx) = unbounded::<ProcessId>();

    let mut shard_txs = Vec::with_capacity(shard_count);
    let mut shard_rxs = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let (tx, rx) = unbounded::<ShardMsg<M>>();
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    let shard_txs = Arc::new(shard_txs);

    // Inbox per actor, shared with every shard (each shard only delivers
    // to the destinations hashed onto it, but the tamper shard may own
    // any destination).
    let mut inboxes: BTreeMap<ProcessId, Sender<(ProcessId, M)>> = BTreeMap::new();
    let mut actor_handles = Vec::new();
    let ids: Vec<ProcessId> = actors.iter().map(|a| a.id()).collect();
    let tamper_shard = tamper.is_some().then_some(0);

    // With a preflight installed, actor traffic (sends *and* halts) flows
    // through the stage pool; a sender's halt rides its sticky worker, so
    // when the coordinator observes it, every pre-halt send has already
    // reached the shard channels — the existing shutdown drain then
    // accounts for anything still queued there.
    let unstaged = Outbox::Sharded {
        shards: shard_txs.clone(),
        tamper_shard,
        halt: halt_tx.clone(),
    };
    let (actor_outbox, stage_handles) = match preflight {
        Some(stage) => stage_front(&unstaged, stage, config, recorder.clone()),
        None => (unstaged.clone(), Vec::new()),
    };
    drop(unstaged);

    let mut actor_rxs = Vec::new();
    for actor in &actors {
        let (tx, rx) = bounded::<(ProcessId, M)>(4096);
        inboxes.insert(actor.id(), tx);
        actor_rxs.push(rx);
    }
    for (actor, rx) in actors.into_iter().zip(actor_rxs) {
        let outbox = actor_outbox.clone();
        let shutdown = shutdown.clone();
        actor_handles.push(thread::spawn(move || {
            actor_loop(actor, rx, outbox, shutdown, start)
        }));
    }
    drop(actor_outbox);
    drop(halt_tx);

    let mut shard_handles = Vec::with_capacity(shard_count);
    for (index, rx) in shard_rxs.into_iter().enumerate() {
        let task = ShardTask {
            index,
            rx,
            peers: shard_txs.as_ref().clone(),
            inboxes: inboxes.clone(),
            // Only shard 0 runs the tamper (serialized, single state).
            tamper: if index == 0 { tamper.take() } else { None },
        };
        let config = config.clone();
        let shutdown = shutdown.clone();
        let observe = recorder.is_some();
        shard_handles.push(thread::spawn(move || {
            shard_loop(task, &config, &shutdown, start, observe)
        }));
    }
    drop(shard_txs);

    // Coordinator loop on the driving thread: halt tracking, stop
    // condition, deadline.
    let mut halted: BTreeMap<ProcessId, bool> = ids.iter().map(|&i| (i, false)).collect();
    let deadline = start + config.wall_timeout;
    let mut stopped = false;
    loop {
        if halted.values().all(|&h| h) {
            break;
        }
        if stop()
            || config
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::SeqCst))
        {
            stopped = true;
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        match halt_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(id) => {
                halted.insert(id, true);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    let all_halted = halted.values().all(|&h| h);
    shutdown.store(true, Ordering::SeqCst);
    // Merge shard stats (and shard obs) in index order: deterministic
    // given the per-shard outcomes, and conserving every counter (see
    // `NetStats::merge`, `Histogram::merge`).
    let mut stats = NetStats::default();
    for handle in shard_handles {
        let (shard_stats, shard_obs) = handle.join().expect("router shard panicked");
        stats.merge(&shard_stats);
        if let Some(rec) = &recorder {
            shard_obs.merge_into(rec);
        }
    }
    drop(inboxes);
    let mut out = BTreeMap::new();
    for handle in actor_handles {
        let actor = handle.join().expect("actor thread panicked");
        out.insert(actor.id(), actor);
    }
    // Stage workers exit once every actor has dropped its staged outbox.
    for handle in stage_handles {
        handle.join().expect("stage worker panicked");
    }
    RouterRun {
        actors: out,
        stats,
        all_halted,
        stopped,
        elapsed: start.elapsed(),
    }
}

fn actor_loop<M>(
    mut actor: Box<dyn Actor<M>>,
    inbox: Receiver<(ProcessId, M)>,
    router: Outbox<M>,
    shutdown: Arc<AtomicBool>,
    start: Instant,
) -> Box<dyn Actor<M>>
where
    M: Clone + Send + Labeled + 'static,
{
    let id = actor.id();
    let mut timers: BinaryHeap<(std::cmp::Reverse<Time>, TimerKind)> = BinaryHeap::new();
    let now_ms = |start: Instant| -> Time { start.elapsed().as_millis() as Time };

    let mut halted = false;
    {
        let mut ctx = Context::new(now_ms(start), id);
        actor.on_start(&mut ctx);
        halted = apply(&mut timers, &router, id, ctx, now_ms(start)) || halted;
    }

    while !halted && !shutdown.load(Ordering::SeqCst) {
        let now = now_ms(start);
        // Fire due timers first.
        let mut fired = false;
        while timers
            .peek()
            .is_some_and(|&(std::cmp::Reverse(at), _)| at <= now)
        {
            let (_, kind) = timers.pop().expect("peeked");
            let mut ctx = Context::new(now, id);
            actor.on_timer(kind, &mut ctx);
            halted = apply(&mut timers, &router, id, ctx, now) || halted;
            fired = true;
            if halted {
                break;
            }
        }
        if halted {
            break;
        }
        if fired {
            // Fairness: an actor whose per-tick work exceeds its own timer
            // period would otherwise loop on due timers forever and never
            // drain its inbox — sends keep flowing out while every reply
            // rots undelivered (a livelock the family sweeps hit with
            // 10 ms discovery ticks and debug-build candidate searches).
            // Drain a bounded batch of queued messages between firings so
            // neither timers nor messages can starve the other.
            let mut drained = 0;
            while drained < 64 && !halted {
                match inbox.try_recv() {
                    Ok((from, msg)) => {
                        let mut ctx = Context::new(now_ms(start), id);
                        actor.on_message(from, msg, &mut ctx);
                        halted = apply(&mut timers, &router, id, ctx, now_ms(start)) || halted;
                        drained += 1;
                    }
                    Err(_) => break,
                }
            }
            if halted {
                break;
            }
            continue;
        }
        let wait = timers
            .peek()
            .map(|&(std::cmp::Reverse(at), _)| Duration::from_millis(at.saturating_sub(now)))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        match inbox.recv_timeout(wait) {
            Ok((from, msg)) => {
                let mut ctx = Context::new(now_ms(start), id);
                actor.on_message(from, msg, &mut ctx);
                halted = apply(&mut timers, &router, id, ctx, now_ms(start)) || halted;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if halted {
        router.halted(id);
    }
    actor
}

/// Applies buffered context effects; returns whether the actor halted.
fn apply<M>(
    timers: &mut BinaryHeap<(std::cmp::Reverse<Time>, TimerKind)>,
    router: &Outbox<M>,
    id: ProcessId,
    ctx: Context<M>,
    now: Time,
) -> bool
where
    M: Clone + Send + Labeled + 'static,
{
    let Context {
        sends,
        timers: new_timers,
        halted,
        ..
    } = ctx;
    for (to, msg) in sends {
        router.send(id, to, msg);
    }
    for (kind, delay) in new_timers {
        timers.push((std::cmp::Reverse(now + delay), kind));
    }
    halted
}

/// Shared decision board: a tiny utility actors can use (via `Arc`) to
/// publish values for cross-thread assertions in tests and examples.
#[derive(Debug, Default, Clone)]
pub struct Board<T> {
    inner: Arc<Mutex<BTreeMap<ProcessId, T>>>,
}

impl<T: Clone> Board<T> {
    /// Creates an empty board.
    pub fn new() -> Self {
        Board {
            inner: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Publishes `value` for process `id`.
    pub fn publish(&self, id: ProcessId, value: T) {
        self.inner.lock().insert(id, value);
    }

    /// Snapshot of all published values.
    pub fn snapshot(&self) -> BTreeMap<ProcessId, T> {
        self.inner.lock().clone()
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    enum Msg {
        Ping,
        Pong,
    }
    impl Labeled for Msg {
        fn label(&self) -> &'static str {
            match self {
                Msg::Ping => "PING",
                Msg::Pong => "PONG",
            }
        }
        fn payload_units(&self) -> u64 {
            match self {
                Msg::Ping => 3,
                Msg::Pong => 1,
            }
        }
    }

    struct Node {
        id: ProcessId,
        peer: ProcessId,
        initiator: bool,
        board: Board<bool>,
    }

    impl Actor<Msg> for Node {
        fn id(&self) -> ProcessId {
            self.id
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping);
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<Msg>) {
            match msg {
                Msg::Ping => {
                    ctx.send(from, Msg::Pong);
                    self.board.publish(self.id, true);
                    ctx.halt();
                }
                Msg::Pong => {
                    self.board.publish(self.id, true);
                    ctx.halt();
                }
            }
        }
    }

    fn pingpong_actors(board: &Board<bool>) -> Vec<Box<dyn Actor<Msg>>> {
        vec![
            Box::new(Node {
                id: ProcessId::new(1),
                peer: ProcessId::new(2),
                initiator: true,
                board: board.clone(),
            }),
            Box::new(Node {
                id: ProcessId::new(2),
                peer: ProcessId::new(1),
                initiator: false,
                board: board.clone(),
            }),
        ]
    }

    #[test]
    fn threaded_pingpong() {
        let board = Board::new();
        let report = run_threaded(
            pingpong_actors(&board),
            ThreadedConfig {
                wall_timeout: Duration::from_secs(5),
                router_shards: 1,
                ..ThreadedConfig::default()
            },
        );
        assert!(report.all_halted, "{report:?}");
        assert_eq!(board.len(), 2);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.label_count("PONG"), 1);
    }

    #[test]
    fn threaded_pingpong_on_every_shard_count() {
        for shards in [2, 3, 4] {
            let board = Board::new();
            let report = run_threaded(
                pingpong_actors(&board),
                ThreadedConfig {
                    wall_timeout: Duration::from_secs(5),
                    router_shards: shards,
                    ..ThreadedConfig::default()
                },
            );
            assert!(report.all_halted, "shards={shards}: {report:?}");
            assert_eq!(board.len(), 2, "shards={shards}");
            // Merged shard stats must equal what one router would count.
            assert_eq!(report.stats.label_count("PING"), 1, "shards={shards}");
            assert_eq!(report.stats.label_count("PONG"), 1, "shards={shards}");
            assert_eq!(report.stats.messages_sent, 2, "shards={shards}");
            assert_eq!(report.stats.messages_delivered, 2, "shards={shards}");
            // Delivered payload is counted once per delivery and conserved
            // across the shard merge.
            assert_eq!(report.stats.payload_delivered_units, 4, "shards={shards}");
        }
    }

    #[test]
    fn staged_pingpong_runs_preflight_and_preserves_stats() {
        use std::sync::atomic::AtomicU64;

        struct CountStage(Arc<AtomicU64>);
        impl Preflight<Msg> for CountStage {
            fn preflight(&self, _from: ProcessId, _to: ProcessId, _msg: &Msg) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Single and sharded router planes, pinned and auto pool sizes.
        // (1, 0) resolves to one auto worker on every box — the inline
        // degenerate stage — so the preflight-visibility and stats
        // assertions cover that path deterministically too.
        for (shards, workers) in [(1, 0), (1, 1), (1, 3), (4, 2), (4, 0)] {
            let seen = Arc::new(AtomicU64::new(0));
            let board = Board::new();
            let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
                wall_timeout: Duration::from_secs(5),
                router_shards: shards,
                verify_workers: workers,
                ..ThreadedConfig::default()
            });
            for actor in pingpong_actors(&board) {
                rt.add_actor(actor);
            }
            ThreadedRuntime::set_preflight(&mut rt, Arc::new(CountStage(seen.clone())));
            let report = rt.run_to_completion();
            assert!(
                report.all_halted,
                "shards={shards} workers={workers}: {report:?}"
            );
            // The stage saw every send exactly once, and the router-plane
            // stats are unchanged by staging.
            assert_eq!(seen.load(Ordering::Relaxed), 2, "workers={workers}");
            assert_eq!(report.stats.messages_sent, 2, "workers={workers}");
            assert_eq!(report.stats.messages_delivered, 2, "workers={workers}");
            assert_eq!(report.stats.label_count("PING"), 1);
            assert_eq!(report.stats.label_count("PONG"), 1);
            assert_eq!(report.stats.payload_delivered_units, 4);
        }
    }

    #[test]
    fn selective_stage_bypasses_unwanted_messages() {
        use std::sync::atomic::AtomicU64;

        // Wants only PING: the PONG reply must bypass the worker pool and
        // still deliver, with the router-plane stats unchanged.
        struct PingStage(Arc<AtomicU64>);
        impl Preflight<Msg> for PingStage {
            fn preflight(&self, _from: ProcessId, _to: ProcessId, msg: &Msg) {
                assert!(matches!(msg, Msg::Ping), "bypassed message reached stage");
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn wants(&self, msg: &Msg) -> bool {
                matches!(msg, Msg::Ping)
            }
        }

        for (shards, workers) in [(1, 1), (4, 2)] {
            let seen = Arc::new(AtomicU64::new(0));
            let board = Board::new();
            let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
                wall_timeout: Duration::from_secs(5),
                router_shards: shards,
                verify_workers: workers,
                ..ThreadedConfig::default()
            });
            for actor in pingpong_actors(&board) {
                rt.add_actor(actor);
            }
            ThreadedRuntime::set_preflight(&mut rt, Arc::new(PingStage(seen.clone())));
            let report = rt.run_to_completion();
            assert!(
                report.all_halted,
                "shards={shards} workers={workers}: {report:?}"
            );
            assert_eq!(seen.load(Ordering::Relaxed), 1, "stage saw only the PING");
            assert_eq!(report.stats.messages_sent, 2);
            assert_eq!(report.stats.messages_delivered, 2);
            assert_eq!(report.stats.payload_delivered_units, 4);
        }
    }

    #[test]
    fn verify_workers_auto_tracks_router_shards() {
        let config = ThreadedConfig::default();
        assert_eq!(
            config.effective_verify_workers(),
            config.effective_router_shards()
        );
        let pinned = ThreadedConfig {
            verify_workers: 7,
            ..ThreadedConfig::default()
        };
        assert_eq!(pinned.effective_verify_workers(), 7);
    }

    #[test]
    fn auto_shards_resolve_to_cores_capped_at_four() {
        let config = ThreadedConfig::default();
        assert_eq!(config.router_shards, 0);
        let effective = config.effective_router_shards();
        assert!((1..=4).contains(&effective), "effective={effective}");
        let pinned = ThreadedConfig {
            router_shards: 3,
            ..ThreadedConfig::default()
        };
        assert_eq!(pinned.effective_router_shards(), 3);
    }

    #[test]
    fn sharded_tamper_drop_is_counted_once() {
        struct DropPings;
        impl Tamper<Msg> for DropPings {
            fn disposition(
                &mut self,
                _: ProcessId,
                _: ProcessId,
                label: &'static str,
                _: Time,
            ) -> Fate {
                if label == "PING" {
                    Fate::Drop
                } else {
                    Fate::Deliver
                }
            }
        }
        let board = Board::new();
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
            wall_timeout: Duration::from_millis(300),
            router_shards: 4,
            ..ThreadedConfig::default()
        });
        for actor in pingpong_actors(&board) {
            rt.add_actor(actor);
        }
        ThreadedRuntime::set_tamper(&mut rt, Box::new(DropPings));
        let report = rt.run_to_completion();
        // The PING is swallowed on the tamper shard, so nobody ever
        // replies or halts; the run ends at the wall timeout.
        assert!(!report.all_halted);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.messages_dropped, 1);
        assert_eq!(report.stats.messages_delivered, 0);
    }

    #[test]
    fn wall_timeout_terminates_stuck_actors() {
        struct Stuck {
            id: ProcessId,
        }
        impl Actor<Msg> for Stuck {
            fn id(&self) -> ProcessId {
                self.id
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<Msg>) {}
        }
        for shards in [1, 2] {
            let report = run_threaded(
                vec![Box::new(Stuck {
                    id: ProcessId::new(1),
                }) as Box<dyn Actor<Msg>>],
                ThreadedConfig {
                    wall_timeout: Duration::from_millis(200),
                    router_shards: shards,
                    ..ThreadedConfig::default()
                },
            );
            assert!(!report.all_halted);
            assert!(report.elapsed >= Duration::from_millis(200));
        }
    }

    #[test]
    fn timers_fire_in_threaded_runtime() {
        struct TimerNode {
            id: ProcessId,
            fired: u32,
        }
        impl Actor<Msg> for TimerNode {
            fn id(&self) -> ProcessId {
                self.id
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.set_timer(1, 10);
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<Msg>) {}
            fn on_timer(&mut self, _: TimerKind, ctx: &mut Context<Msg>) {
                self.fired += 1;
                if self.fired >= 3 {
                    ctx.halt();
                } else {
                    ctx.set_timer(1, 10);
                }
            }
        }
        for shards in [1, 2] {
            let report = run_threaded(
                vec![Box::new(TimerNode {
                    id: ProcessId::new(1),
                    fired: 0,
                }) as Box<dyn Actor<Msg>>],
                ThreadedConfig {
                    wall_timeout: Duration::from_secs(5),
                    router_shards: shards,
                    ..ThreadedConfig::default()
                },
            );
            assert!(report.all_halted);
        }
    }

    #[test]
    fn runtime_second_run_returns_recorded_report() {
        use crate::runtime::Runtime;
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
            wall_timeout: Duration::from_secs(5),
            ..ThreadedConfig::default()
        });
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            board: Board::new(),
        }));
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: Board::new(),
        }));
        let first = rt.run_to_completion();
        let second = rt.run_to_completion();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "before the run")]
    fn runtime_rejects_actor_registration_after_run() {
        use crate::runtime::Runtime;
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
            wall_timeout: Duration::from_millis(50),
            ..ThreadedConfig::default()
        });
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: false,
            board: Board::new(),
        }));
        rt.run_to_completion();
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: Board::new(),
        }));
    }

    #[test]
    fn board_snapshot() {
        let board: Board<u32> = Board::new();
        assert!(board.is_empty());
        board.publish(ProcessId::new(1), 10);
        board.publish(ProcessId::new(2), 20);
        let snap = board.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&ProcessId::new(1)], 10);
    }
}
