//! Real-socket runtime: the same actors over loopback (or LAN) TCP.
//!
//! The third [`Runtime`] substrate. Where the simulator models channels as
//! an event queue and the threaded runtime as crossbeam channels, this one
//! opens genuine TCP connections and speaks the versioned wire format of
//! [`cupft_wire`]: every send — including sends between two actors hosted
//! by the *same* runtime — is encoded, framed
//! ([`cupft_wire::frame`]), written to a socket, read back, and decoded
//! before delivery. A single-process socket run therefore exercises the
//! full codec path end to end, and a multi-process run (one runtime per OS
//! process, peers registered via [`Runtime::register_peer`] with
//! [`PeerAddr::Tcp`] addresses) is a real distributed deployment of the
//! protocol stack.
//!
//! # Topology
//!
//! Each runtime owns one [`TcpListener`], bound at construction so the
//! address can be published *before* the run starts (the multi-process
//! driver collects every node's address, then distributes the complete
//! peer book). Outbound traffic runs through a per-destination-address
//! connection pool: one writer thread per remote address, owning the
//! `TcpStream` and reconnecting with bounded retries on failure. Inbound
//! traffic runs through an accept loop spawning one reader thread per
//! connection; readers decode `from ‖ to ‖ msg` frames and deliver into
//! the destination actor's inbox.
//!
//! # Tamper discipline
//!
//! A [`Tamper`], when installed, is consulted **at send time, on the
//! sending actor's thread, under one shared lock** — so it sees each
//! message exactly once, with one `&mut` state, and per-sender emission
//! order is exactly the order the actor emitted (an actor's sends are
//! sequential on its own thread). This is the same observable contract the
//! threaded runtime's serialized tamper shard provides. `Fate::Drop`
//! discards the frame before it touches a socket; `Fate::Delay` routes the
//! already-encoded frame through a delay wheel thread that forwards it to
//! the connection pool when due.
//!
//! Like the threaded runtime, socket interleaving is wall-clock real and
//! inherently nondeterministic — use [`crate::sim::Simulation`] for
//! reproducible experiments and this runtime to validate that the
//! protocols survive a real network stack and codec.

use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use cupft_graph::ProcessId;
use cupft_wire::frame::{frame, read_frame, FrameIoError};
use cupft_wire::{Decode, Encode, Reader};
use parking_lot::Mutex;

use crate::actor::{Actor, Context, Labeled, TimerKind};
use crate::runtime::{PeerAddr, Runtime, RuntimeReport};
use crate::stats::NetStats;
use crate::tamper::{Fate, Tamper};
use crate::Time;

/// Configuration for the socket runtime.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Address the runtime's listener binds to. Port 0 (the default,
    /// `127.0.0.1:0`) asks the OS for an ephemeral port; read the actual
    /// address back with [`SocketRuntime::local_addr`].
    pub bind: SocketAddr,
    /// Wall-clock budget for the run.
    pub wall_timeout: Duration,
    /// External stop signal, same contract as
    /// [`crate::ThreadedConfig::stop`].
    pub stop: Option<Arc<AtomicBool>>,
    /// Reconnect attempts a writer makes per frame before giving the
    /// frame up (connections are retried afresh for the next frame).
    pub connect_retries: u32,
    /// Base backoff between reconnect attempts (scaled linearly by the
    /// attempt number).
    pub retry_backoff: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            wall_timeout: Duration::from_secs(10),
            stop: None,
            connect_retries: 20,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// Send-side shared state: the tamper and the stats, under one lock so a
/// send's accounting and its disposition are atomic and the tamper keeps
/// single-`&mut` semantics across all sending threads.
struct Gate<M> {
    tamper: Option<Box<dyn Tamper<M>>>,
    stats: NetStats,
}

/// A tamper-delayed, already-encoded frame waiting on the delay wheel.
struct Delayed {
    due: Instant,
    seq: u64,
    addr: SocketAddr,
    bytes: Vec<u8>,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we want earliest due first
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Per-destination-address writer pool. One writer thread per remote
/// address owns the `TcpStream`, writes pre-framed bytes, and reconnects
/// with bounded linear backoff when a write fails.
struct ConnPool {
    conns: Mutex<HashMap<SocketAddr, Sender<Vec<u8>>>>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    shutdown: Arc<AtomicBool>,
    retries: u32,
    backoff: Duration,
}

impl ConnPool {
    fn new(shutdown: Arc<AtomicBool>, config: &SocketConfig) -> Self {
        ConnPool {
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            shutdown,
            retries: config.connect_retries,
            backoff: config.retry_backoff,
        }
    }

    /// Enqueues a pre-framed message for `addr`, spawning the writer on
    /// first use.
    fn send_to(&self, addr: SocketAddr, bytes: Vec<u8>) {
        let tx = {
            let mut conns = self.conns.lock();
            match conns.get(&addr) {
                Some(tx) => tx.clone(),
                None => {
                    let (tx, rx) = unbounded::<Vec<u8>>();
                    let shutdown = self.shutdown.clone();
                    let retries = self.retries;
                    let backoff = self.backoff;
                    self.handles.lock().push(thread::spawn(move || {
                        writer_loop(addr, rx, shutdown, retries, backoff)
                    }));
                    conns.insert(addr, tx.clone());
                    tx
                }
            }
        };
        let _ = tx.send(bytes);
    }

    /// Closes every connection: drops the writer senders (each writer
    /// drains its queue, then exits and closes its stream) and joins the
    /// writer threads.
    fn close(&self) {
        self.conns.lock().clear();
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            handle.join().expect("socket writer panicked");
        }
    }
}

/// One writer thread's loop: write each queued frame, reconnecting with
/// bounded linear backoff on failure. A frame whose retries are exhausted
/// is discarded — the wall timeout bounds how long a run can spend
/// retrying, and the threaded runtime likewise discards in-flight
/// messages at shutdown. Exits (flushing the queue) when the pool drops
/// its sender.
fn writer_loop(
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    shutdown: Arc<AtomicBool>,
    retries: u32,
    backoff: Duration,
) {
    let mut stream: Option<TcpStream> = None;
    while let Ok(bytes) = rx.recv() {
        let mut attempt = 0u32;
        loop {
            if stream.is_none() {
                if let Ok(s) = TcpStream::connect(addr) {
                    let _ = s.set_nodelay(true);
                    stream = Some(s);
                }
            }
            if let Some(s) = stream.as_mut() {
                if s.write_all(&bytes).is_ok() {
                    break;
                }
                stream = None;
            }
            if attempt >= retries || shutdown.load(Ordering::SeqCst) {
                break;
            }
            attempt += 1;
            thread::sleep(backoff * attempt);
        }
    }
    if let Some(s) = stream {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// The delay wheel thread: holds tamper-delayed frames until due, then
/// forwards them to the connection pool. Pending frames are discarded
/// when the runtime shuts down (same as the threaded router discarding
/// its delay wheel).
fn delay_loop(rx: Receiver<Delayed>, pool: Arc<ConnPool>) {
    let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|d| d.due <= now) {
            let d = heap.pop().expect("peeked");
            pool.send_to(d.addr, d.bytes);
        }
        let wait = heap
            .peek()
            .map(|d| d.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(d) => heap.push(d),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The actor-side send handle: encode, account, tamper, route.
struct SocketTx<M> {
    gate: Arc<Mutex<Gate<M>>>,
    routes: Arc<HashMap<ProcessId, SocketAddr>>,
    pool: Arc<ConnPool>,
    delay: Sender<Delayed>,
    delay_seq: Arc<Mutex<u64>>,
    halt: Sender<ProcessId>,
    start: Instant,
}

impl<M> Clone for SocketTx<M> {
    fn clone(&self) -> Self {
        SocketTx {
            gate: self.gate.clone(),
            routes: self.routes.clone(),
            pool: self.pool.clone(),
            delay: self.delay.clone(),
            delay_seq: self.delay_seq.clone(),
            halt: self.halt.clone(),
            start: self.start,
        }
    }
}

impl<M: Labeled + Encode> SocketTx<M> {
    fn send(&self, from: ProcessId, to: ProcessId, msg: M) {
        let label = msg.label();
        let payload = msg.payload_units();
        // Accounting and disposition are atomic under the gate lock; the
        // sending thread is the actor's own, so per-sender emission order
        // at the tamper is the actor's program order.
        let extra =
            {
                let mut gate = self.gate.lock();
                gate.stats.record_send(label, payload);
                match gate.tamper.as_mut().map(|t| {
                    t.disposition(from, to, label, self.start.elapsed().as_millis() as Time)
                }) {
                    None | Some(Fate::Deliver) => Duration::ZERO,
                    Some(Fate::Delay(ms)) => Duration::from_millis(ms),
                    Some(Fate::Drop) => {
                        gate.stats.record_drop(payload);
                        return;
                    }
                }
            };
        // Sends to processes the route table does not know go nowhere —
        // the socket analogue of the simulator discarding events for
        // unknown actors.
        let Some(&addr) = self.routes.get(&to) else {
            return;
        };
        let mut inner = Vec::new();
        from.encode(&mut inner);
        to.encode(&mut inner);
        msg.encode(&mut inner);
        let bytes = frame(&inner);
        if extra.is_zero() {
            self.pool.send_to(addr, bytes);
        } else {
            let seq = {
                let mut s = self.delay_seq.lock();
                *s += 1;
                *s
            };
            let _ = self.delay.send(Delayed {
                due: Instant::now() + extra,
                seq,
                addr,
                bytes,
            });
        }
    }

    fn halted(&self, id: ProcessId) {
        let _ = self.halt.send(id);
    }
}

/// Receive-side dispatch: decode a frame's `from ‖ to ‖ msg` payload and
/// deliver into the destination inbox.
struct Dispatch<M> {
    inboxes: HashMap<ProcessId, Sender<(ProcessId, M)>>,
    gate: Arc<Mutex<Gate<M>>>,
}

impl<M: Labeled + Decode> Dispatch<M> {
    /// Returns `Err` on a malformed payload, which drops the connection —
    /// a peer that desyncs the stream cannot be resynchronized.
    fn dispatch(&self, payload: &[u8]) -> Result<(), cupft_wire::WireError> {
        let mut r = Reader::new(payload);
        let from = ProcessId::decode(&mut r)?;
        let to = ProcessId::decode(&mut r)?;
        let msg = M::decode(&mut r)?;
        r.finish()?;
        if let Some(tx) = self.inboxes.get(&to) {
            let payload_units = msg.payload_units();
            if tx.send((from, msg)).is_ok() {
                let mut gate = self.gate.lock();
                gate.stats.messages_delivered += 1;
                gate.stats.record_delivery_payload(payload_units);
            }
        }
        Ok(())
    }
}

/// One reader thread's loop: framed reads until clean EOF, a stream
/// error, or a malformed frame.
fn reader_loop<M: Labeled + Decode>(stream: TcpStream, dispatch: Arc<Dispatch<M>>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                if dispatch.dispatch(&payload).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            Err(FrameIoError::Io(_)) | Err(FrameIoError::Wire(_)) => break,
        }
    }
}

/// The accept loop: polls the (nonblocking) listener, spawning a reader
/// thread per inbound connection; keeps a clone of every accepted stream
/// so shutdown can force-close them and join the readers even if a peer
/// never closes its end.
struct AcceptTask<M> {
    listener: TcpListener,
    dispatch: Arc<Dispatch<M>>,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
}

fn accept_loop<M: Labeled + Decode + Send + 'static>(
    task: AcceptTask<M>,
) -> Vec<thread::JoinHandle<()>> {
    let mut readers = Vec::new();
    task.listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    loop {
        if task.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match task.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).expect("stream blocking");
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    task.accepted.lock().push(clone);
                }
                let dispatch = task.dispatch.clone();
                readers.push(thread::spawn(move || reader_loop(stream, dispatch)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    readers
}

/// The real-socket [`Runtime`]: each actor on its own thread, every send
/// encoded and carried over TCP — loopback within one OS process, real
/// peers across processes via [`Runtime::register_peer`].
///
/// Lifecycle mirrors the trait contract: [`Runtime::add_actor`] (and
/// `register_peer`) before the run, one [`Runtime::run_until_stopped`],
/// then post-run inspection via [`Runtime::actor_as`]. A second run
/// request returns the recorded report unchanged.
pub struct SocketRuntime<M> {
    config: SocketConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    pending: Vec<Box<dyn Actor<M>>>,
    finished: BTreeMap<ProcessId, Box<dyn Actor<M>>>,
    book: HashMap<ProcessId, SocketAddr>,
    stats: NetStats,
    last_report: Option<RuntimeReport>,
    elapsed: Duration,
    tamper: Option<Box<dyn Tamper<M>>>,
}

impl<M> SocketRuntime<M> {
    /// Creates a runtime and binds its listener, so
    /// [`Self::local_addr`] is publishable before the run starts.
    pub fn new(config: SocketConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(config.bind)?;
        let local_addr = listener.local_addr()?;
        Ok(SocketRuntime {
            config,
            listener,
            local_addr,
            pending: Vec::new(),
            finished: BTreeMap::new(),
            book: HashMap::new(),
            stats: NetStats::default(),
            last_report: None,
            elapsed: Duration::ZERO,
            tamper: None,
        })
    }

    /// The actual bound address of this runtime's listener (resolves the
    /// ephemeral port when [`SocketConfig::bind`] used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wall-clock duration of the completed run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Consumes the runtime, returning the actors in their final states.
    pub fn into_actors(self) -> BTreeMap<ProcessId, Box<dyn Actor<M>>> {
        self.finished
    }
}

impl<M> Runtime<M> for SocketRuntime<M>
where
    M: Clone + Send + Labeled + Encode + Decode + 'static,
{
    fn name(&self) -> &'static str {
        "socket"
    }

    fn add_actor(&mut self, actor: Box<dyn Actor<M>>) {
        assert!(
            self.last_report.is_none(),
            "SocketRuntime actors must be registered before the run"
        );
        let id = actor.id();
        assert!(
            self.pending.iter().all(|a| a.id() != id),
            "duplicate actor {id}"
        );
        assert!(
            !self.book.contains_key(&id),
            "actor {id} already registered as a remote peer"
        );
        self.pending.push(actor);
    }

    fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>) {
        assert!(
            self.last_report.is_none(),
            "SocketRuntime tamper must be installed before the run"
        );
        self.tamper = Some(tamper);
    }

    fn register_peer(&mut self, id: ProcessId, addr: PeerAddr) {
        assert!(
            self.last_report.is_none(),
            "SocketRuntime peers must be registered before the run"
        );
        let PeerAddr::Tcp(addr) = addr else {
            panic!("socket runtime peers need TCP addresses, got {addr}");
        };
        assert!(
            self.pending.iter().all(|a| a.id() != id),
            "process {id} is a local actor, not a remote peer"
        );
        self.book.insert(id, addr);
    }

    fn addr_of(&self, id: ProcessId) -> Option<PeerAddr> {
        if self.pending.iter().any(|a| a.id() == id) || self.finished.contains_key(&id) {
            return Some(PeerAddr::Tcp(self.local_addr));
        }
        self.book.get(&id).map(|&addr| PeerAddr::Tcp(addr))
    }

    fn run_until_stopped(&mut self, stop: &mut dyn FnMut() -> bool) -> RuntimeReport {
        // Already ran: report the recorded outcome unchanged.
        if let Some(report) = &self.last_report {
            return report.clone();
        }
        let start = Instant::now();
        let shutdown = Arc::new(AtomicBool::new(false));
        let actors = std::mem::take(&mut self.pending);
        let ids: Vec<ProcessId> = actors.iter().map(|a| a.id()).collect();

        // Route table: local actors through our own listener (every send
        // rides TCP, so the codec is always exercised), remote peers from
        // the registered book.
        let mut routes: HashMap<ProcessId, SocketAddr> = self.book.clone();
        for &id in &ids {
            routes.insert(id, self.local_addr);
        }
        let routes = Arc::new(routes);

        let gate = Arc::new(Mutex::new(Gate {
            tamper: self.tamper.take(),
            stats: NetStats::default(),
        }));
        let pool = Arc::new(ConnPool::new(shutdown.clone(), &self.config));
        let (delay_tx, delay_rx) = unbounded::<Delayed>();
        let (halt_tx, halt_rx) = unbounded::<ProcessId>();

        let mut inboxes: HashMap<ProcessId, Sender<(ProcessId, M)>> = HashMap::new();
        let mut actor_rxs = Vec::new();
        for actor in &actors {
            let (tx, rx) = bounded::<(ProcessId, M)>(4096);
            inboxes.insert(actor.id(), tx);
            actor_rxs.push(rx);
        }
        let dispatch = Arc::new(Dispatch {
            inboxes,
            gate: gate.clone(),
        });

        let accepted = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let task = AcceptTask {
                listener: self.listener.try_clone().expect("listener clone"),
                dispatch: dispatch.clone(),
                shutdown: shutdown.clone(),
                accepted: accepted.clone(),
            };
            thread::spawn(move || accept_loop(task))
        };
        let delay_handle = {
            let pool = pool.clone();
            thread::spawn(move || delay_loop(delay_rx, pool))
        };

        let tx = SocketTx {
            gate: gate.clone(),
            routes,
            pool: pool.clone(),
            delay: delay_tx,
            delay_seq: Arc::new(Mutex::new(0)),
            halt: halt_tx,
            start,
        };
        let mut actor_handles = Vec::new();
        for (actor, rx) in actors.into_iter().zip(actor_rxs) {
            let tx = tx.clone();
            let shutdown = shutdown.clone();
            actor_handles.push(thread::spawn(move || {
                actor_loop(actor, rx, tx, shutdown, start)
            }));
        }
        drop(tx);

        // Coordinator: track local halts, the stop condition, and the
        // deadline. Remote peers are not ours to track — a multi-process
        // driver coordinates global completion out of band.
        let mut halted: BTreeMap<ProcessId, bool> = ids.iter().map(|&i| (i, false)).collect();
        let deadline = start + self.config.wall_timeout;
        let mut stopped = false;
        loop {
            if !halted.is_empty() && halted.values().all(|&h| h) {
                break;
            }
            if stop()
                || self
                    .config
                    .stop
                    .as_ref()
                    .is_some_and(|s| s.load(Ordering::SeqCst))
            {
                stopped = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            match halt_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(id) => {
                    halted.insert(id, true);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let all_halted = !halted.is_empty() && halted.values().all(|&h| h);

        // Shutdown: stop actors first (no new sends), retire the delay
        // wheel, close outbound connections, then force-close accepted
        // streams so readers unblock even if a remote never closes its
        // end, and join everything.
        shutdown.store(true, Ordering::SeqCst);
        for handle in actor_handles {
            let actor = handle.join().expect("socket actor panicked");
            self.finished.insert(actor.id(), actor);
        }
        drop(dispatch);
        pool.close();
        for stream in accepted.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let readers = accept_handle.join().expect("accept loop panicked");
        for reader in readers {
            reader.join().expect("socket reader panicked");
        }
        delay_handle.join().expect("delay wheel panicked");

        self.stats = gate.lock().stats.clone();
        self.elapsed = start.elapsed();
        let report = RuntimeReport {
            all_halted,
            stopped,
            end_time: self.elapsed.as_millis() as Time,
            events: self.stats.messages_delivered,
            stats: self.stats.clone(),
            obs: None,
        };
        self.last_report = Some(report.clone());
        report
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn actor_ids(&self) -> Vec<ProcessId> {
        let mut ids: Vec<ProcessId> = self.finished.keys().copied().collect();
        ids.extend(self.pending.iter().map(|a| a.id()));
        ids.sort_unstable();
        ids
    }

    fn actor_dyn(&self, id: ProcessId) -> Option<&dyn Actor<M>> {
        self.finished.get(&id).map(|b| b.as_ref())
    }
}

/// The actor loop, mirroring the threaded runtime's: fire due timers,
/// drain bounded message batches between firings so neither can starve
/// the other, and notify the coordinator on halt.
fn actor_loop<M>(
    mut actor: Box<dyn Actor<M>>,
    inbox: Receiver<(ProcessId, M)>,
    tx: SocketTx<M>,
    shutdown: Arc<AtomicBool>,
    start: Instant,
) -> Box<dyn Actor<M>>
where
    M: Clone + Send + Labeled + Encode + 'static,
{
    let id = actor.id();
    let mut timers: BinaryHeap<(std::cmp::Reverse<Time>, TimerKind)> = BinaryHeap::new();
    let now_ms = |start: Instant| -> Time { start.elapsed().as_millis() as Time };

    let mut halted = false;
    {
        let mut ctx = Context::new(now_ms(start), id);
        actor.on_start(&mut ctx);
        halted = apply(&mut timers, &tx, id, ctx, now_ms(start)) || halted;
    }

    while !halted && !shutdown.load(Ordering::SeqCst) {
        let now = now_ms(start);
        let mut fired = false;
        while timers
            .peek()
            .is_some_and(|&(std::cmp::Reverse(at), _)| at <= now)
        {
            let (_, kind) = timers.pop().expect("peeked");
            let mut ctx = Context::new(now, id);
            actor.on_timer(kind, &mut ctx);
            halted = apply(&mut timers, &tx, id, ctx, now) || halted;
            fired = true;
            if halted {
                break;
            }
        }
        if halted {
            break;
        }
        if fired {
            let mut drained = 0;
            while drained < 64 && !halted {
                match inbox.try_recv() {
                    Ok((from, msg)) => {
                        let mut ctx = Context::new(now_ms(start), id);
                        actor.on_message(from, msg, &mut ctx);
                        halted = apply(&mut timers, &tx, id, ctx, now_ms(start)) || halted;
                        drained += 1;
                    }
                    Err(_) => break,
                }
            }
            if halted {
                break;
            }
            continue;
        }
        let wait = timers
            .peek()
            .map(|&(std::cmp::Reverse(at), _)| Duration::from_millis(at.saturating_sub(now)))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        match inbox.recv_timeout(wait) {
            Ok((from, msg)) => {
                let mut ctx = Context::new(now_ms(start), id);
                actor.on_message(from, msg, &mut ctx);
                halted = apply(&mut timers, &tx, id, ctx, now_ms(start)) || halted;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if halted {
        tx.halted(id);
    }
    actor
}

/// Applies buffered context effects; returns whether the actor halted.
fn apply<M>(
    timers: &mut BinaryHeap<(std::cmp::Reverse<Time>, TimerKind)>,
    tx: &SocketTx<M>,
    id: ProcessId,
    ctx: Context<M>,
    now: Time,
) -> bool
where
    M: Clone + Send + Labeled + Encode + 'static,
{
    let (sends, new_timers, halted) = ctx.into_effects();
    for (to, msg) in sends {
        tx.send(id, to, msg);
    }
    for (kind, delay) in new_timers {
        timers.push((std::cmp::Reverse(now + delay), kind));
    }
    halted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::Board;
    use cupft_wire::WireError;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Msg {
        Ping,
        Pong,
    }
    impl Labeled for Msg {
        fn label(&self) -> &'static str {
            match self {
                Msg::Ping => "PING",
                Msg::Pong => "PONG",
            }
        }
    }
    impl Encode for Msg {
        fn encode(&self, out: &mut Vec<u8>) {
            out.push(match self {
                Msg::Ping => 0,
                Msg::Pong => 1,
            });
        }
    }
    impl Decode for Msg {
        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            match r.u8()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Pong),
                tag => Err(WireError::BadTag { ty: "Msg", tag }),
            }
        }
    }

    struct Node {
        id: ProcessId,
        peer: ProcessId,
        initiator: bool,
        board: Board<bool>,
        got_reply: bool,
    }

    impl Actor<Msg> for Node {
        fn id(&self) -> ProcessId {
            self.id
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping);
            } else {
                // Replier never halts on its own; poll a long timer so the
                // loop stays responsive to shutdown.
                ctx.set_timer(1, 10_000);
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<Msg>) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => {
                    self.got_reply = true;
                    self.board.publish(self.id, true);
                    ctx.halt();
                }
            }
        }
    }

    fn pingpong_runtime() -> (SocketRuntime<Msg>, Board<bool>) {
        let board = Board::new();
        let mut rt: SocketRuntime<Msg> = SocketRuntime::new(SocketConfig::default()).expect("bind");
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            board: board.clone(),
            got_reply: false,
        }));
        rt.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: board.clone(),
            got_reply: false,
        }));
        (rt, board)
    }

    #[test]
    fn pingpong_over_loopback_tcp() {
        let (mut rt, board) = pingpong_runtime();
        assert_eq!(Runtime::<Msg>::name(&rt), "socket");
        let report = rt.run_until_stopped(&mut || !board.is_empty());
        assert!(report.stopped || report.all_halted);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.label_count("PONG"), 1);
        let initiator: &Node = rt.actor_as(ProcessId::new(1)).expect("inspectable");
        assert!(initiator.got_reply);
        // Second run request returns the recorded report unchanged.
        let again = rt.run_to_completion();
        assert_eq!(again, report);
    }

    #[test]
    fn tamper_drop_starves_the_exchange() {
        struct DropPings;
        impl Tamper<Msg> for DropPings {
            fn disposition(
                &mut self,
                _from: ProcessId,
                _to: ProcessId,
                label: &'static str,
                _now: Time,
            ) -> Fate {
                if label == "PING" {
                    Fate::Drop
                } else {
                    Fate::Deliver
                }
            }
        }
        let (mut rt, board) = pingpong_runtime();
        rt.config.wall_timeout = Duration::from_millis(400);
        rt.set_tamper(Box::new(DropPings));
        let report = rt.run_until_stopped(&mut || !board.is_empty());
        assert!(!report.stopped);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.messages_dropped, 1);
        assert_eq!(report.stats.label_count("PONG"), 0);
        let initiator: &Node = rt.actor_as(ProcessId::new(1)).expect("inspectable");
        assert!(!initiator.got_reply);
    }

    #[test]
    fn tamper_delay_defers_but_delivers() {
        struct DelayPings;
        impl Tamper<Msg> for DelayPings {
            fn disposition(
                &mut self,
                _from: ProcessId,
                _to: ProcessId,
                label: &'static str,
                _now: Time,
            ) -> Fate {
                if label == "PING" {
                    Fate::Delay(120)
                } else {
                    Fate::Deliver
                }
            }
        }
        let (mut rt, board) = pingpong_runtime();
        rt.set_tamper(Box::new(DelayPings));
        let started = Instant::now();
        let report = rt.run_until_stopped(&mut || !board.is_empty());
        assert!(report.stopped || report.all_halted);
        assert!(started.elapsed() >= Duration::from_millis(120));
        assert_eq!(report.stats.label_count("PONG"), 1);
    }

    #[test]
    fn addressing_reports_tcp_for_local_and_registered_peers() {
        let (mut rt, _board) = pingpong_runtime();
        let own = rt.local_addr();
        assert_eq!(
            rt.addr_of(ProcessId::new(1)),
            Some(PeerAddr::Tcp(own)),
            "local actors are reachable at our listener"
        );
        let remote: SocketAddr = "127.0.0.1:45678".parse().unwrap();
        rt.register_peer(ProcessId::new(9), PeerAddr::Tcp(remote));
        assert_eq!(rt.addr_of(ProcessId::new(9)), Some(PeerAddr::Tcp(remote)));
        assert_eq!(rt.addr_of(ProcessId::new(77)), None);
    }

    #[test]
    #[should_panic(expected = "socket runtime peers need TCP addresses")]
    fn registering_a_local_addr_panics() {
        let (mut rt, _board) = pingpong_runtime();
        rt.register_peer(ProcessId::new(9), PeerAddr::Local(ProcessId::new(9)));
    }

    #[test]
    fn two_runtimes_in_one_process_talk_over_registered_peers() {
        // The multi-process shape, in-process: two SocketRuntimes, each
        // hosting one actor, cross-registered by TCP address.
        let board = Board::new();
        let mut a: SocketRuntime<Msg> = SocketRuntime::new(SocketConfig::default()).expect("bind");
        let mut b: SocketRuntime<Msg> = SocketRuntime::new(SocketConfig::default()).expect("bind");
        a.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            board: board.clone(),
            got_reply: false,
        }));
        b.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: board.clone(),
            got_reply: false,
        }));
        a.register_peer(ProcessId::new(2), PeerAddr::Tcp(b.local_addr()));
        b.register_peer(ProcessId::new(1), PeerAddr::Tcp(a.local_addr()));
        let board_b = board.clone();
        let handle = thread::spawn(move || {
            b.run_until_stopped(&mut || !board_b.is_empty());
        });
        let report = a.run_until_stopped(&mut || !board.is_empty());
        handle.join().expect("runtime b panicked");
        assert!(report.stopped || report.all_halted);
        let initiator: &Node = a.actor_as(ProcessId::new(1)).expect("inspectable");
        assert!(initiator.got_reply);
    }
}
