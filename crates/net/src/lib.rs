//! Partially synchronous message substrate for BFT-CUP / BFT-CUPFT.
//!
//! The paper's system model (Section II-A): a finite set of processes with
//! unique IDs communicating over *authenticated reliable point-to-point
//! channels* under **partial synchrony** — for every execution there is a
//! Global Stabilization Time (GST) and a bound `δ` such that messages
//! between correct processes sent after GST are delivered within `δ`;
//! before GST, delays are arbitrary (but finite: channels are reliable).
//!
//! Three interchangeable runtimes execute the same [`Actor`] code behind
//! the shared [`Runtime`] trait:
//!
//! * [`sim::Simulation`] — a deterministic discrete-event simulator with an
//!   explicit GST, seeded adversarial pre-GST delays, and scripted delay
//!   policies (needed to reproduce the indistinguishability executions of
//!   Theorem 7 exactly);
//! * [`threaded::ThreadedRuntime`] — an OS-thread runtime using channel
//!   inboxes with randomized real-time delays applied by a **sharded
//!   router plane** ([`ThreadedConfig::router_shards`],
//!   destination-hashed, per-shard delay wheels and stats merged
//!   deterministically), for wall-clock validation
//!   ([`threaded::run_threaded`] remains as a by-value convenience);
//! * [`socket::SocketRuntime`] — a real-socket runtime carrying every
//!   send over TCP in the versioned [`cupft_wire`] frame format, with
//!   peers addressed by opaque [`PeerAddr`]s — loopback within one OS
//!   process, or genuinely distributed across processes via
//!   [`Runtime::register_peer`].
//!
//! Experiment code written against `Runtime` — like
//! `cupft_core::run_scenario_on` and the `ScenarioSuite` batch engine —
//! runs unchanged on either substrate.
//!
//! # Example
//!
//! ```
//! use cupft_net::{Actor, Context, SimConfig};
//! use cupft_net::sim::Simulation;
//! use cupft_graph::ProcessId;
//!
//! #[derive(Clone)]
//! enum Ping { Ping, Pong }
//! impl cupft_net::Labeled for Ping {
//!     fn label(&self) -> &'static str {
//!         match self { Ping::Ping => "PING", Ping::Pong => "PONG" }
//!     }
//! }
//!
//! struct Node { id: ProcessId, peer: ProcessId, got_pong: bool }
//! impl Actor<Ping> for Node {
//!     fn id(&self) -> ProcessId { self.id }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn on_start(&mut self, ctx: &mut Context<Ping>) {
//!         ctx.send(self.peer, Ping::Ping);
//!     }
//!     fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Context<Ping>) {
//!         match msg {
//!             Ping::Ping => ctx.send(from, Ping::Pong),
//!             Ping::Pong => { self.got_pong = true; ctx.halt(); }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! sim.add_actor(Box::new(Node { id: ProcessId::new(1), peer: ProcessId::new(2), got_pong: false }));
//! sim.add_actor(Box::new(Node { id: ProcessId::new(2), peer: ProcessId::new(1), got_pong: false }));
//! let report = sim.run();
//! assert!(report.all_halted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod delay;
pub mod runtime;
pub mod sim;
pub mod socket;
pub mod stage;
mod stats;
pub mod tamper;
pub mod threaded;

pub use actor::{Actor, Context, Labeled, TimerKind};
pub use delay::DelayPolicy;
pub use runtime::{PeerAddr, Runtime, RuntimeReport};
pub use sim::{RunReport, SimConfig, Simulation, TraceEntry};
pub use socket::{SocketConfig, SocketRuntime};
pub use stage::Preflight;
pub use stats::NetStats;
pub use tamper::{Fate, NoTamper, Tamper};
pub use threaded::{ThreadedConfig, ThreadedRuntime};

/// Simulated time, in abstract ticks.
pub type Time = u64;
