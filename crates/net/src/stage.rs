//! The stateless/stateful stage split: pre-delivery message processing.
//!
//! A [`Preflight`] is the *stateless* half of a pipeline (the
//! `StatelessContext` of oskr-style replica architectures): pure,
//! side-effect-free-with-respect-to-the-actor work — signature
//! verification, fingerprint computation, bundle unpacking — that can run
//! anywhere between a message leaving its sender and reaching its
//! receiver. All observable effects must flow through *shared memo
//! structures* (e.g. a concurrent verification-verdict pool) that the
//! stateful actor would have populated itself on the serial path.
//!
//! That contract is what makes the split runtime-agnostic:
//!
//! * the **threaded runtime** runs preflights on a real worker-stage pool
//!   between the actor outboxes and the router plane, so crypto runs off
//!   the protocol threads;
//! * the **simulator** invokes the preflight *synchronously* at the
//!   delivery event, immediately before `Actor::on_message`. No events
//!   are injected and no ordering changes, so traces and fingerprints are
//!   byte-identical with and without a preflight installed — the
//!   determinism requirement for shrinker and replay artifacts.
//!
//! Because a preflight only warms memos the actor consults anyway,
//! skipping it (or racing it with delivery) can never change a protocol
//! decision — only who pays for the stateless work. That is exactly the
//! oracle reading of certificate verification in Algorithm 1: the
//! verdict of a record is a pure function of its bytes, independent of
//! when or where it is computed.

use cupft_graph::ProcessId;

/// A stateless pre-delivery processing hook (see the [module docs](self)
/// for the contract).
///
/// `Send + Sync` because the threaded runtime shares one preflight across
/// its stage workers; implementations keep their state in concurrent
/// shared structures (or none at all).
pub trait Preflight<M>: Send + Sync {
    /// Processes `msg` before it is delivered to `to`.
    ///
    /// Must be idempotent and must not assume it runs at most once per
    /// message — a runtime is free to invoke it zero, one, or many times
    /// per delivery on any thread.
    fn preflight(&self, from: ProcessId, to: ProcessId, msg: &M);

    /// Whether this preflight has any work to do for `msg`. Must be a
    /// pure function of the message.
    ///
    /// Runtimes use this to keep uninteresting traffic off the stage
    /// entirely: the threaded runtime routes `wants == false` messages
    /// straight to the router plane instead of through the sender's
    /// sticky stage worker, so a chatty protocol only pays the stage hop
    /// for the messages that carry stage work (e.g. `SETPDS` certificate
    /// bundles, not `GETPDS` polls or consensus votes). The bypass
    /// relaxes per-sender ordering *between* wanted and un-wanted
    /// messages — order among each class is preserved, and a halt still
    /// trails every send — which the [`Preflight`] contract already
    /// permits: skipping or reordering stateless work can never change a
    /// protocol decision. The default wants everything.
    fn wants(&self, msg: &M) -> bool {
        let _ = msg;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Counter(Arc<AtomicU64>);
    impl Preflight<u32> for Counter {
        fn preflight(&self, _from: ProcessId, _to: ProcessId, msg: &u32) {
            self.0.fetch_add(u64::from(*msg), Ordering::Relaxed);
        }
    }

    #[test]
    fn preflight_is_object_safe_and_shareable() {
        let seen = Arc::new(AtomicU64::new(0));
        let stage: Arc<dyn Preflight<u32>> = Arc::new(Counter(seen.clone()));
        let clone = stage.clone();
        clone.preflight(ProcessId::new(1), ProcessId::new(2), &5);
        stage.preflight(ProcessId::new(2), ProcessId::new(1), &7);
        assert_eq!(seen.load(Ordering::Relaxed), 12);
    }
}
