//! The actor abstraction shared by the simulator and the threaded runtime.

use cupft_graph::ProcessId;

use crate::Time;

/// A timer identifier chosen by the actor (e.g. "discovery tick" = 1,
/// "view-change timeout" = 2).
pub type TimerKind = u64;

/// Message types carried by the runtimes implement `Labeled` so the
/// substrate can report per-kind message counts (used by the
/// message-complexity benches).
pub trait Labeled {
    /// A short, static label naming the message kind (e.g. `"GETPDS"`).
    fn label(&self) -> &'static str;

    /// The protocol-defined payload weight this message carries — for
    /// discovery, the number of PD certificates in a `SETPDS` (control
    /// traffic weighs 0). Runtimes sum it into
    /// [`crate::NetStats::payload_units`], which is what the delta-gossip
    /// benches compare: message *counts* barely move when replies shrink,
    /// payload units collapse.
    fn payload_units(&self) -> u64 {
        0
    }
}

/// A deterministic protocol participant.
///
/// Actors are single-threaded state machines: the runtime calls exactly one
/// of the `on_*` hooks at a time and the actor reacts by recording effects
/// (sends, timers, halting) on the [`Context`]. This makes the same actor
/// code runnable on the discrete-event simulator and on OS threads.
pub trait Actor<M>: Send {
    /// This actor's process identifier.
    fn id(&self) -> ProcessId;

    /// Recovers the concrete type from a trait object (for post-run state
    /// inspection). Implement as `fn as_any(&self) -> &dyn Any { self }`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Invoked once before any message delivery.
    fn on_start(&mut self, ctx: &mut Context<M>) {
        let _ = ctx;
    }

    /// Invoked for each delivered message.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>);

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerKind, ctx: &mut Context<M>) {
        let _ = (timer, ctx);
    }
}

/// The effect recorder handed to actor hooks.
///
/// All effects are buffered and applied by the runtime after the hook
/// returns, which keeps actors free of runtime details and keeps the
/// simulator deterministic.
#[derive(Debug)]
pub struct Context<M> {
    now: Time,
    self_id: ProcessId,
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers: Vec<(TimerKind, Time)>,
    pub(crate) halted: bool,
}

impl<M> Context<M> {
    /// Creates a fresh context (used by the built-in runtimes, and by
    /// tests or custom runtimes driving actors manually).
    pub fn new(now: Time, self_id: ProcessId) -> Self {
        Context {
            now,
            self_id,
            sends: Vec::new(),
            timers: Vec::new(),
            halted: false,
        }
    }

    /// The sends queued so far (inspection for tests/custom runtimes).
    pub fn queued_sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }

    /// The timers queued so far.
    pub fn queued_timers(&self) -> &[(TimerKind, Time)] {
        &self.timers
    }

    /// Whether the actor has requested to halt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Consumes the context, returning `(sends, timers, halted)` — for
    /// custom runtimes.
    #[allow(clippy::type_complexity)]
    pub fn into_effects(self) -> (Vec<(ProcessId, M)>, Vec<(TimerKind, Time)>, bool) {
        (self.sends, self.timers, self.halted)
    }

    /// The current time (simulated ticks or milliseconds since start,
    /// depending on runtime).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The executing actor's own ID.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Sends `msg` to `to` over the reliable channel.
    ///
    /// Sending to oneself is allowed and delivered like any other message.
    /// The knowledge restriction of the model — a process may only send to
    /// processes it knows — is the *protocol's* responsibility; the
    /// communication network itself is complete (Section II-C).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends a clone of `msg` to every recipient.
    pub fn send_all<I>(&mut self, recipients: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
        M: Clone,
    {
        for to in recipients {
            self.send(to, msg.clone());
        }
    }

    /// Schedules [`Actor::on_timer`] with `kind` to fire after `delay`
    /// ticks (minimum 1).
    pub fn set_timer(&mut self, kind: TimerKind, delay: Time) {
        self.timers.push((kind, delay.max(1)));
    }

    /// Marks this actor as halted: it receives no further events.
    ///
    /// Runtimes use the all-halted condition to terminate runs early.
    pub fn halt(&mut self) {
        self.halted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_effects() {
        let mut ctx: Context<u32> = Context::new(5, ProcessId::new(1));
        assert_eq!(ctx.now(), 5);
        assert_eq!(ctx.self_id(), ProcessId::new(1));
        ctx.send(ProcessId::new(2), 42);
        ctx.send_all([ProcessId::new(3), ProcessId::new(4)], 7);
        ctx.set_timer(1, 0);
        ctx.halt();
        assert_eq!(ctx.sends.len(), 3);
        assert_eq!(ctx.timers, vec![(1, 1)]); // delay clamped to >= 1
        assert!(ctx.halted);
    }
}
