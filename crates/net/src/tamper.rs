//! The message-interception hook: a pluggable network-level adversary.
//!
//! The [`Tamper`] layer sits between an actor's `send` and the substrate's
//! delivery scheduling. It sees every message *once, at send time*, in the
//! deterministic order the sending actor emitted it, and rules on its
//! [`Fate`]: deliver normally, deliver with extra delay (reordering), or
//! drop. Both substrates honor the same trait — install a tamper with
//! [`crate::Runtime::set_tamper`] and the identical adversarial schedule
//! logic runs on the simulator and on OS threads.
//!
//! Division of labor with the other adversary layers:
//!
//! * [`crate::DelayPolicy`] is the *baseline* scheduling adversary (GST,
//!   `δ`); the tamper's extra delay is added on top of the policy delay.
//! * A `Tamper` never sees message *contents* (only endpoints and the
//!   [`crate::Labeled`] label) — content-level misbehavior (equivocation,
//!   fabricated records) belongs to Byzantine endpoint strategies, not the
//!   network.
//! * Dropping is only within the paper's model (§II-A: reliable channels)
//!   when the sender or receiver is faulty — dropping correct→correct
//!   traffic models a *stronger* adversary than the paper's. The layer
//!   does not police this; experiment code is responsible for staying in
//!   (or deliberately stepping out of) the model.
//!
//! Implementations must be deterministic functions of their own state and
//! the call sequence; on the simulator the call sequence itself is
//! deterministic, so seeded tampers replay exactly.
//!
//! On the threaded runtime's sharded router plane the tamper is
//! serialized through a single dedicated shard: regardless of
//! [`crate::ThreadedConfig::router_shards`], one `&mut` tamper state sees
//! every message once, at send time, with each sender's emissions in
//! order — so a `TamperSpec`'s observable semantics do not change with
//! the shard count.

use cupft_graph::ProcessId;

use crate::Time;

/// What the interception layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver under the substrate's normal delay policy.
    Deliver,
    /// Deliver, but add this many ticks (simulator) / milliseconds
    /// (threaded runtime) on top of the policy delay.
    Delay(Time),
    /// Never deliver. Counted in [`crate::NetStats::messages_dropped`].
    Drop,
}

/// A network-level adversary consulted once per send.
///
/// `now` is the substrate's current time (simulated ticks or elapsed
/// milliseconds). State is `&mut` so tampers can count, window, or run
/// their own seeded RNG.
pub trait Tamper<M>: Send {
    /// Rules on the fate of one message.
    fn disposition(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        now: Time,
    ) -> Fate;
}

/// A tamper that delivers everything untouched (the identity element —
/// useful as a default or chain terminator).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTamper;

impl<M> Tamper<M> for NoTamper {
    fn disposition(&mut self, _: ProcessId, _: ProcessId, _: &'static str, _: Time) -> Fate {
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tamper_delivers() {
        let mut t = NoTamper;
        assert_eq!(
            Tamper::<u32>::disposition(&mut t, ProcessId::new(1), ProcessId::new(2), "X", 0),
            Fate::Deliver
        );
    }
}
