//! Deterministic discrete-event simulator.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use cupft_graph::ProcessId;
use cupft_obs::{ObsReport, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, Context, Labeled, TimerKind};
use crate::delay::DelayPolicy;
use crate::runtime::{Runtime, RuntimeReport};
use crate::stage::Preflight;
use crate::stats::NetStats;
use crate::tamper::{Fate, Tamper};
use crate::Time;

/// Configuration for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; identical seeds replay identical executions.
    pub seed: u64,
    /// Hard stop: no event later than this is processed.
    pub max_time: Time,
    /// The delay policy (the scheduling adversary).
    pub policy: DelayPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            max_time: 100_000,
            policy: DelayPolicy::default(),
        }
    }
}

/// One delivered-event record in a simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Delivery time.
    pub time: Time,
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Message label (from [`Labeled`]).
    pub label: &'static str,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time when the run stopped.
    pub end_time: Time,
    /// Whether every actor halted (vs. hitting `max_time` / event
    /// exhaustion with live actors).
    pub all_halted: bool,
    /// Number of events processed.
    pub events: u64,
    /// Network statistics.
    pub stats: NetStats,
    /// Observability snapshot, present when a recorder was installed via
    /// [`Simulation::set_recorder`]. In the simulator every value in the
    /// snapshot is in the virtual clock domain and therefore a pure
    /// function of configuration + seed.
    pub obs: Option<ObsReport>,
}

enum EventKind<M> {
    Deliver { from: ProcessId, msg: M },
    Timer { kind: TimerKind },
    Start,
}

struct Event<M> {
    time: Time,
    seq: u64,
    target: ProcessId,
    kind: EventKind<M>,
}

/// The discrete-event simulator.
///
/// Events are processed in `(time, sequence)` order, making executions a
/// pure function of the configuration, the actor set, and the seed. The
/// determinism is load-bearing: the Theorem 7 reproduction compares whole
/// executions across systems A, B, and AB.
pub struct Simulation<M> {
    actors: BTreeMap<ProcessId, Box<dyn Actor<M>>>,
    halted: BTreeMap<ProcessId, bool>,
    queue: BinaryHeap<Reverse<OrderedEvent<M>>>,
    now: Time,
    seq: u64,
    events_processed: u64,
    rng: StdRng,
    config: SimConfig,
    stats: NetStats,
    trace: Option<Vec<TraceEntry>>,
    tamper: Option<Box<dyn Tamper<M>>>,
    preflight: Option<Arc<dyn Preflight<M>>>,
    recorder: Option<Arc<Recorder>>,
    /// The virtual tick currently being profiled and how many events it
    /// has processed so far (only maintained while a recorder is set).
    tick_now: Time,
    tick_events: u64,
}

struct OrderedEvent<M>(Event<M>);

impl<M> PartialEq for OrderedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<M> Eq for OrderedEvent<M> {}
impl<M> PartialOrd for OrderedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for OrderedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

impl<M: Clone + Labeled + 'static> Simulation<M> {
    /// Creates a simulation with no actors.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            actors: BTreeMap::new(),
            halted: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            events_processed: 0,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: NetStats::default(),
            trace: None,
            tamper: None,
            preflight: None,
            recorder: None,
            tick_now: 0,
            tick_events: 0,
        }
    }

    /// Installs a message-interception layer (see [`crate::tamper`]).
    /// With no tamper installed the simulation behaves exactly as before —
    /// the RNG stream and event order are untouched.
    pub fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>) {
        self.tamper = Some(tamper);
    }

    /// Installs a stateless pre-delivery stage (see [`crate::stage`]) as a
    /// deterministic *virtual* stage: it runs synchronously at the
    /// delivery event, immediately before `on_message`. No events are
    /// injected and no ordering changes, so event order, traces, and
    /// [`Self::trace_fingerprint`] are byte-identical with and without a
    /// preflight installed.
    pub fn set_preflight(&mut self, preflight: Arc<dyn Preflight<M>>) {
        self.preflight = Some(preflight);
    }

    /// Installs an observability recorder and switches its clock to the
    /// **virtual** domain: every timestamp the recorder hands out from
    /// here on is a simulated tick, so observed traces are byte-identical
    /// across same-seed runs. The simulator feeds the recorder its
    /// event-loop profile (events per tick, queue depth, tick advance —
    /// the ROADMAP Open-Item-5 surface); observation never touches the
    /// RNG stream, the event order, or the stats.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        recorder.clock().set_virtual();
        self.recorder = Some(recorder);
    }

    /// Enables delivery tracing: every delivered message is recorded as a
    /// [`TraceEntry`]. Costs memory proportional to message volume; off by
    /// default.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded trace (empty unless [`Self::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// A stable fingerprint of the trace (FNV-1a over entries), for
    /// determinism assertions: identical seeds must produce identical
    /// fingerprints.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        for e in self.trace() {
            mix(&e.time.to_be_bytes());
            mix(&e.from.raw().to_be_bytes());
            mix(&e.to.raw().to_be_bytes());
            mix(e.label.as_bytes());
        }
        hash
    }

    /// Registers an actor and schedules its `on_start` at time 0.
    ///
    /// # Panics
    ///
    /// Panics if an actor with the same ID is already registered.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) {
        let id = actor.id();
        assert!(
            self.actors.insert(id, actor).is_none(),
            "duplicate actor {id}"
        );
        self.halted.insert(id, false);
        let seq = self.next_seq();
        self.queue.push(Reverse(OrderedEvent(Event {
            time: 0,
            seq,
            target: id,
            kind: EventKind::Start,
        })));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Immutable access to an actor (for assertions between steps).
    pub fn actor(&self, id: ProcessId) -> Option<&dyn Actor<M>> {
        self.actors.get(&id).map(|b| b.as_ref())
    }

    /// Downcast access to an actor's concrete type.
    pub fn actor_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.actors
            .get(&id)
            .and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// Whether the given actor has halted.
    pub fn is_halted(&self, id: ProcessId) -> bool {
        self.halted.get(&id).copied().unwrap_or(false)
    }

    /// Processes the next event. Returns `false` when the queue is empty,
    /// the time horizon is exceeded, or every actor has halted.
    pub fn step(&mut self) -> bool {
        if self.halted.values().all(|&h| h) {
            return false;
        }
        let Some(Reverse(OrderedEvent(event))) = self.queue.pop() else {
            return false;
        };
        if event.time > self.config.max_time {
            // push back so a later horizon extension could resume
            self.queue.push(Reverse(OrderedEvent(event)));
            return false;
        }
        self.now = self.now.max(event.time);
        self.events_processed += 1;
        if let Some(rec) = &self.recorder {
            if self.now != self.tick_now {
                // A new distinct virtual instant: flush the profile of
                // the tick just drained. All three series are virtual
                // quantities, so the profile is deterministic.
                rec.hist_record("sim_events_per_tick", self.tick_events);
                rec.hist_record("sim_tick_advance", self.now - self.tick_now);
                rec.counter_add("sim_ticks", 1);
                rec.clock().advance_virtual(self.now);
                self.tick_now = self.now;
                self.tick_events = 0;
            }
            self.tick_events += 1;
            rec.hist_record("sim_queue_depth", self.queue.len() as u64);
        }

        if self.halted.get(&event.target).copied().unwrap_or(true) {
            return true; // drop events for halted/unknown actors
        }
        let mut ctx = Context::new(self.now, event.target);
        {
            let actor = self
                .actors
                .get_mut(&event.target)
                .expect("event target registered");
            match event.kind {
                EventKind::Start => actor.on_start(&mut ctx),
                EventKind::Deliver { from, msg } => {
                    self.stats.messages_delivered += 1;
                    self.stats.record_delivery_payload(msg.payload_units());
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            time: self.now,
                            from,
                            to: event.target,
                            label: msg.label(),
                        });
                    }
                    if let Some(stage) = &self.preflight {
                        if let Some(rec) = &self.recorder {
                            if stage.wants(&msg) {
                                // The virtual stage runs synchronously at
                                // the delivery event, so queue wait is
                                // zero *by construction* — recorded so the
                                // histogram exists deterministically and
                                // reads identically to the threaded one.
                                rec.counter_add("stage_bundles", 1);
                                rec.hist_record("stage_queue_wait_us", 0);
                            }
                        }
                        stage.preflight(from, event.target, &msg);
                    }
                    actor.on_message(from, msg, &mut ctx);
                }
                EventKind::Timer { kind } => {
                    self.stats.timers_fired += 1;
                    actor.on_timer(kind, &mut ctx);
                }
            }
        }
        self.apply_effects(event.target, ctx);
        true
    }

    fn apply_effects(&mut self, source: ProcessId, ctx: Context<M>) {
        let Context {
            sends,
            timers,
            halted,
            ..
        } = ctx;
        for (to, msg) in sends {
            self.stats.record_send(msg.label(), msg.payload_units());
            let mut delay = self
                .config
                .policy
                .delay(source, to, self.now, &mut self.rng);
            if let Some(tamper) = &mut self.tamper {
                match tamper.disposition(source, to, msg.label(), self.now) {
                    Fate::Deliver => {}
                    Fate::Delay(extra) => delay += extra,
                    Fate::Drop => {
                        self.stats.record_drop(msg.payload_units());
                        continue;
                    }
                }
            }
            let seq = self.next_seq();
            self.queue.push(Reverse(OrderedEvent(Event {
                time: self.now + delay,
                seq,
                target: to,
                kind: EventKind::Deliver { from: source, msg },
            })));
        }
        for (kind, delay) in timers {
            let seq = self.next_seq();
            self.queue.push(Reverse(OrderedEvent(Event {
                time: self.now + delay,
                seq,
                target: source,
                kind: EventKind::Timer { kind },
            })));
        }
        if halted {
            self.halted.insert(source, true);
        }
    }

    /// Flushes the in-progress tick profile and snapshots the recorder,
    /// if one is installed. Called when a report is built; resets the
    /// partial-tick accumulator so a resumed (phased) run never
    /// double-counts the boundary tick.
    fn obs_snapshot(&mut self) -> Option<ObsReport> {
        let rec = self.recorder.as_ref()?;
        if self.tick_events > 0 {
            rec.hist_record("sim_events_per_tick", self.tick_events);
            rec.counter_add("sim_ticks", 1);
            self.tick_events = 0;
            self.tick_now = self.now;
        }
        rec.clock().advance_virtual(self.now);
        Some(rec.snapshot())
    }

    /// Runs until no progress is possible (all halted, horizon reached, or
    /// no events left).
    pub fn run(&mut self) -> RunReport {
        while self.step() {}
        let obs = self.obs_snapshot();
        RunReport {
            end_time: self.now,
            all_halted: self.halted.values().all(|&h| h),
            events: self.events_processed,
            stats: self.stats.clone(),
            obs,
        }
    }

    /// Runs until `predicate` returns true (checked after each event) or no
    /// progress is possible. Returns whether the predicate fired.
    pub fn run_until<F>(&mut self, mut predicate: F) -> bool
    where
        F: FnMut(&Simulation<M>) -> bool,
    {
        loop {
            if predicate(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// Consumes the simulation, returning the actors for inspection.
    pub fn into_actors(self) -> BTreeMap<ProcessId, Box<dyn Actor<M>>> {
        self.actors
    }
}

impl<M: Clone + Labeled + 'static> Runtime<M> for Simulation<M> {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn add_actor(&mut self, actor: Box<dyn Actor<M>>) {
        Simulation::add_actor(self, actor);
    }

    fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>) {
        Simulation::set_tamper(self, tamper);
    }

    fn set_preflight(&mut self, preflight: Arc<dyn Preflight<M>>) {
        Simulation::set_preflight(self, preflight);
    }

    fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        Simulation::set_recorder(self, recorder);
    }

    fn run_until_stopped(&mut self, stop: &mut dyn FnMut() -> bool) -> RuntimeReport {
        let stopped = self.run_until(|_| stop());
        let obs = self.obs_snapshot();
        RuntimeReport {
            all_halted: self.halted.values().all(|&h| h),
            stopped,
            end_time: self.now,
            events: self.events_processed,
            stats: self.stats.clone(),
            obs,
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn actor_ids(&self) -> Vec<ProcessId> {
        self.actors.keys().copied().collect()
    }

    fn actor_dyn(&self, id: ProcessId) -> Option<&dyn Actor<M>> {
        self.actors.get(&id).map(|b| b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Labeled for Msg {
        fn label(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "PING",
                Msg::Pong(_) => "PONG",
            }
        }
    }

    struct PingPong {
        id: ProcessId,
        peer: ProcessId,
        initiator: bool,
        rounds_left: u32,
        finished_at: Option<Time>,
    }

    impl Actor<Msg> for PingPong {
        fn id(&self) -> ProcessId {
            self.id
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping(self.rounds_left));
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<Msg>) {
            match msg {
                Msg::Ping(n) => {
                    ctx.send(from, Msg::Pong(n));
                    if n == 0 {
                        ctx.halt();
                    }
                }
                Msg::Pong(n) => {
                    if n == 0 {
                        self.finished_at = Some(ctx.now());
                        ctx.halt();
                    } else {
                        ctx.send(from, Msg::Ping(n - 1));
                    }
                }
            }
        }
    }

    fn pingpong_sim(seed: u64) -> Simulation<Msg> {
        let mut sim = Simulation::new(SimConfig {
            seed,
            max_time: 1_000_000,
            policy: DelayPolicy::PartialSynchrony {
                gst: 100,
                delta: 10,
                pre_gst_max: 70,
            },
        });
        sim.add_actor(Box::new(PingPong {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            rounds_left: 5,
            finished_at: None,
        }));
        sim.add_actor(Box::new(PingPong {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            rounds_left: 0,
            finished_at: None,
        }));
        sim
    }

    #[test]
    fn pingpong_completes() {
        let mut sim = pingpong_sim(7);
        let report = sim.run();
        assert!(report.all_halted);
        assert_eq!(report.stats.label_count("PING"), 6);
        assert_eq!(report.stats.label_count("PONG"), 6);
        assert_eq!(report.stats.messages_sent, 12);
        assert_eq!(report.stats.messages_delivered, 12);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let r1 = pingpong_sim(99).run();
        let r2 = pingpong_sim(99).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_change_timing() {
        let r1 = pingpong_sim(1).run();
        let r2 = pingpong_sim(2).run();
        // same message counts, (almost surely) different end time
        assert_eq!(r1.stats.messages_sent, r2.stats.messages_sent);
        assert_ne!(r1.end_time, r2.end_time);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            id: ProcessId,
            fired: Vec<TimerKind>,
        }
        #[derive(Clone)]
        struct NoMsg;
        impl Labeled for NoMsg {
            fn label(&self) -> &'static str {
                "NONE"
            }
        }
        impl Actor<NoMsg> for TimerActor {
            fn id(&self) -> ProcessId {
                self.id
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_start(&mut self, ctx: &mut Context<NoMsg>) {
                ctx.set_timer(3, 30);
                ctx.set_timer(1, 10);
                ctx.set_timer(2, 20);
            }
            fn on_message(&mut self, _: ProcessId, _: NoMsg, _: &mut Context<NoMsg>) {}
            fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<NoMsg>) {
                self.fired.push(kind);
                if self.fired.len() == 3 {
                    ctx.halt();
                }
            }
        }
        let mut sim: Simulation<NoMsg> = Simulation::new(SimConfig::default());
        sim.add_actor(Box::new(TimerActor {
            id: ProcessId::new(1),
            fired: vec![],
        }));
        let report = sim.run();
        assert!(report.all_halted);
        assert_eq!(report.end_time, 30);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new(SimConfig {
            seed: 0,
            max_time: 5,
            policy: DelayPolicy::Synchronous { delta: 100 },
        });
        sim.add_actor(Box::new(PingPong {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            rounds_left: 1,
            finished_at: None,
        }));
        sim.add_actor(Box::new(PingPong {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            rounds_left: 0,
            finished_at: None,
        }));
        let report = sim.run();
        assert!(!report.all_halted);
        assert!(report.end_time <= 5);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = pingpong_sim(3);
        let fired = sim.run_until(|s| s.stats().messages_delivered >= 3);
        assert!(fired);
        assert!(sim.stats().messages_delivered >= 3);
    }

    #[test]
    #[should_panic(expected = "duplicate actor")]
    fn duplicate_actor_panics() {
        let mut sim = pingpong_sim(0);
        sim.add_actor(Box::new(PingPong {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: false,
            rounds_left: 0,
            finished_at: None,
        }));
    }

    #[test]
    fn halted_actor_receives_nothing() {
        // actor 2 halts after first ping; further pings are dropped
        struct Spammer {
            id: ProcessId,
            peer: ProcessId,
            sent: u32,
        }
        impl Actor<Msg> for Spammer {
            fn id(&self) -> ProcessId {
                self.id
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                for i in 0..5 {
                    ctx.send(self.peer, Msg::Ping(i));
                    self.sent += 1;
                }
                ctx.halt();
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, _: &mut Context<Msg>) {}
        }
        struct OneShot {
            id: ProcessId,
            received: u32,
        }
        impl Actor<Msg> for OneShot {
            fn id(&self) -> ProcessId {
                self.id
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_message(&mut self, _: ProcessId, _: Msg, ctx: &mut Context<Msg>) {
                self.received += 1;
                ctx.halt();
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(SimConfig::default());
        sim.add_actor(Box::new(Spammer {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            sent: 0,
        }));
        sim.add_actor(Box::new(OneShot {
            id: ProcessId::new(2),
            received: 0,
        }));
        let report = sim.run();
        assert!(report.all_halted);
        // only one delivery reached the actor
        assert_eq!(report.stats.messages_delivered, 1);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut sim = pingpong_sim(4);
        sim.enable_trace();
        sim.run();
        assert_eq!(sim.trace().len(), 12);
        assert!(sim.trace().iter().any(|e| e.label == "PING"));
        assert!(sim.trace().iter().any(|e| e.label == "PONG"));
        // trace times are monotone
        for w in sim.trace().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn trace_fingerprint_deterministic() {
        let mut a = pingpong_sim(21);
        a.enable_trace();
        a.run();
        let mut b = pingpong_sim(21);
        b.enable_trace();
        b.run();
        assert_eq!(a.trace_fingerprint(), b.trace_fingerprint());
        let mut c = pingpong_sim(22);
        c.enable_trace();
        c.run();
        assert_ne!(a.trace_fingerprint(), c.trace_fingerprint());
    }

    #[test]
    fn preflight_runs_per_delivery_without_changing_the_trace() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct CountStage(Arc<AtomicU64>);
        impl Preflight<Msg> for CountStage {
            fn preflight(&self, _from: ProcessId, _to: ProcessId, _msg: &Msg) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut plain = pingpong_sim(13);
        plain.enable_trace();
        let plain_report = plain.run();
        let seen = Arc::new(AtomicU64::new(0));
        let mut staged = pingpong_sim(13);
        staged.enable_trace();
        staged.set_preflight(Arc::new(CountStage(seen.clone())));
        let staged_report = staged.run();
        // The virtual stage ran once per delivery…
        assert_eq!(seen.load(Ordering::Relaxed), 12);
        // …and changed nothing observable: same trace bytes, fingerprint,
        // end time, stats.
        assert_eq!(plain.trace(), staged.trace());
        assert_eq!(plain.trace_fingerprint(), staged.trace_fingerprint());
        assert_eq!(plain_report, staged_report);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut sim = pingpong_sim(4);
        sim.run();
        assert!(sim.trace().is_empty());
        assert_eq!(sim.trace_fingerprint(), 0xcbf29ce484222325);
    }
}
