//! Message-delay policies: the adversary's scheduling power.

use cupft_graph::{ProcessId, ProcessSet};
use rand::rngs::StdRng;
use rand::Rng;

use crate::Time;

/// How the network delays each message.
///
/// The policy *is* the scheduling adversary: partial synchrony constrains
/// it after GST, and the scripted variants reproduce the executions used in
/// the paper's proofs.
#[derive(Debug, Clone)]
pub enum DelayPolicy {
    /// Synchronous network: every message takes exactly `delta`.
    Synchronous {
        /// The fixed delivery delay.
        delta: Time,
    },
    /// Partial synchrony: before `gst`, delays are drawn adversarially
    /// from `[delta, pre_gst_max]`; at/after `gst`, delays are at most
    /// `delta` (drawn from `[1, delta]`).
    PartialSynchrony {
        /// Global stabilization time.
        gst: Time,
        /// Post-GST delay bound `δ`.
        delta: Time,
        /// Worst pre-GST delay the adversary inflicts.
        pre_gst_max: Time,
    },
    /// "Asynchronous" horizon: every message is delayed into
    /// `[delta, unbounded_max]` regardless of time — i.e. GST never occurs
    /// within any finite experiment horizon. Used for the Table I async
    /// row: no deterministic protocol can be shown terminating under this
    /// policy within the horizon (the checkable shadow of FLP).
    Asynchronous {
        /// Minimum delay.
        delta: Time,
        /// Maximum (effectively unbounded w.r.t. the horizon) delay.
        unbounded_max: Time,
    },
    /// The Theorem 7 construction: messages *within* a group behave
    /// synchronously (`delta`), messages *across* groups are delayed by
    /// `cross_delay` (chosen larger than both sub-systems' decision times).
    Partitioned {
        /// Fast intra-group delay.
        delta: Time,
        /// The process groups (a process absent from every group is
        /// treated as its own singleton group).
        groups: Vec<ProcessSet>,
        /// Cross-group delay.
        cross_delay: Time,
    },
}

impl Default for DelayPolicy {
    fn default() -> Self {
        DelayPolicy::PartialSynchrony {
            gst: 100,
            delta: 10,
            pre_gst_max: 50,
        }
    }
}

impl DelayPolicy {
    /// The delay the adversary assigns to a message from `from` to `to`
    /// sent at time `now`.
    pub fn delay(&self, from: ProcessId, to: ProcessId, now: Time, rng: &mut StdRng) -> Time {
        match self {
            DelayPolicy::Synchronous { delta } => (*delta).max(1),
            DelayPolicy::PartialSynchrony {
                gst,
                delta,
                pre_gst_max,
            } => {
                if now >= *gst {
                    rng.random_range(1..=(*delta).max(1))
                } else {
                    let hi = (*pre_gst_max).max(*delta).max(1);
                    let lo = (*delta).max(1).min(hi);
                    // Ensure pre-GST messages never beat GST stabilization
                    // by more than the adversary intends, but may also land
                    // after GST.
                    rng.random_range(lo..=hi)
                }
            }
            DelayPolicy::Asynchronous {
                delta,
                unbounded_max,
            } => {
                let lo = (*delta).max(1);
                let hi = (*unbounded_max).max(lo);
                rng.random_range(lo..=hi)
            }
            DelayPolicy::Partitioned {
                delta,
                groups,
                cross_delay,
            } => {
                let group_of = |p: ProcessId| groups.iter().position(|g| g.contains(&p));
                let same = match (group_of(from), group_of(to)) {
                    (Some(a), Some(b)) => a == b,
                    // Unlisted processes are singleton groups: a message
                    // to/from them is cross-group unless from == to.
                    _ => from == to,
                };
                if same {
                    (*delta).max(1)
                } else {
                    (*cross_delay).max(1)
                }
            }
        }
    }

    /// The post-stabilization delay bound `δ` of this policy (the bound
    /// used by convergence-time assertions).
    pub fn delta(&self) -> Time {
        match self {
            DelayPolicy::Synchronous { delta }
            | DelayPolicy::PartialSynchrony { delta, .. }
            | DelayPolicy::Asynchronous { delta, .. }
            | DelayPolicy::Partitioned { delta, .. } => (*delta).max(1),
        }
    }

    /// The GST of this policy, if it has one (`Synchronous` stabilizes at
    /// 0; `Asynchronous` never stabilizes).
    pub fn gst(&self) -> Option<Time> {
        match self {
            DelayPolicy::Synchronous { .. } => Some(0),
            DelayPolicy::PartialSynchrony { gst, .. } => Some(*gst),
            DelayPolicy::Asynchronous { .. } => None,
            DelayPolicy::Partitioned { .. } => Some(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;
    use rand::SeedableRng;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn synchronous_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = DelayPolicy::Synchronous { delta: 7 };
        for _ in 0..10 {
            assert_eq!(d.delay(p(1), p(2), 0, &mut rng), 7);
        }
    }

    #[test]
    fn partial_synchrony_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayPolicy::PartialSynchrony {
            gst: 100,
            delta: 10,
            pre_gst_max: 90,
        };
        for _ in 0..100 {
            let pre = d.delay(p(1), p(2), 0, &mut rng);
            assert!((10..=90).contains(&pre), "pre-GST delay {pre}");
            let post = d.delay(p(1), p(2), 100, &mut rng);
            assert!((1..=10).contains(&post), "post-GST delay {post}");
        }
    }

    #[test]
    fn partitioned_cross_group_slow() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DelayPolicy::Partitioned {
            delta: 5,
            groups: vec![process_set([1, 2, 3]), process_set([6, 7, 8])],
            cross_delay: 10_000,
        };
        assert_eq!(d.delay(p(1), p(2), 0, &mut rng), 5);
        assert_eq!(d.delay(p(6), p(8), 0, &mut rng), 5);
        assert_eq!(d.delay(p(1), p(6), 0, &mut rng), 10_000);
        // unlisted process 9: cross to everyone
        assert_eq!(d.delay(p(9), p(1), 0, &mut rng), 10_000);
    }

    #[test]
    fn async_never_fast() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DelayPolicy::Asynchronous {
            delta: 50,
            unbounded_max: 1_000_000,
        };
        for t in [0u64, 1_000, 1_000_000] {
            let delay = d.delay(p(1), p(2), t, &mut rng);
            assert!(delay >= 50);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(DelayPolicy::Synchronous { delta: 3 }.delta(), 3);
        assert_eq!(DelayPolicy::Synchronous { delta: 3 }.gst(), Some(0));
        assert_eq!(
            DelayPolicy::Asynchronous {
                delta: 1,
                unbounded_max: 10
            }
            .gst(),
            None
        );
        assert_eq!(DelayPolicy::default().gst(), Some(100));
    }
}
